//! Property-based tests for every sampler: membership, cardinality and
//! structural guarantees hold for arbitrary candidate lists.

use lsdgnn_graph::NodeId;
use lsdgnn_sampler::{
    top_k_by_weight, NeighborSampler, StandardSampler, StreamingSampler, StreamingWeightedSampler,
    WeightedSampler,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn ids(vals: &[u64]) -> Vec<NodeId> {
    vals.iter().map(|&v| NodeId(v)).collect()
}

proptest! {
    /// Every sampler returns min(k, n) items, all drawn from the
    /// candidates.
    #[test]
    fn samplers_return_members_of_candidates(
        vals in proptest::collection::vec(0u64..1_000, 0..200),
        k in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let candidates = ids(&vals);
        let set: HashSet<NodeId> = candidates.iter().copied().collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for (name, picks) in [
            ("standard", StandardSampler.sample(&mut rng, &candidates, k)),
            ("streaming", StreamingSampler.sample(&mut rng, &candidates, k)),
            ("streaming-weighted", NeighborSampler::sample(&StreamingWeightedSampler, &mut rng, &candidates, k)),
        ] {
            prop_assert_eq!(picks.len(), k.min(candidates.len()), "{}", name);
            for p in &picks {
                prop_assert!(set.contains(p), "{} returned non-member {}", name, p);
            }
        }
    }

    /// Standard sampling never repeats a candidate position; with unique
    /// candidates the output is a set.
    #[test]
    fn standard_sampling_without_replacement(
        n in 1u64..200,
        k in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let candidates: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let picks = StandardSampler.sample(&mut rng, &candidates, k);
        let set: HashSet<_> = picks.iter().collect();
        prop_assert_eq!(set.len(), picks.len());
    }

    /// Streaming sampling picks exactly one element per arrival-order
    /// group, in group order.
    #[test]
    fn streaming_group_structure(
        n in 1u64..300,
        k in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let candidates: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let picks = StreamingSampler.sample(&mut rng, &candidates, k);
        if (n as usize) > k {
            // Picks are strictly increasing in stream position.
            for w in picks.windows(2) {
                prop_assert!(w[0] < w[1], "streaming picks out of order");
            }
        }
    }

    /// Weighted sampling with all-equal weights behaves like sampling
    /// without replacement (unique members).
    #[test]
    fn weighted_equal_weights_unique(
        n in 1u64..100,
        k in 1usize..16,
        seed in 0u64..1_000,
    ) {
        let candidates: Vec<NodeId> = (0..n).map(NodeId).collect();
        let weights = vec![1.0f32; candidates.len()];
        let mut rng = SmallRng::seed_from_u64(seed);
        let picks = WeightedSampler.sample(&mut rng, &candidates, &weights, k);
        prop_assert_eq!(picks.len(), k.min(candidates.len()));
        let set: HashSet<_> = picks.iter().collect();
        prop_assert_eq!(set.len(), picks.len());
    }

    /// top-k by weight returns elements whose weights dominate every
    /// unselected element.
    #[test]
    fn top_k_dominates_unselected(
        weights in proptest::collection::vec(0.0f32..100.0, 1..80),
        k in 1usize..16,
    ) {
        let candidates: Vec<NodeId> = (0..weights.len() as u64).map(NodeId).collect();
        let picks = top_k_by_weight(&candidates, &weights, k);
        let picked: HashSet<_> = picks.iter().map(|p| p.index()).collect();
        if weights.len() > k {
            let min_picked = picks
                .iter()
                .map(|p| weights[p.index()])
                .fold(f32::INFINITY, f32::min);
            for (i, &w) in weights.iter().enumerate() {
                if !picked.contains(&i) {
                    prop_assert!(w <= min_picked, "unselected {w} beats selected {min_picked}");
                }
            }
        }
    }

    /// Sampler cost models are monotone in n.
    #[test]
    fn cost_models_monotone(n in 1usize..10_000, extra in 1usize..1_000, k in 1usize..64) {
        prop_assert!(StandardSampler.cycles(n + extra, k) >= StandardSampler.cycles(n, k));
        prop_assert!(StreamingSampler.cycles(n + extra, k) >= StreamingSampler.cycles(n, k));
        prop_assert!(StreamingSampler.cycles(n, k) <= StandardSampler.cycles(n, k));
        prop_assert_eq!(StreamingSampler.buffer_entries(n), 0);
    }
}
