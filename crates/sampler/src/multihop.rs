//! Multi-hop mini-batch sampling — the `sample n-hop` AxE command
//! (paper Table 4) in software form.

use crate::NeighborSampler;
use lsdgnn_graph::{CsrGraph, NodeId};
use rand::Rng;

/// The result of expanding one mini-batch: per-hop frontiers.
///
/// `hops[0]` holds the hop-1 samples (fanout per root), `hops[1]` the
/// hop-2 samples, and so on. Within a hop, samples are ordered by parent —
/// the root/neighbor ordering the AxE score-boards maintain in hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleBatch {
    /// The root (seed) nodes of the mini-batch.
    pub roots: Vec<NodeId>,
    /// Sampled nodes per hop, parent-major order.
    pub hops: Vec<Vec<NodeId>>,
}

impl SampleBatch {
    /// Total sampled nodes across hops (excluding roots).
    pub fn total_sampled(&self) -> usize {
        self.hops.iter().map(Vec::len).sum()
    }

    /// All nodes whose attributes a GNN layer would fetch: roots plus every
    /// hop's samples, in order.
    pub fn attr_fetch_list(&self) -> Vec<NodeId> {
        let mut out = self.roots.clone();
        for hop in &self.hops {
            out.extend_from_slice(hop);
        }
        out
    }
}

/// Expands mini-batches hop by hop with a pluggable neighbor sampler.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::{generators, NodeId};
/// use lsdgnn_sampler::{MultiHopSampler, StandardSampler};
/// use rand::SeedableRng;
///
/// let g = generators::power_law(500, 8, 1);
/// let mh = MultiHopSampler::new(2, 10);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let batch = mh.sample(&mut rng, &g, &StandardSampler, &[NodeId(1), NodeId(2)]);
/// assert_eq!(batch.hops.len(), 2);
/// assert!(batch.total_sampled() <= 2 * 10 + 2 * 10 * 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiHopSampler {
    hops: u32,
    fanout: usize,
}

impl MultiHopSampler {
    /// Creates a sampler with `hops` layers and `fanout` samples per node.
    ///
    /// # Panics
    ///
    /// Panics if `hops` or `fanout` is zero.
    pub fn new(hops: u32, fanout: usize) -> Self {
        assert!(hops > 0, "hops must be non-zero");
        assert!(fanout > 0, "fanout must be non-zero");
        MultiHopSampler { hops, fanout }
    }

    /// Number of hops.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Fanout per node.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Expands `roots` through all hops over `graph` using `sampler`.
    pub fn sample<R: Rng, S: NeighborSampler>(
        &self,
        rng: &mut R,
        graph: &CsrGraph,
        sampler: &S,
        roots: &[NodeId],
    ) -> SampleBatch {
        let mut hops = Vec::with_capacity(self.hops as usize);
        let mut frontier: Vec<NodeId> = roots.to_vec();
        for _ in 0..self.hops {
            let mut next = Vec::with_capacity(frontier.len() * self.fanout);
            for &v in &frontier {
                let picked = sampler.sample(rng, graph.neighbors(v), self.fanout);
                next.extend(picked);
            }
            hops.push(next.clone());
            frontier = next;
        }
        SampleBatch {
            roots: roots.to_vec(),
            hops,
        }
    }

    /// Upper bound on sampled nodes for `num_roots` roots.
    pub fn max_sampled(&self, num_roots: usize) -> usize {
        let mut total = 0;
        let mut frontier = num_roots;
        for _ in 0..self.hops {
            frontier *= self.fanout;
            total += frontier;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StandardSampler, StreamingSampler};
    use lsdgnn_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn two_hop_shapes_match_config() {
        let g = generators::uniform_random(1_000, 20, 2);
        let mh = MultiHopSampler::new(2, 5);
        let mut rng = SmallRng::seed_from_u64(1);
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        let b = mh.sample(&mut rng, &g, &StandardSampler, &roots);
        assert_eq!(b.roots.len(), 8);
        assert_eq!(b.hops.len(), 2);
        // Degrees are ~20 > fanout, so every node yields exactly 5.
        assert_eq!(b.hops[0].len(), 40);
        assert_eq!(b.hops[1].len(), 200);
        assert_eq!(b.total_sampled(), 240);
        assert_eq!(b.attr_fetch_list().len(), 248);
    }

    #[test]
    fn sampled_nodes_are_real_neighbors() {
        let g = generators::power_law(500, 6, 3);
        let mh = MultiHopSampler::new(1, 3);
        let mut rng = SmallRng::seed_from_u64(2);
        let root = NodeId(10);
        let b = mh.sample(&mut rng, &g, &StreamingSampler, &[root]);
        for v in &b.hops[0] {
            assert!(g.has_edge(root, *v), "{v} is not a neighbor of {root}");
        }
    }

    #[test]
    fn low_degree_nodes_yield_fewer_samples() {
        let g = generators::uniform_random(100, 2, 4);
        let mh = MultiHopSampler::new(1, 10);
        let mut rng = SmallRng::seed_from_u64(3);
        let b = mh.sample(&mut rng, &g, &StandardSampler, &[NodeId(0)]);
        assert!(b.hops[0].len() <= 2);
    }

    #[test]
    fn max_sampled_is_an_upper_bound() {
        let g = generators::power_law(300, 4, 5);
        let mh = MultiHopSampler::new(2, 10);
        assert_eq!(mh.max_sampled(512), 512 * 10 + 512 * 100);
        let mut rng = SmallRng::seed_from_u64(4);
        let roots: Vec<NodeId> = (0..16).map(NodeId).collect();
        let b = mh.sample(&mut rng, &g, &StandardSampler, &roots);
        assert!(b.total_sampled() <= mh.max_sampled(16));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_fanout_panics() {
        let _ = MultiHopSampler::new(2, 0);
    }
}
