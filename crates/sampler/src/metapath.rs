//! Meta-path sampling over heterogeneous graphs.
//!
//! Heterogeneous GNNs (one of AliGraph's headline model families) expand
//! mini-batches along a *meta-path* — a fixed sequence of edge types such
//! as `user -clicks-> item -bought_with-> item`. Each hop samples only
//! from the designated type's neighbor list.

use crate::NeighborSampler;
use lsdgnn_graph::hetero::{EdgeType, HeteroGraph};
use lsdgnn_graph::NodeId;
use rand::Rng;

/// A meta-path: the edge type to follow at each hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaPath {
    types: Vec<EdgeType>,
    fanout: usize,
}

/// Per-hop frontiers of one meta-path expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaPathBatch {
    /// Seed nodes.
    pub roots: Vec<NodeId>,
    /// Sampled nodes per hop (hop i followed `types[i]`).
    pub hops: Vec<Vec<NodeId>>,
}

impl MetaPath {
    /// Creates a meta-path following `types` in order, sampling `fanout`
    /// per node per hop.
    ///
    /// # Panics
    ///
    /// Panics on an empty path or zero fanout.
    pub fn new(types: &[EdgeType], fanout: usize) -> Self {
        assert!(!types.is_empty(), "meta-path needs at least one hop");
        assert!(fanout > 0, "fanout must be non-zero");
        MetaPath {
            types: types.to_vec(),
            fanout,
        }
    }

    /// Path length (hops).
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the path is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Expands `roots` along the path over `graph` with `sampler`.
    ///
    /// # Panics
    ///
    /// Panics if any edge type in the path is out of range for `graph`.
    pub fn sample<R: Rng, S: NeighborSampler>(
        &self,
        rng: &mut R,
        graph: &HeteroGraph,
        sampler: &S,
        roots: &[NodeId],
    ) -> MetaPathBatch {
        let mut hops = Vec::with_capacity(self.types.len());
        let mut frontier = roots.to_vec();
        for &t in &self.types {
            let mut next = Vec::with_capacity(frontier.len() * self.fanout);
            for &v in &frontier {
                next.extend(sampler.sample(rng, graph.neighbors(t, v), self.fanout));
            }
            hops.push(next.clone());
            frontier = next;
        }
        MetaPathBatch {
            roots: roots.to_vec(),
            hops,
        }
    }
}

impl MetaPathBatch {
    /// Total sampled nodes across hops.
    pub fn total_sampled(&self) -> usize {
        self.hops.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamingSampler;
    use lsdgnn_graph::hetero::HeteroGraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn user_item_graph() -> (HeteroGraph, EdgeType, EdgeType) {
        // Nodes 0-4: users; 5-14: items.
        let mut b = HeteroGraphBuilder::new(15);
        let clicks = b.add_edge_type("clicks");
        let also = b.add_edge_type("bought_with");
        for u in 0..5u64 {
            for i in 0..4u64 {
                b.add_edge(clicks, NodeId(u), NodeId(5 + (u + i) % 10));
            }
        }
        for i in 5..15u64 {
            b.add_edge(also, NodeId(i), NodeId(5 + (i - 5 + 1) % 10));
            b.add_edge(also, NodeId(i), NodeId(5 + (i - 5 + 2) % 10));
        }
        (b.build(), clicks, also)
    }

    #[test]
    fn metapath_follows_types_in_order() {
        let (g, clicks, also) = user_item_graph();
        let path = MetaPath::new(&[clicks, also], 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let batch = path.sample(&mut rng, &g, &StreamingSampler, &[NodeId(0), NodeId(1)]);
        assert_eq!(batch.hops.len(), 2);
        // Hop 1 lands on items only (ids >= 5) via clicks.
        for v in &batch.hops[0] {
            assert!(v.0 >= 5, "hop 1 must reach items, got {v}");
        }
        // Hop 2 follows bought_with item->item edges.
        for v in &batch.hops[1] {
            assert!(v.0 >= 5);
            assert!(batch.hops[0]
                .iter()
                .any(|&u| g.neighbors(also, u).contains(v)));
        }
        assert!(batch.total_sampled() > 0);
    }

    #[test]
    fn dead_end_hops_produce_empty_frontiers() {
        let (g, _, also) = user_item_graph();
        // Users have no bought_with edges: expansion dies immediately.
        let path = MetaPath::new(&[also], 3);
        let mut rng = SmallRng::seed_from_u64(2);
        let batch = path.sample(&mut rng, &g, &StreamingSampler, &[NodeId(0)]);
        assert!(batch.hops[0].is_empty());
    }

    #[test]
    fn fanout_caps_per_hop_growth() {
        let (g, clicks, also) = user_item_graph();
        let path = MetaPath::new(&[clicks, also, also], 2);
        let mut rng = SmallRng::seed_from_u64(3);
        let batch = path.sample(&mut rng, &g, &StreamingSampler, &[NodeId(2)]);
        assert!(batch.hops[0].len() <= 2);
        assert!(batch.hops[1].len() <= 4);
        assert!(batch.hops[2].len() <= 8);
        assert_eq!(path.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_path_panics() {
        let _ = MetaPath::new(&[], 2);
    }
}
