//! The paper's streaming step-based approximate sampling (§4.2 Tech-2).

use crate::NeighborSampler;
use lsdgnn_graph::NodeId;
use rand::Rng;

/// Streaming step-based approximate random sampling.
///
/// To sample `K` of `N` candidates, the candidate stream is divided into
/// `K` groups in arrival order; one uniformly random element is taken from
/// each group. No candidate buffer is needed and the pipeline completes in
/// `N` cycles (versus `N + K` with an `N`-entry buffer for the conventional
/// approach) — the sampled element of a group is known the moment the group
/// has streamed past.
///
/// The approximation: elements can never be co-sampled with others from
/// their own group, so the joint distribution differs slightly from exact
/// without-replacement sampling, while each element's marginal inclusion
/// probability stays `K/N` up to group-boundary rounding. The paper
/// measures no model-quality loss (PPI 0.548 vs 0.549); [`crate::quality`]
/// reproduces that comparison.
///
/// # Example
///
/// ```
/// use lsdgnn_sampler::{NeighborSampler, StreamingSampler};
/// use lsdgnn_graph::NodeId;
/// use rand::SeedableRng;
///
/// let candidates: Vec<NodeId> = (0..100).map(NodeId).collect();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let picks = StreamingSampler.sample(&mut rng, &candidates, 10);
/// assert_eq!(picks.len(), 10);
/// // One pick per contiguous group of 10:
/// for (i, p) in picks.iter().enumerate() {
///     assert!((p.0 as usize) / 10 == i);
/// }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamingSampler;

impl StreamingSampler {
    /// Emits the `k` positions [`NeighborSampler::sample_into`] would
    /// read from a list of `n` candidates — the data plane's
    /// pick-then-resolve split, where pick generation needs only the
    /// list *length* and the reads happen later (prefetched, or against
    /// whichever buffer the list landed in).
    ///
    /// RNG consumption is identical to sampling in place, so resolving
    /// `list[pick]` afterwards reproduces the sampled stream
    /// byte-for-byte. The caller handles `n <= k` itself (the whole
    /// list is taken and no RNG is consumed).
    ///
    /// # Panics
    ///
    /// Debug-asserts `n > k` and `k > 0`.
    pub fn pick_into<R: Rng>(&self, rng: &mut R, n: usize, k: usize, out: &mut Vec<u32>) {
        debug_assert!(n > k && k > 0, "caller handles n <= k");
        let base = n / k;
        let extra = n % k;
        out.reserve(k);
        let mut start = 0usize;
        for g in 0..k {
            let len = base + usize::from(g < extra);
            out.push((start + rng.gen_range(0..len)) as u32);
            start += len;
        }
    }
}

impl NeighborSampler for StreamingSampler {
    fn sample<R: Rng>(&self, rng: &mut R, candidates: &[NodeId], k: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(k.min(candidates.len()));
        self.sample_into(rng, candidates, k, &mut out);
        out
    }

    fn sample_into<R: Rng>(
        &self,
        rng: &mut R,
        candidates: &[NodeId],
        k: usize,
        out: &mut Vec<NodeId>,
    ) {
        let n = candidates.len();
        if n <= k {
            out.extend_from_slice(candidates);
            return;
        }
        // Split [0, n) into k groups whose sizes differ by at most one
        // (the first n % k groups get the extra element), mirroring how the
        // hardware divides the stream by arrival order.
        let base = n / k;
        let extra = n % k;
        out.reserve(k);
        let mut start = 0usize;
        for g in 0..k {
            let len = base + usize::from(g < extra);
            let pick = start + rng.gen_range(0..len);
            out.push(candidates[pick]);
            start += len;
        }
    }

    fn cycles(&self, n: usize, _k: usize) -> u64 {
        n as u64
    }

    fn buffer_entries(&self, _n: usize) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "streaming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn ids(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn samples_one_per_group() {
        let mut rng = SmallRng::seed_from_u64(5);
        let cands = ids(100);
        let picks = StreamingSampler.sample(&mut rng, &cands, 10);
        assert_eq!(picks.len(), 10);
        for (g, p) in picks.iter().enumerate() {
            assert_eq!(p.index() / 10, g, "pick {p} not in group {g}");
        }
    }

    #[test]
    fn uneven_groups_cover_entire_stream() {
        let mut rng = SmallRng::seed_from_u64(6);
        // 17 candidates into 5 groups: sizes 4,4,4,4,3... wait: 17 % 5 = 2,
        // so sizes are 4,4,3,3,3.
        let cands = ids(17);
        for _ in 0..100 {
            let picks = StreamingSampler.sample(&mut rng, &cands, 5);
            assert_eq!(picks.len(), 5);
            let set: HashSet<_> = picks.iter().collect();
            assert_eq!(set.len(), 5, "streaming picks are unique by group");
        }
        // Last candidate must be reachable.
        let mut saw_last = false;
        for _ in 0..200 {
            if StreamingSampler
                .sample(&mut rng, &cands, 5)
                .contains(&NodeId(16))
            {
                saw_last = true;
                break;
            }
        }
        assert!(saw_last, "tail of stream never sampled");
    }

    #[test]
    fn pick_into_matches_sample_into_exactly() {
        // The pick-then-resolve split must consume the RNG identically
        // to sampling in place, for every (n, k) shape.
        for (n, k) in [(11usize, 10usize), (100, 10), (17, 5), (1000, 3)] {
            let cands = ids(n as u64);
            let mut direct = Vec::new();
            StreamingSampler.sample_into(
                &mut SmallRng::seed_from_u64(n as u64),
                &cands,
                k,
                &mut direct,
            );
            let mut picks = Vec::new();
            let mut rng = SmallRng::seed_from_u64(n as u64);
            StreamingSampler.pick_into(&mut rng, n, k, &mut picks);
            let resolved: Vec<NodeId> = picks.iter().map(|&p| cands[p as usize]).collect();
            assert_eq!(resolved, direct, "n {n} k {k}");
            // And the RNG states agree afterwards: the next draw matches.
            let mut rng2 = SmallRng::seed_from_u64(n as u64);
            let mut sink = Vec::new();
            StreamingSampler.sample_into(&mut rng2, &cands, k, &mut sink);
            assert_eq!(
                rng.gen_range(0..1_000_000u64),
                rng2.gen_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn short_lists_return_all() {
        let mut rng = SmallRng::seed_from_u64(7);
        let cands = ids(3);
        assert_eq!(StreamingSampler.sample(&mut rng, &cands, 10), cands);
        assert!(StreamingSampler.sample(&mut rng, &[], 4).is_empty());
    }

    #[test]
    fn marginal_inclusion_probability_is_near_uniform() {
        // Every element should be included with probability ~K/N.
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 40;
        let k = 8;
        let cands = ids(n);
        let trials = 20_000;
        let mut counts = vec![0u32; n as usize];
        for _ in 0..trials {
            for p in StreamingSampler.sample(&mut rng, &cands, k) {
                counts[p.index()] += 1;
            }
        }
        let expect = trials as f64 * k as f64 / n as f64;
        for c in &counts {
            assert!(
                (*c as f64 - expect).abs() < expect * 0.12,
                "inclusion count {c} deviates from {expect}"
            );
        }
    }

    #[test]
    fn cost_model_matches_paper() {
        // Paper: reduces K+N cycles to N, no extra storage.
        assert_eq!(StreamingSampler.cycles(100, 10), 100);
        assert_eq!(StreamingSampler.buffer_entries(100), 0);
        assert_eq!(StreamingSampler.name(), "streaming");
    }

    #[test]
    fn cycle_savings_vs_standard() {
        use crate::StandardSampler;
        let (n, k) = (1000, 100);
        assert!(StreamingSampler.cycles(n, k) < StandardSampler.cycles(n, k));
        assert_eq!(
            StandardSampler.cycles(n, k) - StreamingSampler.cycles(n, k),
            k as u64
        );
    }
}
