//! Walker alias method: O(1) sampling from a fixed discrete
//! distribution.
//!
//! Training-root selection samples billions of times from one static
//! distribution (e.g. degree-proportional, as AliGraph's importance
//! samplers do); the alias table answers each draw with one table probe
//! and one coin flip after O(n) setup.

use lsdgnn_graph::{CsrGraph, NodeId};
use rand::Rng;

/// A Walker alias table over indices `0..n`.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics on an empty list, a negative/NaN weight, or an all-zero
    /// distribution.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers sit at probability 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Builds a degree-proportional table over a graph's nodes (zero-
    /// degree nodes are never drawn).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    pub fn degree_proportional(graph: &CsrGraph) -> Self {
        let weights: Vec<f64> = (0..graph.num_nodes())
            .map(|v| graph.degree(NodeId(v)) as f64)
            .collect();
        Self::new(&weights)
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index in O(1).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Draws `k` root nodes for a training batch.
    pub fn sample_roots<R: Rng>(&self, rng: &mut R, k: usize) -> Vec<NodeId> {
        (0..k).map(|_| NodeId(self.sample(rng) as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 8]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..32_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 4_000.0).abs() < 400.0, "count {c}");
        }
    }

    #[test]
    fn skewed_weights_sample_proportionally() {
        let t = AliasTable::new(&[1.0, 2.0, 4.0, 8.0]);
        let mut rng = SmallRng::seed_from_u64(2);
        let trials = 60_000;
        let mut counts = [0u32; 4];
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = trials as f64 * (1 << i) as f64 / 15.0;
            assert!(
                (c as f64 - expect).abs() < expect * 0.08,
                "outcome {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "drew zero-weight outcome {s}");
        }
    }

    #[test]
    fn degree_proportional_prefers_hubs() {
        let g = generators::power_law(1_000, 8, 4);
        let t = AliasTable::degree_proportional(&g);
        let hub = (0..1_000).map(NodeId).max_by_key(|&v| g.degree(v)).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let draws = 50_000;
        let hub_draws = (0..draws)
            .filter(|_| t.sample(&mut rng) == hub.index())
            .count();
        let expect = draws as f64 * g.degree(hub) as f64 / g.num_edges() as f64;
        assert!(
            (hub_draws as f64 - expect).abs() < expect * 0.2 + 20.0,
            "hub drawn {hub_draws} vs expected {expect}"
        );
    }

    #[test]
    fn sample_roots_yields_valid_ids() {
        let g = generators::uniform_random(100, 4, 6);
        let t = AliasTable::degree_proportional(&g);
        let mut rng = SmallRng::seed_from_u64(7);
        let roots = t.sample_roots(&mut rng, 64);
        assert_eq!(roots.len(), 64);
        assert!(roots.iter().all(|r| r.0 < 100));
        assert_eq!(t.len(), 100);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
