//! Weight-/degree-based sampling.
//!
//! The paper notes random sampling "is the base for many other sampling
//! methods, such as degree-based sampling"; this module provides the
//! weighted variant layered on the same streaming-friendly structure.

use lsdgnn_graph::NodeId;
use rand::Rng;

/// Weighted sampling without replacement using the exponential-sort trick
/// (Efraimidis–Spirakis A-Res): each candidate draws key
/// `u^(1/w)` and the top-`k` keys win. Single pass over the candidates,
/// `k`-entry state — streaming-compatible like the paper's Tech-2.
///
/// # Example
///
/// ```
/// use lsdgnn_sampler::WeightedSampler;
/// use lsdgnn_graph::NodeId;
/// use rand::SeedableRng;
///
/// let cands: Vec<NodeId> = (0..4).map(NodeId).collect();
/// let weights = [1.0, 1.0, 1.0, 100.0];
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
/// let picks = WeightedSampler.sample(&mut rng, &cands, &weights, 1);
/// // Node 3 dominates the weight mass and is almost always chosen.
/// assert_eq!(picks.len(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightedSampler;

impl WeightedSampler {
    /// Samples up to `k` candidates proportionally to `weights`.
    ///
    /// Zero/negative weights are treated as never-sampled unless fewer than
    /// `k` positive-weight candidates exist.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != candidates.len()`.
    pub fn sample<R: Rng>(
        &self,
        rng: &mut R,
        candidates: &[NodeId],
        weights: &[f32],
        k: usize,
    ) -> Vec<NodeId> {
        assert_eq!(
            candidates.len(),
            weights.len(),
            "weights length must match candidates"
        );
        if candidates.len() <= k {
            return candidates.to_vec();
        }
        // (key, index) reservoir of size k.
        let mut reservoir: Vec<(f64, usize)> = Vec::with_capacity(k);
        for (i, &w) in weights.iter().enumerate() {
            let key = if w > 0.0 {
                rng.gen::<f64>().powf(1.0 / w as f64)
            } else {
                // Never preferred over a positive-weight candidate.
                -rng.gen::<f64>()
            };
            if reservoir.len() < k {
                reservoir.push((key, i));
                reservoir.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            } else if key > reservoir[0].0 {
                reservoir[0] = (key, i);
                reservoir.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            }
        }
        reservoir.into_iter().map(|(_, i)| candidates[i]).collect()
    }

    /// Degree-proportional convenience wrapper: weights are the degrees of
    /// each candidate in `graph`.
    pub fn sample_by_degree<R: Rng>(
        &self,
        rng: &mut R,
        graph: &lsdgnn_graph::CsrGraph,
        candidates: &[NodeId],
        k: usize,
    ) -> Vec<NodeId> {
        let weights: Vec<f32> = candidates.iter().map(|&v| graph.degree(v) as f32).collect();
        self.sample(rng, candidates, &weights, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn heavy_weight_dominates() {
        let cands: Vec<NodeId> = (0..10).map(NodeId).collect();
        let mut weights = vec![1.0f32; 10];
        weights[7] = 1000.0;
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..500)
            .filter(|_| {
                WeightedSampler
                    .sample(&mut rng, &cands, &weights, 1)
                    .contains(&NodeId(7))
            })
            .count();
        assert!(hits > 450, "heavy node picked only {hits}/500");
    }

    #[test]
    fn equal_weights_look_uniform() {
        let cands: Vec<NodeId> = (0..8).map(NodeId).collect();
        let weights = vec![1.0f32; 8];
        let mut rng = SmallRng::seed_from_u64(10);
        let mut counts = [0u32; 8];
        for _ in 0..8_000 {
            for p in WeightedSampler.sample(&mut rng, &cands, &weights, 2) {
                counts[p.index()] += 1;
            }
        }
        let expect = 8_000.0 * 2.0 / 8.0;
        for c in counts {
            assert!((c as f64 - expect).abs() < expect * 0.12, "count {c}");
        }
    }

    #[test]
    fn returns_all_when_k_exceeds_n() {
        let cands: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(11);
        let out = WeightedSampler.sample(&mut rng, &cands, &[1.0, 2.0, 3.0], 10);
        assert_eq!(out, cands);
    }

    #[test]
    fn zero_weights_lose_to_positive() {
        let cands: Vec<NodeId> = (0..4).map(NodeId).collect();
        let weights = [0.0f32, 1.0, 0.0, 1.0];
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..100 {
            let out = WeightedSampler.sample(&mut rng, &cands, &weights, 2);
            assert!(out.contains(&NodeId(1)) && out.contains(&NodeId(3)));
        }
    }

    #[test]
    fn degree_based_prefers_hubs() {
        let g = generators::power_law(500, 6, 13);
        let hub = (0..500).map(NodeId).max_by_key(|&v| g.degree(v)).unwrap();
        let cands: Vec<NodeId> = (0..500).map(NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..200)
            .filter(|_| {
                WeightedSampler
                    .sample_by_degree(&mut rng, &g, &cands, 10)
                    .contains(&hub)
            })
            .count();
        // Hub inclusion should far exceed the uniform 10/500 = 2% rate
        // (which would be ~4 hits in 200 trials).
        assert!(hits > 10, "hub sampled only {hits}/200 times");
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_weights_panic() {
        let mut rng = SmallRng::seed_from_u64(14);
        WeightedSampler.sample(&mut rng, &[NodeId(0)], &[1.0, 2.0], 1);
    }
}
