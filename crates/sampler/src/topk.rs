//! Top-k (highest-weight) neighbor selection and the streaming-weighted
//! sampler — the paper's "degree-based sampling ... built on random
//! sampling" family, extended with the Tech-2 streaming structure.

use crate::NeighborSampler;
use lsdgnn_graph::NodeId;
use rand::Rng;

/// Deterministic top-k selection by edge weight: keep the `k` heaviest
/// neighbors (stable on ties by position). A k-entry min-heap pass in
/// hardware — single pass, k state, streaming-friendly.
///
/// # Example
///
/// ```
/// use lsdgnn_sampler::topk::top_k_by_weight;
/// use lsdgnn_graph::NodeId;
/// let c: Vec<NodeId> = (0..4).map(NodeId).collect();
/// let picks = top_k_by_weight(&c, &[0.1, 0.9, 0.5, 0.7], 2);
/// assert_eq!(picks, vec![NodeId(1), NodeId(3)]);
/// ```
///
/// # Panics
///
/// Panics if `weights.len() != candidates.len()`.
pub fn top_k_by_weight(candidates: &[NodeId], weights: &[f32], k: usize) -> Vec<NodeId> {
    assert_eq!(
        candidates.len(),
        weights.len(),
        "weights length must match candidates"
    );
    if candidates.len() <= k {
        return candidates.to_vec();
    }
    let mut idx: Vec<usize> = (0..candidates.len()).collect();
    idx.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.sort_unstable(); // restore stream order, as hardware would emit
    idx.into_iter().map(|i| candidates[i]).collect()
}

/// The streaming-weighted sampler: the Tech-2 group structure with a
/// weighted pick inside each group. The stream is cut into `k` arrival-
/// order groups; within a group one element is chosen with probability
/// proportional to its weight (a single accumulate-and-swap pass, no
/// buffer — A-Chao reservoir of size 1 per group).
///
/// Marginals approximate weight-proportional sampling while keeping the
/// `N`-cycle zero-buffer hardware profile of the streaming sampler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamingWeightedSampler;

impl StreamingWeightedSampler {
    /// Samples up to `k` of `candidates` with weight-biased streaming
    /// groups.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != candidates.len()`.
    pub fn sample<R: Rng>(
        &self,
        rng: &mut R,
        candidates: &[NodeId],
        weights: &[f32],
        k: usize,
    ) -> Vec<NodeId> {
        assert_eq!(
            candidates.len(),
            weights.len(),
            "weights length must match candidates"
        );
        let n = candidates.len();
        if n <= k {
            return candidates.to_vec();
        }
        let base = n / k;
        let extra = n % k;
        let mut out = Vec::with_capacity(k);
        let mut start = 0usize;
        for g in 0..k {
            let len = base + usize::from(g < extra);
            // Weighted reservoir of size 1 over the group (A-Chao).
            let mut total = 0.0f64;
            let mut pick = start;
            #[allow(clippy::needless_range_loop)] // index doubles as pick
            for i in start..start + len {
                let w = weights[i].max(0.0) as f64;
                total += w;
                if total > 0.0 && rng.gen::<f64>() < w / total {
                    pick = i;
                }
            }
            out.push(candidates[pick]);
            start += len;
        }
        out
    }
}

impl NeighborSampler for StreamingWeightedSampler {
    fn sample<R: Rng>(&self, rng: &mut R, candidates: &[NodeId], k: usize) -> Vec<NodeId> {
        // Without weights, fall back to uniform streaming behaviour.
        let weights = vec![1.0f32; candidates.len()];
        StreamingWeightedSampler::sample(self, rng, candidates, &weights, k)
    }

    fn cycles(&self, n: usize, _k: usize) -> u64 {
        n as u64
    }

    fn buffer_entries(&self, _n: usize) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "streaming-weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ids(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn top_k_selects_heaviest() {
        let c = ids(6);
        let w = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0];
        let picks = top_k_by_weight(&c, &w, 3);
        assert_eq!(picks, vec![NodeId(0), NodeId(2), NodeId(4)]);
    }

    #[test]
    fn top_k_handles_short_lists_and_ties() {
        let c = ids(2);
        assert_eq!(top_k_by_weight(&c, &[1.0, 1.0], 5), c);
        let c = ids(4);
        // All equal: stable — first k in stream order.
        assert_eq!(
            top_k_by_weight(&c, &[2.0; 4], 2),
            vec![NodeId(0), NodeId(1)]
        );
    }

    #[test]
    fn streaming_weighted_prefers_heavy_members() {
        let c = ids(20);
        let mut w = vec![1.0f32; 20];
        w[3] = 200.0; // heavy member of group 0 (k=2 -> groups of 10)
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..400)
            .filter(|_| {
                StreamingWeightedSampler
                    .sample(&mut rng, &c, &w, 2)
                    .contains(&NodeId(3))
            })
            .count();
        assert!(hits > 350, "heavy member picked only {hits}/400");
    }

    #[test]
    fn streaming_weighted_keeps_group_structure() {
        let c = ids(30);
        let w = vec![1.0f32; 30];
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let picks = StreamingWeightedSampler.sample(&mut rng, &c, &w, 3);
            assert_eq!(picks.len(), 3);
            for (g, p) in picks.iter().enumerate() {
                assert_eq!(p.index() / 10, g, "pick {p} escaped group {g}");
            }
        }
    }

    #[test]
    fn uniform_weights_match_streaming_marginals() {
        let c = ids(24);
        let w = vec![1.0f32; 24];
        let mut rng = SmallRng::seed_from_u64(6);
        let mut counts = vec![0u32; 24];
        let trials = 12_000;
        for _ in 0..trials {
            for p in StreamingWeightedSampler.sample(&mut rng, &c, &w, 4) {
                counts[p.index()] += 1;
            }
        }
        let expect = trials as f64 * 4.0 / 24.0;
        for ct in counts {
            assert!((ct as f64 - expect).abs() < expect * 0.12, "count {ct}");
        }
    }

    #[test]
    fn trait_impl_has_streaming_cost_profile() {
        assert_eq!(
            NeighborSampler::cycles(&StreamingWeightedSampler, 500, 10),
            500
        );
        assert_eq!(
            NeighborSampler::buffer_entries(&StreamingWeightedSampler, 500),
            0
        );
        assert_eq!(
            NeighborSampler::name(&StreamingWeightedSampler),
            "streaming-weighted"
        );
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_weights_panic() {
        top_k_by_weight(&ids(2), &[1.0], 1);
    }
}
