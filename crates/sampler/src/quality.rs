//! Statistical quality checks for samplers, reproducing the paper's Tech-2
//! accuracy-parity claim ("streaming sampling reaches 0.548 on PPI, while
//! standard method reports 0.549").
//!
//! PPI itself is unavailable offline; the proxy is a two-community
//! stochastic block model graph and a neighborhood-vote classifier whose
//! accuracy depends on the sampler exactly the way a GNN's does: biased or
//! low-entropy samples distort the aggregated neighborhood signal.

use crate::NeighborSampler;
use lsdgnn_graph::{CsrGraph, NodeId};
use rand::Rng;

/// Classifies each node by the majority label among `k` sampled neighbors
/// and returns accuracy against the true labels.
///
/// Isolated nodes are skipped; ties count as incorrect (conservative).
///
/// # Panics
///
/// Panics if `labels.len()` does not match the node count.
pub fn neighborhood_vote_accuracy<R: Rng, S: NeighborSampler>(
    rng: &mut R,
    graph: &CsrGraph,
    labels: &[u8],
    sampler: &S,
    k: usize,
) -> f64 {
    assert_eq!(
        labels.len() as u64,
        graph.num_nodes(),
        "labels must cover every node"
    );
    let mut correct = 0u64;
    let mut considered = 0u64;
    for v in 0..graph.num_nodes() {
        let ns = graph.neighbors(NodeId(v));
        if ns.is_empty() {
            continue;
        }
        considered += 1;
        let picked = sampler.sample(rng, ns, k);
        let ones = picked.iter().filter(|p| labels[p.index()] == 1).count();
        let zeros = picked.len() - ones;
        let predicted = match ones.cmp(&zeros) {
            std::cmp::Ordering::Greater => Some(1u8),
            std::cmp::Ordering::Less => Some(0u8),
            std::cmp::Ordering::Equal => None,
        };
        if predicted == Some(labels[v as usize]) {
            correct += 1;
        }
    }
    if considered == 0 {
        0.0
    } else {
        correct as f64 / considered as f64
    }
}

/// Pearson chi-square statistic of a sampler's marginal inclusion counts
/// against the uniform expectation — a direct uniformity test.
///
/// Samples `k`-of-`n` `trials` times; returns the chi-square statistic over
/// the `n` inclusion counts (degrees of freedom `n - 1`).
pub fn uniformity_chi_square<R: Rng, S: NeighborSampler>(
    rng: &mut R,
    sampler: &S,
    n: usize,
    k: usize,
    trials: u32,
) -> f64 {
    let candidates: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    let mut counts = vec![0u64; n];
    for _ in 0..trials {
        for p in sampler.sample(rng, &candidates, k) {
            counts[p.index()] += 1;
        }
    }
    let expect = trials as f64 * k as f64 / n as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expect;
            d * d / expect
        })
        .sum()
}

/// Multiset recall of a degraded sample against the exact one: the
/// fraction of the exact batch's sampled nodes (per hop, with
/// multiplicity) that the degraded batch retained.
///
/// This is the quality-loss number a degraded serving reply is tagged
/// with: a card failure that removes one of four shards should cost
/// roughly a quarter of the frontier, and `batch_recall` measures exactly
/// that. Two identical batches score 1.0; an empty degraded batch scores
/// 0.0 (unless the exact batch is empty too, which scores 1.0 — nothing
/// was lost).
pub fn batch_recall(exact: &crate::SampleBatch, degraded: &crate::SampleBatch) -> f64 {
    use lsdgnn_graph::NodeMap;
    let mut total = 0u64;
    let mut kept = 0u64;
    let empty: Vec<NodeId> = Vec::new();
    for (h, exact_hop) in exact.hops.iter().enumerate() {
        let degraded_hop = degraded.hops.get(h).unwrap_or(&empty);
        let mut avail: NodeMap<u64> = NodeMap::default();
        for &v in degraded_hop {
            *avail.entry(v).or_insert(0) += 1;
        }
        for &v in exact_hop {
            total += 1;
            if let Some(n) = avail.get_mut(&v) {
                if *n > 0 {
                    *n -= 1;
                    kept += 1;
                }
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        kept as f64 / total as f64
    }
}

/// The result of comparing two samplers on the proxy task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityComparison {
    /// Accuracy with the exact standard sampler.
    pub standard_accuracy: f64,
    /// Accuracy with the streaming approximate sampler.
    pub streaming_accuracy: f64,
}

impl QualityComparison {
    /// Absolute accuracy gap.
    pub fn gap(&self) -> f64 {
        (self.standard_accuracy - self.streaming_accuracy).abs()
    }
}

/// Runs the full Tech-2 comparison on a two-community proxy graph.
pub fn compare_streaming_vs_standard<R: Rng>(
    rng: &mut R,
    graph: &CsrGraph,
    labels: &[u8],
    k: usize,
) -> QualityComparison {
    QualityComparison {
        standard_accuracy: neighborhood_vote_accuracy(
            rng,
            graph,
            labels,
            &crate::StandardSampler,
            k,
        ),
        streaming_accuracy: neighborhood_vote_accuracy(
            rng,
            graph,
            labels,
            &crate::StreamingSampler,
            k,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StandardSampler, StreamingSampler};
    use lsdgnn_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn vote_accuracy_high_on_assortative_graph() {
        let (g, labels) = generators::two_community(400, 0.1, 0.01, 30);
        let mut rng = SmallRng::seed_from_u64(31);
        let acc = neighborhood_vote_accuracy(&mut rng, &g, &labels, &StandardSampler, 10);
        assert!(acc > 0.9, "accuracy {acc} too low for assortative graph");
    }

    #[test]
    fn streaming_matches_standard_accuracy() {
        // The Tech-2 parity claim: accuracies within a fraction of a point.
        let (g, labels) = generators::two_community(600, 0.08, 0.02, 32);
        let mut rng = SmallRng::seed_from_u64(33);
        let cmp = compare_streaming_vs_standard(&mut rng, &g, &labels, 10);
        assert!(
            cmp.gap() < 0.035,
            "accuracy gap {} exceeds parity tolerance (std {}, stream {})",
            cmp.gap(),
            cmp.standard_accuracy,
            cmp.streaming_accuracy
        );
    }

    #[test]
    fn chi_square_accepts_both_samplers() {
        // 99.9th percentile of chi-square with 15 dof is ~37.7; allow slack.
        let mut rng = SmallRng::seed_from_u64(34);
        let std_stat = uniformity_chi_square(&mut rng, &StandardSampler, 16, 4, 4_000);
        let stream_stat = uniformity_chi_square(&mut rng, &StreamingSampler, 16, 4, 4_000);
        assert!(std_stat < 45.0, "standard chi2 {std_stat}");
        assert!(stream_stat < 45.0, "streaming chi2 {stream_stat}");
    }

    #[test]
    fn vote_accuracy_near_chance_on_random_labels() {
        let g = generators::uniform_random(400, 10, 35);
        // Alternating labels uncorrelated with uniform edges.
        let labels: Vec<u8> = (0..400).map(|v| (v % 2) as u8).collect();
        let mut rng = SmallRng::seed_from_u64(36);
        let acc = neighborhood_vote_accuracy(&mut rng, &g, &labels, &StandardSampler, 10);
        assert!(acc < 0.65, "accuracy {acc} suspiciously high");
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn mismatched_labels_panic() {
        let g = generators::uniform_random(10, 2, 37);
        let mut rng = SmallRng::seed_from_u64(38);
        neighborhood_vote_accuracy(&mut rng, &g, &[0, 1], &StandardSampler, 2);
    }

    fn batch(hops: Vec<Vec<u64>>) -> crate::SampleBatch {
        crate::SampleBatch {
            roots: vec![NodeId(0)],
            hops: hops
                .into_iter()
                .map(|h| h.into_iter().map(NodeId).collect())
                .collect(),
        }
    }

    #[test]
    fn identical_batches_have_full_recall() {
        let b = batch(vec![vec![1, 2, 3], vec![4, 4, 5]]);
        assert_eq!(batch_recall(&b, &b), 1.0);
    }

    #[test]
    fn empty_degraded_batch_has_zero_recall() {
        let exact = batch(vec![vec![1, 2, 3]]);
        let degraded = batch(vec![vec![]]);
        assert_eq!(batch_recall(&exact, &degraded), 0.0);
        // Losing nothing from nothing costs nothing.
        assert_eq!(batch_recall(&degraded, &degraded), 1.0);
    }

    #[test]
    fn partial_overlap_counts_multiplicity_per_hop() {
        // Hop 0: exact {1,1,2}, degraded {1,2,9} → 2 of 3 kept.
        // Hop 1: exact {5,6}, degraded {} (hop missing) → 0 of 2 kept.
        let exact = batch(vec![vec![1, 1, 2], vec![5, 6]]);
        let degraded = batch(vec![vec![1, 2, 9]]);
        assert_eq!(batch_recall(&exact, &degraded), 2.0 / 5.0);
        // Recall is against the exact batch: same hop sets, other direction.
        assert_eq!(batch_recall(&degraded, &exact), 2.0 / 3.0);
    }

    #[test]
    fn cross_hop_matches_do_not_count() {
        // Node 7 present in both batches but at different hops.
        let exact = batch(vec![vec![7], vec![8]]);
        let degraded = batch(vec![vec![8], vec![7]]);
        assert_eq!(batch_recall(&exact, &degraded), 0.0);
    }
}
