//! GNN graph sampling algorithms for the LSD-GNN reproduction.
//!
//! Implements the paper's sampling stage: uniform random neighbor sampling
//! (the baseline every other method builds on), the paper's **streaming
//! step-based approximate sampling** (§4.2 Tech-2) that trades exactness for
//! an `N`-cycle, zero-buffer pipeline-friendly implementation, multi-hop
//! mini-batch expansion, negative sampling, and weighted sampling. The
//! [`traffic`] module instruments a sampling run to reproduce the paper's
//! memory-access-mix observation (Figure 2(c): ~48 % of requests are
//! fine-grained structure accesses), and [`quality`] reproduces the
//! Tech-2 accuracy-parity claim on a PPI-like proxy task.
//!
//! # Example
//!
//! ```
//! use lsdgnn_graph::generators;
//! use lsdgnn_sampler::{NeighborSampler, StandardSampler, StreamingSampler};
//! use rand::SeedableRng;
//!
//! let g = generators::power_law(1_000, 8, 1);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let ns = g.neighbors(lsdgnn_graph::NodeId(42));
//! let std_pick = StandardSampler.sample(&mut rng, ns, 4);
//! let stream_pick = StreamingSampler.sample(&mut rng, ns, 4);
//! assert_eq!(std_pick.len(), 4.min(ns.len()));
//! assert_eq!(stream_pick.len(), 4.min(ns.len()));
//! ```

pub mod alias;
pub mod block;
pub mod metapath;
pub mod multihop;
pub mod negative;
pub mod quality;
pub mod random;
pub mod streaming;
pub mod topk;
pub mod traffic;
pub mod weighted;

pub use alias::AliasTable;
pub use block::SampleBlock;
pub use metapath::{MetaPath, MetaPathBatch};
pub use multihop::{MultiHopSampler, SampleBatch};
pub use negative::NegativeSampler;
pub use random::StandardSampler;
pub use streaming::StreamingSampler;
pub use topk::{top_k_by_weight, StreamingWeightedSampler};
pub use traffic::{AccessKind, TrafficProfile, TrafficRecorder};
pub use weighted::WeightedSampler;

use lsdgnn_graph::NodeId;
use rand::Rng;

/// A neighbor-sampling strategy: choose up to `k` of the `candidates`.
///
/// Implementations also expose the paper's hardware cost model — cycle
/// count and candidate-buffer requirement — used by the FPGA resource and
/// timing models.
pub trait NeighborSampler {
    /// Samples up to `k` items (without replacement) from `candidates`.
    ///
    /// When `candidates.len() <= k`, all candidates are returned.
    fn sample<R: Rng>(&self, rng: &mut R, candidates: &[NodeId], k: usize) -> Vec<NodeId>;

    /// [`Self::sample`] appending into a caller-provided buffer, so the
    /// flat-buffer serving path can sample straight into pooled scratch
    /// without a per-call allocation.
    ///
    /// Contract: must push exactly the nodes `sample` would return, in the
    /// same order, consuming the RNG identically — the serving paths rely
    /// on this to keep flat and nested sampling byte-identical under one
    /// seed. The default delegates to `sample`; hot samplers override it
    /// allocation-free.
    fn sample_into<R: Rng>(
        &self,
        rng: &mut R,
        candidates: &[NodeId],
        k: usize,
        out: &mut Vec<NodeId>,
    ) {
        out.extend(self.sample(rng, candidates, k));
    }

    /// Hardware cycles to sample `k` of `n`, per the paper's cost analysis
    /// (§4.2 Tech-2: conventional `N+K`, streaming `N`).
    fn cycles(&self, n: usize, k: usize) -> u64;

    /// Candidate-buffer entries required in hardware (`N` conventional,
    /// zero streaming).
    fn buffer_entries(&self, n: usize) -> usize;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}
