//! The flat-buffer mini-batch representation of the serving data plane.
//!
//! A [`SampleBlock`] stores what [`SampleBatch`](crate::SampleBatch)
//! stores — per-hop sampled frontiers in parent-major order — but packed
//! the way the AxE packs results for MoF: one flat `nodes` array plus a
//! `hop_offsets` boundary table, mirroring CSR. No per-hop `Vec`, no
//! per-request object graph; a whole 2-hop mini-batch is three
//! allocations (all recyclable through a buffer pool), and hop access is
//! a slice borrow.
//!
//! The nested-`Vec` [`SampleBatch`](crate::SampleBatch) remains as the
//! client-facing/legacy form; [`SampleBlock::to_batch`] /
//! [`SampleBlock::from_batch`] are the conversion shim the differential
//! tests use to pin both representations to identical samples.

use crate::SampleBatch;
use lsdgnn_graph::NodeId;

/// A flat, CSR-style sampled mini-batch.
///
/// Invariant: `hop_offsets` always starts with `0`, is monotone, ends at
/// `nodes.len()`, and has `num_hops() + 1` entries. Hop `h` is
/// `nodes[hop_offsets[h]..hop_offsets[h + 1]]`, parent-major within the
/// hop (same ordering contract as `SampleBatch`).
#[derive(Debug, Clone)]
pub struct SampleBlock {
    /// The root (seed) nodes of the mini-batch.
    pub roots: Vec<NodeId>,
    /// Hop boundaries into `nodes`: `num_hops() + 1` entries from 0.
    pub hop_offsets: Vec<u32>,
    /// Every sampled node, all hops concatenated, parent-major.
    pub nodes: Vec<NodeId>,
    /// Optional per-parent child boundaries — the second CSR level the
    /// GNN compute stage aggregates over. Parents enumerate as roots
    /// first, then every hop's entries except the last hop's;
    /// `adj_offsets[j]` is the *end* index into `nodes` of parent `j`'s
    /// sampled children (the start is `adj_offsets[j - 1]`, or `0` for
    /// the first parent). Per-parent child counts are data-dependent
    /// (full short lists, `fanout` picks from long ones, nothing from an
    /// unreachable owner), so only the sampling pass itself can record
    /// them: the flat data plane fills this in, while conversions from
    /// the nested legacy form leave it empty ([`Self::has_adjacency`]
    /// tells the two apart).
    ///
    /// Derived routing metadata, not sample content: `PartialEq` and
    /// [`Self::digest`] cover `roots`/`hop_offsets`/`nodes` only, so
    /// legacy-vs-flat differential comparisons keep working on blocks
    /// that agree on samples but differ in adjacency availability.
    pub adj_offsets: Vec<u32>,
}

impl Default for SampleBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// Sample-content equality: two blocks are equal when they hold the same
/// roots, hop boundaries and sampled nodes. `adj_offsets` is *derived*
/// metadata (fully determined by the request under the per-seed
/// determinism contract) and deliberately excluded, so a flat-plane
/// block compares equal to the same samples converted from the legacy
/// nested form, which cannot carry adjacency.
impl PartialEq for SampleBlock {
    fn eq(&self, other: &Self) -> bool {
        self.roots == other.roots
            && self.hop_offsets == other.hop_offsets
            && self.nodes == other.nodes
    }
}

impl Eq for SampleBlock {}

impl SampleBlock {
    /// An empty block (no roots, no hops).
    pub fn new() -> Self {
        SampleBlock {
            roots: Vec::new(),
            hop_offsets: vec![0],
            nodes: Vec::new(),
            adj_offsets: Vec::new(),
        }
    }

    /// Empties the block for reuse, keeping all buffers' capacity — the
    /// pool-recycling entry point.
    pub fn clear(&mut self) {
        self.roots.clear();
        self.nodes.clear();
        self.hop_offsets.clear();
        self.hop_offsets.push(0);
        self.adj_offsets.clear();
    }

    /// Number of hop levels.
    pub fn num_hops(&self) -> usize {
        self.hop_offsets.len() - 1
    }

    /// The sampled nodes of hop `h` (0-based), parent-major.
    ///
    /// # Panics
    ///
    /// Panics if `h >= num_hops()`.
    pub fn hop(&self, h: usize) -> &[NodeId] {
        &self.nodes[self.hop_offsets[h] as usize..self.hop_offsets[h + 1] as usize]
    }

    /// Iterates the hops as slices.
    pub fn hops(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.num_hops()).map(|h| self.hop(h))
    }

    /// Appends one hop's sampled frontier (already parent-major).
    pub fn push_hop(&mut self, frontier: &[NodeId]) {
        self.nodes.extend_from_slice(frontier);
        self.hop_offsets.push(self.nodes.len() as u32);
    }

    /// Total sampled nodes across hops (excluding roots).
    pub fn total_sampled(&self) -> usize {
        self.nodes.len()
    }

    /// Number of parent entries the adjacency table would cover: the
    /// roots plus every hop's entries except the last hop's (leaves have
    /// no children in the block). Zero-hop blocks have no parents.
    pub fn num_parents(&self) -> usize {
        match self.num_hops() {
            0 => 0,
            h => self.roots.len() + self.hop_offsets[h - 1] as usize,
        }
    }

    /// Whether this block carries the per-parent adjacency table — true
    /// for blocks produced by the flat sampling data plane, false for
    /// conversions from the nested legacy form (whose per-parent counts
    /// are unrecoverable).
    pub fn has_adjacency(&self) -> bool {
        self.num_hops() > 0 && self.adj_offsets.len() == self.num_parents()
    }

    /// The sampled children of parent entry `j` (see [`Self::adj_offsets`]
    /// for the parent enumeration order).
    ///
    /// # Panics
    ///
    /// Panics if the block has no adjacency table or `j` is out of range.
    pub fn children(&self, j: usize) -> &[NodeId] {
        assert!(self.has_adjacency(), "block carries no adjacency table");
        let start = if j == 0 {
            0
        } else {
            self.adj_offsets[j - 1] as usize
        };
        &self.nodes[start..self.adj_offsets[j] as usize]
    }

    /// All nodes whose attributes a GNN layer would fetch: roots then
    /// every hop's samples, in order (same list as
    /// `SampleBatch::attr_fetch_list`).
    pub fn attr_fetch_list(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.roots.len() + self.nodes.len());
        self.attr_fetch_into(&mut out);
        out
    }

    /// [`Self::attr_fetch_list`] appending into a recycled buffer.
    pub fn attr_fetch_into(&self, out: &mut Vec<NodeId>) {
        out.extend_from_slice(&self.roots);
        out.extend_from_slice(&self.nodes);
    }

    /// Converts to the nested-`Vec` legacy form.
    pub fn to_batch(&self) -> SampleBatch {
        SampleBatch {
            roots: self.roots.clone(),
            hops: self.hops().map(<[NodeId]>::to_vec).collect(),
        }
    }

    /// Consuming variant of [`Self::to_batch`] (reuses the roots buffer).
    pub fn into_batch(self) -> SampleBatch {
        SampleBatch {
            hops: self.hops().map(<[NodeId]>::to_vec).collect(),
            roots: self.roots,
        }
    }

    /// Packs a nested-`Vec` batch into flat form.
    pub fn from_batch(batch: &SampleBatch) -> Self {
        let mut block = SampleBlock::new();
        block.roots.extend_from_slice(&batch.roots);
        for hop in &batch.hops {
            block.push_hop(hop);
        }
        block
    }

    /// FNV-1a digest over the sample content (roots, boundaries, nodes).
    /// Two blocks are byte-identical iff their digests and lengths agree;
    /// the differential tests compare digests across the legacy and flat
    /// serving paths. Like `PartialEq`, the digest excludes the derived
    /// `adj_offsets` table so both paths fingerprint identically.
    pub fn digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        fold(self.roots.len() as u64);
        for r in &self.roots {
            fold(r.0);
        }
        fold(self.hop_offsets.len() as u64);
        for &o in &self.hop_offsets {
            fold(o as u64);
        }
        for n in &self.nodes {
            fold(n.0);
        }
        h
    }
}

impl From<SampleBatch> for SampleBlock {
    fn from(batch: SampleBatch) -> Self {
        SampleBlock::from_batch(&batch)
    }
}

impl From<SampleBlock> for SampleBatch {
    fn from(block: SampleBlock) -> Self {
        block.into_batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> SampleBatch {
        SampleBatch {
            roots: vec![NodeId(1), NodeId(2)],
            hops: vec![
                vec![NodeId(3), NodeId(4), NodeId(5)],
                vec![NodeId(6), NodeId(7)],
            ],
        }
    }

    #[test]
    fn round_trips_through_batch() {
        let batch = sample_batch();
        let block = SampleBlock::from_batch(&batch);
        assert_eq!(block.num_hops(), 2);
        assert_eq!(block.hop(0), &[NodeId(3), NodeId(4), NodeId(5)]);
        assert_eq!(block.hop(1), &[NodeId(6), NodeId(7)]);
        assert_eq!(block.total_sampled(), 5);
        assert_eq!(block.to_batch(), batch);
        assert_eq!(SampleBatch::from(block), batch);
    }

    #[test]
    fn attr_fetch_list_matches_legacy() {
        let batch = sample_batch();
        let block = SampleBlock::from_batch(&batch);
        assert_eq!(block.attr_fetch_list(), batch.attr_fetch_list());
    }

    #[test]
    fn clear_keeps_invariants_and_capacity() {
        let mut block = SampleBlock::from_batch(&sample_batch());
        let cap = block.nodes.capacity();
        block.clear();
        assert_eq!(block, SampleBlock::new());
        assert_eq!(block.num_hops(), 0);
        assert!(block.nodes.capacity() >= cap.min(1));
        block.roots.push(NodeId(9));
        block.push_hop(&[NodeId(10)]);
        assert_eq!(block.hop(0), &[NodeId(10)]);
    }

    #[test]
    fn digest_distinguishes_content_and_structure() {
        let a = SampleBlock::from_batch(&sample_batch());
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.nodes[0] = NodeId(99);
        assert_ne!(a.digest(), b.digest());
        // Same flat nodes, different hop boundary: digests differ.
        let flat = SampleBlock {
            roots: a.roots.clone(),
            hop_offsets: vec![0, 2, 5],
            nodes: a.nodes.clone(),
            adj_offsets: Vec::new(),
        };
        assert_ne!(a.digest(), flat.digest());
        // Empty-vs-empty agrees.
        assert_eq!(SampleBlock::new().digest(), SampleBlock::new().digest());
    }

    #[test]
    fn adjacency_spans_address_children_per_parent() {
        // 2 roots, hop 0 of 3 nodes, hop 1 of 2 nodes. Parents are the
        // roots (children in hop 0) and the hop-0 entries (children in
        // hop 1): root 0 sampled 2 children, root 1 sampled 1; the first
        // hop-0 entry sampled both hop-1 nodes, the other two none.
        let mut block = SampleBlock::from_batch(&sample_batch());
        assert!(!block.has_adjacency(), "conversions carry no adjacency");
        block.adj_offsets = vec![2, 3, 5, 5, 5];
        assert_eq!(block.num_parents(), 5);
        assert!(block.has_adjacency());
        assert_eq!(block.children(0), &[NodeId(3), NodeId(4)]);
        assert_eq!(block.children(1), &[NodeId(5)]);
        assert_eq!(block.children(2), &[NodeId(6), NodeId(7)]);
        assert!(block.children(3).is_empty());
        assert!(block.children(4).is_empty());
    }

    #[test]
    fn equality_and_digest_ignore_derived_adjacency() {
        // The legacy conversion cannot reconstruct adjacency; blocks that
        // agree on samples must still compare (and fingerprint) equal.
        let plain = SampleBlock::from_batch(&sample_batch());
        let mut with_adj = plain.clone();
        with_adj.adj_offsets = vec![2, 3, 5, 5, 5];
        assert_eq!(plain, with_adj);
        assert_eq!(plain.digest(), with_adj.digest());
        // Clearing drops the adjacency with the rest.
        with_adj.clear();
        assert!(with_adj.adj_offsets.is_empty());
        assert!(!with_adj.has_adjacency());
    }

    #[test]
    fn empty_hops_are_representable() {
        let mut block = SampleBlock::new();
        block.roots.push(NodeId(0));
        block.push_hop(&[]);
        block.push_hop(&[]);
        assert_eq!(block.num_hops(), 2);
        assert!(block.hop(0).is_empty() && block.hop(1).is_empty());
        assert_eq!(block.to_batch().hops, vec![Vec::<NodeId>::new(); 2]);
    }
}
