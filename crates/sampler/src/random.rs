//! Conventional exact uniform random sampling (the hardware baseline).

use crate::NeighborSampler;
use lsdgnn_graph::NodeId;
use rand::Rng;

/// Exact uniform sampling without replacement via a partial Fisher–Yates
/// shuffle.
///
/// This is the "conventional random sampling hardware" of the paper's
/// Tech-2 discussion: it needs an `N`-entry candidate buffer and `N + K`
/// cycles (fill, then draw), which is what the streaming sampler eliminates.
///
/// # Example
///
/// ```
/// use lsdgnn_sampler::{NeighborSampler, StandardSampler};
/// use lsdgnn_graph::NodeId;
/// use rand::SeedableRng;
///
/// let candidates: Vec<NodeId> = (0..100).map(NodeId).collect();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let picks = StandardSampler.sample(&mut rng, &candidates, 10);
/// assert_eq!(picks.len(), 10);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardSampler;

impl NeighborSampler for StandardSampler {
    fn sample<R: Rng>(&self, rng: &mut R, candidates: &[NodeId], k: usize) -> Vec<NodeId> {
        if candidates.len() <= k {
            return candidates.to_vec();
        }
        // Partial Fisher–Yates: buffer the candidate list, swap a random
        // remaining element into each of the first k positions.
        let mut buf = candidates.to_vec();
        for i in 0..k {
            let j = rng.gen_range(i..buf.len());
            buf.swap(i, j);
        }
        buf.truncate(k);
        buf
    }

    fn cycles(&self, n: usize, k: usize) -> u64 {
        (n + k.min(n)) as u64
    }

    fn buffer_entries(&self, n: usize) -> usize {
        n
    }

    fn name(&self) -> &'static str {
        "standard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn ids(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn samples_k_unique_members() {
        let mut rng = SmallRng::seed_from_u64(2);
        let cands = ids(50);
        let picks = StandardSampler.sample(&mut rng, &cands, 10);
        assert_eq!(picks.len(), 10);
        let set: HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 10, "samples must be unique");
        assert!(picks.iter().all(|p| cands.contains(p)));
    }

    #[test]
    fn short_candidate_lists_return_all() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cands = ids(4);
        assert_eq!(StandardSampler.sample(&mut rng, &cands, 10), cands);
        assert!(StandardSampler.sample(&mut rng, &[], 10).is_empty());
    }

    #[test]
    fn is_statistically_uniform() {
        // Chi-square style check: sample 1-of-16 repeatedly; every
        // candidate should land near the expected 1/16 frequency.
        let mut rng = SmallRng::seed_from_u64(4);
        let cands = ids(16);
        let trials = 32_000;
        let mut counts = [0u32; 16];
        for _ in 0..trials {
            let p = StandardSampler.sample(&mut rng, &cands, 1)[0];
            counts[p.index()] += 1;
        }
        let expect = trials as f64 / 16.0;
        for c in counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "count {c} deviates from {expect}"
            );
        }
    }

    #[test]
    fn cost_model_matches_paper() {
        // Paper: N space, N+K cycles.
        assert_eq!(StandardSampler.cycles(100, 10), 110);
        assert_eq!(StandardSampler.buffer_entries(100), 100);
        assert_eq!(StandardSampler.name(), "standard");
    }
}
