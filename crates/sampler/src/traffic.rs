//! Memory-traffic instrumentation behind Figure 2(c).
//!
//! The paper observes that on average ~48 % of memory *requests* issued by
//! LSD-GNN sampling are fine-grained (8–64 B) graph-structure accesses —
//! offsets, pointers and neighbor ids — while the rest are attribute
//! fetches. This module counts both while a sampling plan executes.

use crate::NeighborSampler;
use lsdgnn_graph::{CsrGraph, DatasetConfig, NodeId};
use rand::Rng;

/// Classifies one memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Graph-structure access: offset/degree lookups and neighbor-id reads
    /// (fine-grained, 8–64 B, indirect pointer chasing).
    Structure,
    /// Node-attribute fetch (attr_len × 4 bytes, streamable).
    Attribute,
}

/// Accumulates request and byte counts per access kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficRecorder {
    structure_requests: u64,
    structure_bytes: u64,
    attribute_requests: u64,
    attribute_bytes: u64,
}

impl TrafficRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request of `bytes` bytes.
    pub fn record(&mut self, kind: AccessKind, bytes: u64) {
        match kind {
            AccessKind::Structure => {
                self.structure_requests += 1;
                self.structure_bytes += bytes;
            }
            AccessKind::Attribute => {
                self.attribute_requests += 1;
                self.attribute_bytes += bytes;
            }
        }
    }

    /// Finalizes into a profile.
    pub fn profile(&self) -> TrafficProfile {
        TrafficProfile {
            structure_requests: self.structure_requests,
            structure_bytes: self.structure_bytes,
            attribute_requests: self.attribute_requests,
            attribute_bytes: self.attribute_bytes,
        }
    }
}

/// The access mix of a sampling run (Figure 2(c) data point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficProfile {
    /// Count of structure requests.
    pub structure_requests: u64,
    /// Bytes moved by structure requests.
    pub structure_bytes: u64,
    /// Count of attribute requests.
    pub attribute_requests: u64,
    /// Bytes moved by attribute requests.
    pub attribute_bytes: u64,
}

impl TrafficProfile {
    /// Fraction of *requests* that are structure accesses — the quantity
    /// Figure 2(c) plots.
    pub fn structure_request_fraction(&self) -> f64 {
        let total = self.structure_requests + self.attribute_requests;
        if total == 0 {
            0.0
        } else {
            self.structure_requests as f64 / total as f64
        }
    }

    /// Fraction of bytes that are structure accesses.
    pub fn structure_byte_fraction(&self) -> f64 {
        let total = self.structure_bytes + self.attribute_bytes;
        if total == 0 {
            0.0
        } else {
            self.structure_bytes as f64 / total as f64
        }
    }

    /// Mean structure request size in bytes.
    pub fn avg_structure_request_bytes(&self) -> f64 {
        if self.structure_requests == 0 {
            0.0
        } else {
            self.structure_bytes as f64 / self.structure_requests as f64
        }
    }
}

/// Runs one instrumented mini-batch over `graph` and returns its traffic
/// profile.
///
/// Request accounting mirrors the hardware: expanding a node issues one
/// 8-byte offset/degree read plus one 8-byte neighbor-id read per neighbor
/// inspected; each sampled node costs one attribute fetch of
/// `attr_len * 4` bytes.
pub fn profile_batch<R: Rng, S: NeighborSampler>(
    rng: &mut R,
    graph: &CsrGraph,
    sampler: &S,
    roots: &[NodeId],
    hops: u32,
    fanout: usize,
    attr_len: usize,
) -> TrafficProfile {
    let mut rec = TrafficRecorder::new();
    let mut frontier: Vec<NodeId> = roots.to_vec();
    // Roots' attributes are fetched too.
    for _ in roots {
        rec.record(AccessKind::Attribute, attr_len as u64 * 4);
    }
    for _ in 0..hops {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for &v in &frontier {
            let ns = graph.neighbors(v);
            rec.record(AccessKind::Structure, 8); // offset/degree
            for _ in ns {
                rec.record(AccessKind::Structure, 8); // neighbor id
            }
            let picked = sampler.sample(rng, ns, fanout);
            for _ in &picked {
                rec.record(AccessKind::Attribute, attr_len as u64 * 4);
            }
            next.extend(picked);
        }
        frontier = next;
    }
    rec.profile()
}

/// Analytic request-mix estimate for a paper-scale dataset (no execution),
/// using the dataset's average degree. Used for the Figure 2(c) rows whose
/// graphs are too large to instantiate.
pub fn analytic_profile(d: &DatasetConfig) -> TrafficProfile {
    let s = &d.sampling;
    let b = s.batch_size as u64;
    let f = s.fanout as u64;
    let deg = d.avg_degree();
    // Expansions: roots at hop 1, then each hop's samples.
    let mut expansions = 0u64;
    let mut frontier = b;
    for _ in 0..s.hops {
        expansions += frontier;
        frontier *= f;
    }
    let attr_fetches = s.attr_fetches_per_batch();
    let structure_requests = expansions + (expansions as f64 * deg) as u64;
    TrafficProfile {
        structure_requests,
        structure_bytes: structure_requests * 8,
        attribute_requests: attr_fetches,
        attribute_bytes: attr_fetches * d.attr_len as u64 * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StandardSampler;
    use lsdgnn_graph::{generators, PAPER_DATASETS};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn recorder_accumulates_by_kind() {
        let mut r = TrafficRecorder::new();
        r.record(AccessKind::Structure, 8);
        r.record(AccessKind::Structure, 16);
        r.record(AccessKind::Attribute, 512);
        let p = r.profile();
        assert_eq!(p.structure_requests, 2);
        assert_eq!(p.structure_bytes, 24);
        assert_eq!(p.attribute_requests, 1);
        assert!((p.structure_request_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.avg_structure_request_bytes(), 12.0);
    }

    #[test]
    fn profiled_batch_matches_expected_shape() {
        let g = generators::uniform_random(2_000, 9, 20);
        let mut rng = SmallRng::seed_from_u64(21);
        let roots: Vec<NodeId> = (0..32).map(NodeId).collect();
        let p = profile_batch(&mut rng, &g, &StandardSampler, &roots, 2, 10, 72);
        // Structure requests should be a large minority-to-majority share.
        let f = p.structure_request_fraction();
        assert!((0.3..0.7).contains(&f), "structure fraction {f}");
        // Structure requests are fine-grained.
        assert!(p.avg_structure_request_bytes() <= 64.0);
        // Attribute bytes dominate byte traffic for 72-float attrs.
        assert!(p.structure_byte_fraction() < 0.3);
    }

    #[test]
    fn analytic_mix_averages_near_paper_48pct() {
        // Figure 2(c): on average 48% of requests are structure accesses.
        let fractions: Vec<f64> = PAPER_DATASETS
            .iter()
            .map(|d| analytic_profile(d).structure_request_fraction())
            .collect();
        let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
        assert!(
            (0.35..0.65).contains(&avg),
            "avg structure fraction {avg} far from paper's 0.48"
        );
        // Denser graphs have a higher structure share.
        let ls = analytic_profile(&PAPER_DATASETS[1]).structure_request_fraction();
        let ml = analytic_profile(&PAPER_DATASETS[3]).structure_request_fraction();
        assert!(ml > ls);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = TrafficRecorder::new().profile();
        assert_eq!(p.structure_request_fraction(), 0.0);
        assert_eq!(p.structure_byte_fraction(), 0.0);
        assert_eq!(p.avg_structure_request_bytes(), 0.0);
    }
}
