//! Negative sampling — the `negative sample` AxE command (paper Table 4).
//!
//! Link-prediction training pairs each positive edge with `rate` sampled
//! non-neighbors of the source node.

use lsdgnn_graph::{CsrGraph, NodeId};
use rand::Rng;

/// Uniform negative sampler with rejection of true neighbors.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::{generators, NodeId};
/// use lsdgnn_sampler::NegativeSampler;
/// use rand::SeedableRng;
///
/// let g = generators::uniform_random(200, 4, 1);
/// let neg = NegativeSampler::new(10);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
/// let samples = neg.sample(&mut rng, &g, NodeId(3));
/// assert_eq!(samples.len(), 10);
/// for s in samples {
///     assert!(!g.has_edge(NodeId(3), s));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegativeSampler {
    rate: usize,
    max_rejects: usize,
}

impl NegativeSampler {
    /// Creates a sampler producing `rate` negatives per query.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn new(rate: usize) -> Self {
        assert!(rate > 0, "negative rate must be non-zero");
        NegativeSampler {
            rate,
            max_rejects: 64,
        }
    }

    /// Negatives produced per query.
    pub fn rate(&self) -> usize {
        self.rate
    }

    /// Samples `rate` nodes that are not out-neighbors of `source`
    /// (and not `source` itself).
    ///
    /// Rejection sampling with a bounded retry budget: on extremely dense
    /// rows the last draw may be a true neighbor, mirroring the
    /// approximate hardware behaviour (a bounded-latency datapath cannot
    /// loop forever).
    pub fn sample<R: Rng>(&self, rng: &mut R, graph: &CsrGraph, source: NodeId) -> Vec<NodeId> {
        let n = graph.num_nodes();
        let mut out = Vec::with_capacity(self.rate);
        for _ in 0..self.rate {
            let mut pick = NodeId(rng.gen_range(0..n));
            for _ in 0..self.max_rejects {
                if pick != source && !graph.has_edge(source, pick) {
                    break;
                }
                pick = NodeId(rng.gen_range(0..n));
            }
            out.push(pick);
        }
        out
    }

    /// Samples negatives for a batch of `(src, dst)` positive pairs,
    /// returning `rate` negatives per pair keyed to the source node.
    pub fn sample_pairs<R: Rng>(
        &self,
        rng: &mut R,
        graph: &CsrGraph,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Vec<NodeId>> {
        pairs
            .iter()
            .map(|&(src, _)| self.sample(rng, graph, src))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn negatives_avoid_neighbors_on_sparse_graphs() {
        let g = generators::uniform_random(500, 5, 6);
        let neg = NegativeSampler::new(20);
        let mut rng = SmallRng::seed_from_u64(6);
        for v in [0u64, 7, 100] {
            let out = neg.sample(&mut rng, &g, NodeId(v));
            assert_eq!(out.len(), 20);
            for s in out {
                assert!(!g.has_edge(NodeId(v), s));
                assert_ne!(s, NodeId(v));
            }
        }
    }

    #[test]
    fn pair_batches_produce_rate_per_pair() {
        let g = generators::uniform_random(300, 4, 7);
        let neg = NegativeSampler::new(10);
        let mut rng = SmallRng::seed_from_u64(7);
        let pairs = vec![(NodeId(1), NodeId(2)), (NodeId(3), NodeId(4))];
        let out = neg.sample_pairs(&mut rng, &g, &pairs);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.len() == 10));
    }

    #[test]
    fn negatives_are_spread_out() {
        let g = generators::uniform_random(1_000, 3, 8);
        let neg = NegativeSampler::new(100);
        let mut rng = SmallRng::seed_from_u64(8);
        let out = neg.sample(&mut rng, &g, NodeId(0));
        let unique: std::collections::HashSet<_> = out.iter().collect();
        assert!(unique.len() > 90, "negatives should rarely repeat");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rate_panics() {
        let _ = NegativeSampler::new(0);
    }
}
