//! Bridges a [`FaultPlan`]'s deterministic timeline into a desim
//! [`Simulation`]: every [`FaultEvent`] becomes a scheduled simulation
//! event, so hardware models (AxE memory channels, fabric links) react
//! to card crashes, partitions and stalls at exact simulated instants —
//! the same mechanism their own traffic uses, with no chaos-specific
//! clocking.

use crate::plan::{FaultEvent, FaultPlan};
use lsdgnn_desim::{Simulation, Time};
use std::rc::Rc;

/// Schedules every timeline event of `plan` into `sim` (at the event's
/// tick, relative to the simulation epoch), invoking `handler` when each
/// fires. Returns the number of events installed.
///
/// The handler is shared across events via `Rc`, so it may own mutable
/// model state behind a `RefCell`.
pub fn install<F>(sim: &mut Simulation, plan: &FaultPlan, handler: F) -> usize
where
    F: Fn(&mut Simulation, FaultEvent) + 'static,
{
    let handler = Rc::new(handler);
    let events = plan.schedule().to_vec();
    let n = events.len();
    for ev in events {
        let h = handler.clone();
        sim.schedule_at(Time::from_ticks(ev.at), move |sim: &mut Simulation| {
            h(sim, ev)
        });
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, MemStall, ScenarioSpec};
    use std::cell::RefCell;

    #[test]
    fn timeline_events_fire_at_their_ticks() {
        let spec = ScenarioSpec::none()
            .with_card_failure(1, 300)
            .with_mem_stall(MemStall {
                channel: 0,
                at: 100,
                duration: 50,
            });
        let plan = FaultPlan::build(5, spec).unwrap();
        let mut sim = Simulation::new();
        let seen: Rc<RefCell<Vec<(u64, FaultEvent)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = seen.clone();
        let installed = install(&mut sim, &plan, move |sim, ev| {
            sink.borrow_mut().push((sim.now().as_ticks(), ev));
        });
        assert_eq!(installed, 2);
        sim.run();
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, 100);
        assert!(matches!(
            seen[0].1.kind,
            FaultKind::MemStall {
                channel: 0,
                duration: 50
            }
        ));
        assert_eq!(seen[1].0, 300);
        assert!(matches!(seen[1].1.kind, FaultKind::CardDown { card: 1 }));
    }

    #[test]
    fn handler_can_schedule_follow_up_work() {
        // A stall handler that models recovery by scheduling the
        // stall-end itself.
        let plan = FaultPlan::build(
            6,
            ScenarioSpec::none().with_mem_stall(MemStall {
                channel: 2,
                at: 10,
                duration: 25,
            }),
        )
        .unwrap();
        let mut sim = Simulation::new();
        let recovered: Rc<RefCell<Option<u64>>> = Rc::new(RefCell::new(None));
        let sink = recovered.clone();
        install(&mut sim, &plan, move |sim, ev| {
            if let FaultKind::MemStall { duration, .. } = ev.kind {
                let sink = sink.clone();
                sim.schedule(Time::from_ticks(duration), move |sim: &mut Simulation| {
                    *sink.borrow_mut() = Some(sim.now().as_ticks());
                });
            }
        });
        sim.run();
        assert_eq!(*recovered.borrow(), Some(35));
    }
}
