//! Counter-based deterministic randomness for fault decisions.
//!
//! Fault injection must be *replayable byte-for-byte*: the decision "does
//! transmission #17 on link 3 get dropped?" has to come out the same on
//! every run, in any thread interleaving, at any `--jobs` count. A
//! stateful RNG cannot give that — the answer would depend on how many
//! draws happened before. Instead every decision is a pure function of
//! `(plan seed, stream, index)`: a splitmix64-style finalizer hashes the
//! triple, so streams are decorrelated and indices within a stream are
//! independent, with no shared state at all.

/// The splitmix64 output finalizer: a fast, well-mixed 64-bit hash.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Well-known stream tags, one per fault family, so two fault kinds keyed
/// on the same entity id never share draws.
pub mod stream {
    /// Frame drops on a MoF link.
    pub const FRAME_LOSS: u64 = 1;
    /// Frame payload corruption on a MoF link.
    pub const FRAME_CORRUPT: u64 = 2;
    /// Whole-dispatch loss at the service layer.
    pub const REQUEST_LOSS: u64 = 3;
    /// Straggler delay magnitude per card.
    pub const STRAGGLER: u64 = 4;
    /// Retry backoff jitter per request.
    pub const BACKOFF_JITTER: u64 = 5;
}

/// A stateless draw source: all randomness is `hash(seed, stream, index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosRng {
    seed: u64,
}

impl ChaosRng {
    /// Creates a draw source rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosRng { seed: mix(seed) }
    }

    /// The raw 64-bit draw for `(stream, entity, index)`.
    #[inline]
    pub fn draw(&self, stream: u64, entity: u64, index: u64) -> u64 {
        mix(self.seed ^ mix(stream ^ mix(entity) ^ mix(index).rotate_left(17)))
    }

    /// A uniform draw in `[0, 1)` for `(stream, entity, index)`.
    #[inline]
    pub fn uniform(&self, stream: u64, entity: u64, index: u64) -> f64 {
        // 53 mantissa bits of the draw.
        (self.draw(stream, entity, index) >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_the_triple() {
        let a = ChaosRng::new(7);
        let b = ChaosRng::new(7);
        for i in 0..100 {
            assert_eq!(
                a.draw(stream::FRAME_LOSS, 3, i),
                b.draw(stream::FRAME_LOSS, 3, i)
            );
        }
    }

    #[test]
    fn streams_and_seeds_decorrelate() {
        let a = ChaosRng::new(1);
        let b = ChaosRng::new(2);
        let same: usize = (0..256)
            .filter(|&i| a.draw(1, 0, i) == b.draw(1, 0, i))
            .count();
        assert_eq!(same, 0, "different seeds should never collide");
        let cross: usize = (0..256)
            .filter(|&i| a.draw(stream::FRAME_LOSS, 0, i) == a.draw(stream::FRAME_CORRUPT, 0, i))
            .count();
        assert_eq!(cross, 0, "different streams should never collide");
    }

    #[test]
    fn uniform_hits_the_requested_rate() {
        let rng = ChaosRng::new(42);
        let hits = (0..10_000)
            .filter(|&i| rng.uniform(stream::FRAME_LOSS, 0, i) < 0.05)
            .count();
        // 5% +- generous sampling slack.
        assert!((300..=700).contains(&hits), "hits {hits} far from 500");
    }
}
