//! Scenario specs and the [`FaultPlan`]: a deterministic, replayable
//! fault schedule.
//!
//! A [`ScenarioSpec`] *describes* the failure modes to exercise — frame
//! loss, link partitions, card crashes, stragglers, service-worker
//! faults. [`FaultPlan::build`] fixes a seed, validates the spec and
//! materializes the deterministic timeline; every stochastic decision is
//! then a pure function of `(seed, stream, entity, index)` via
//! [`crate::ChaosRng`], so the same seed + spec replays byte-for-byte on
//! any machine, thread count or call order. [`FaultPlan::encode`]
//! canonicalizes the whole plan into bytes for exactly that comparison.
//!
//! Virtual time: the plan is clocked in abstract *ticks*. Layers map
//! their own notion of progress onto ticks — the MoF layer uses
//! transmission indices, the serving layer uses per-request sequence
//! numbers — which keeps every fault decision independent of wall-clock
//! scheduling noise.

use crate::rng::{mix, stream, ChaosRng};

/// A bandwidth-degradation window on one fabric link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegrade {
    /// Which link.
    pub link: u32,
    /// Window start (ticks, inclusive).
    pub from: u64,
    /// Window end (ticks, exclusive).
    pub until: u64,
    /// Multiplier on effective bandwidth in the window (0 < f <= 1).
    pub bandwidth_factor: f64,
}

/// A full-loss partition window on one fabric link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkPartition {
    /// Which link.
    pub link: u32,
    /// Window start (ticks, inclusive).
    pub from: u64,
    /// Window end (ticks, exclusive).
    pub until: u64,
}

/// A card (accelerator shard) crash: down from `at` onward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardFailure {
    /// Which card / backend shard.
    pub card: u32,
    /// Crash instant (ticks).
    pub at: u64,
}

/// A persistent slowdown on one card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// Which card.
    pub card: u32,
    /// Service-time multiplier (> 1).
    pub slowdown: f64,
}

/// A memory-channel stall (consumed by the desim glue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStall {
    /// Which memory channel.
    pub channel: u32,
    /// Stall start (ticks).
    pub at: u64,
    /// Stall length (ticks).
    pub duration: u64,
}

/// A service worker-shard panic after its N-th dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Which worker shard.
    pub worker: u32,
    /// Panic fires when the shard starts dispatch number
    /// `after_dispatches` (0-based).
    pub after_dispatches: u64,
}

/// A service queue stall: the worker freezes for `stall_us` before its
/// N-th dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStall {
    /// Which worker shard.
    pub worker: u32,
    /// Stall fires before dispatch number `after_dispatches` (0-based).
    pub after_dispatches: u64,
    /// Stall length in microseconds of real time.
    pub stall_us: u64,
}

/// What faults to inject, across all three layers. Build one with the
/// fluent `with_*` methods starting from [`ScenarioSpec::none`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSpec {
    /// Per-transmission frame-drop probability on MoF links.
    pub frame_loss: f64,
    /// Per-transmission frame-corruption probability on MoF links.
    pub frame_corruption: f64,
    /// Per-attempt whole-dispatch loss probability at the service layer
    /// (models a request whose MoF recovery budget is exhausted).
    pub request_loss: f64,
    /// Base injected delay for straggler cards, microseconds.
    pub straggler_delay_us: u64,
    /// Bandwidth-degradation windows.
    pub degrades: Vec<LinkDegrade>,
    /// Link-partition windows.
    pub partitions: Vec<LinkPartition>,
    /// Card crashes.
    pub card_failures: Vec<CardFailure>,
    /// Slow cards.
    pub stragglers: Vec<Straggler>,
    /// Memory-channel stalls.
    pub mem_stalls: Vec<MemStall>,
    /// Worker-shard panics.
    pub worker_panics: Vec<WorkerPanic>,
    /// Worker-queue stalls.
    pub queue_stalls: Vec<QueueStall>,
}

impl ScenarioSpec {
    /// The empty scenario: no faults at all.
    pub fn none() -> Self {
        ScenarioSpec::default()
    }

    /// Sets the per-transmission frame-loss probability.
    pub fn with_frame_loss(mut self, p: f64) -> Self {
        self.frame_loss = p;
        self
    }

    /// Sets the per-transmission corruption probability.
    pub fn with_frame_corruption(mut self, p: f64) -> Self {
        self.frame_corruption = p;
        self
    }

    /// Sets the per-attempt service-level dispatch-loss probability.
    pub fn with_request_loss(mut self, p: f64) -> Self {
        self.request_loss = p;
        self
    }

    /// Adds a bandwidth-degradation window.
    pub fn with_degrade(mut self, d: LinkDegrade) -> Self {
        self.degrades.push(d);
        self
    }

    /// Adds a link-partition window.
    pub fn with_partition(mut self, p: LinkPartition) -> Self {
        self.partitions.push(p);
        self
    }

    /// Crashes `card` at tick `at`.
    pub fn with_card_failure(mut self, card: u32, at: u64) -> Self {
        self.card_failures.push(CardFailure { card, at });
        self
    }

    /// Makes `card` a straggler with the given slowdown and base delay.
    pub fn with_straggler(mut self, card: u32, slowdown: f64, base_delay_us: u64) -> Self {
        self.stragglers.push(Straggler { card, slowdown });
        self.straggler_delay_us = base_delay_us;
        self
    }

    /// Adds a memory-channel stall.
    pub fn with_mem_stall(mut self, s: MemStall) -> Self {
        self.mem_stalls.push(s);
        self
    }

    /// Panics worker `worker` at its `after`-th dispatch.
    pub fn with_worker_panic(mut self, worker: u32, after: u64) -> Self {
        self.worker_panics.push(WorkerPanic {
            worker,
            after_dispatches: after,
        });
        self
    }

    /// Stalls worker `worker` for `stall_us` before its `after`-th
    /// dispatch.
    pub fn with_queue_stall(mut self, worker: u32, after: u64, stall_us: u64) -> Self {
        self.queue_stalls.push(QueueStall {
            worker,
            after_dispatches: after,
            stall_us,
        });
        self
    }
}

/// One entry of the materialized deterministic timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A card goes down (and stays down).
    CardDown {
        /// Which card.
        card: u32,
    },
    /// A link-partition window opens.
    PartitionStart {
        /// Which link.
        link: u32,
    },
    /// A link-partition window closes.
    PartitionEnd {
        /// Which link.
        link: u32,
    },
    /// A bandwidth-degradation window opens.
    DegradeStart {
        /// Which link.
        link: u32,
        /// Bandwidth multiplier inside the window.
        factor: f64,
    },
    /// A bandwidth-degradation window closes.
    DegradeEnd {
        /// Which link.
        link: u32,
    },
    /// A memory channel stalls for `duration` ticks.
    MemStall {
        /// Which channel.
        channel: u32,
        /// Stall length (ticks).
        duration: u64,
    },
}

/// A timeline entry: `kind` fires at tick `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Fire time in plan ticks.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Errors rejected by [`FaultPlan::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A probability was outside `[0, 1]`.
    BadProbability(&'static str, f64),
    /// A window had `until <= from`.
    EmptyWindow(&'static str),
    /// A multiplicative factor was non-positive or (for slowdowns) < 1.
    BadFactor(&'static str, f64),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadProbability(what, p) => {
                write!(f, "{what} probability {p} outside [0, 1]")
            }
            PlanError::EmptyWindow(what) => write!(f, "{what} window is empty (until <= from)"),
            PlanError::BadFactor(what, v) => write!(f, "{what} factor {v} out of range"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The built, validated, deterministic fault plan.
///
/// Immutable and cheap to share (`Arc<FaultPlan>`); all queries are pure.
/// Two plans built from the same seed + spec are equal and encode to
/// identical bytes — the replayability contract the determinism tests
/// pin down.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    spec: ScenarioSpec,
    rng: ChaosRng,
    schedule: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Validates `spec` and materializes the deterministic timeline.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] for out-of-range probabilities, empty
    /// windows or nonsensical factors.
    pub fn build(seed: u64, spec: ScenarioSpec) -> Result<FaultPlan, PlanError> {
        for (what, p) in [
            ("frame_loss", spec.frame_loss),
            ("frame_corruption", spec.frame_corruption),
            ("request_loss", spec.request_loss),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(PlanError::BadProbability(what, p));
            }
        }
        for d in &spec.degrades {
            if d.until <= d.from {
                return Err(PlanError::EmptyWindow("degrade"));
            }
            if !(d.bandwidth_factor > 0.0 && d.bandwidth_factor <= 1.0) {
                return Err(PlanError::BadFactor(
                    "degrade bandwidth",
                    d.bandwidth_factor,
                ));
            }
        }
        for p in &spec.partitions {
            if p.until <= p.from {
                return Err(PlanError::EmptyWindow("partition"));
            }
        }
        for s in &spec.stragglers {
            if s.slowdown < 1.0 {
                return Err(PlanError::BadFactor("straggler slowdown", s.slowdown));
            }
        }
        let mut schedule = Vec::new();
        for c in &spec.card_failures {
            schedule.push(FaultEvent {
                at: c.at,
                kind: FaultKind::CardDown { card: c.card },
            });
        }
        for p in &spec.partitions {
            schedule.push(FaultEvent {
                at: p.from,
                kind: FaultKind::PartitionStart { link: p.link },
            });
            schedule.push(FaultEvent {
                at: p.until,
                kind: FaultKind::PartitionEnd { link: p.link },
            });
        }
        for d in &spec.degrades {
            schedule.push(FaultEvent {
                at: d.from,
                kind: FaultKind::DegradeStart {
                    link: d.link,
                    factor: d.bandwidth_factor,
                },
            });
            schedule.push(FaultEvent {
                at: d.until,
                kind: FaultKind::DegradeEnd { link: d.link },
            });
        }
        for s in &spec.mem_stalls {
            schedule.push(FaultEvent {
                at: s.at,
                kind: FaultKind::MemStall {
                    channel: s.channel,
                    duration: s.duration,
                },
            });
        }
        // Canonical order: time, then an arbitrary-but-fixed kind rank so
        // ties resolve identically on every build.
        schedule.sort_by_key(|e| (e.at, kind_rank(&e.kind)));
        Ok(FaultPlan {
            seed,
            rng: ChaosRng::new(seed),
            spec,
            schedule,
        })
    }

    /// The all-healthy plan (every query answers "no fault").
    pub fn zero(seed: u64) -> FaultPlan {
        FaultPlan::build(seed, ScenarioSpec::none()).expect("empty spec is valid")
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The validated scenario spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The sorted deterministic timeline.
    pub fn schedule(&self) -> &[FaultEvent] {
        &self.schedule
    }

    /// Whether the plan injects nothing at all — the pay-for-what-you-use
    /// fast path callers may branch on.
    pub fn is_zero_fault(&self) -> bool {
        self.spec == ScenarioSpec::none()
    }

    // ---- Layer 1: MoF / memfabric ------------------------------------

    /// Does transmission `attempt` on `link` at tick `now` get dropped?
    pub fn drop_frame(&self, link: u32, attempt: u64, now: u64) -> bool {
        self.link_partitioned(link, now)
            || (self.spec.frame_loss > 0.0
                && self.rng.uniform(stream::FRAME_LOSS, link as u64, attempt)
                    < self.spec.frame_loss)
    }

    /// Does transmission `attempt` on `link` arrive corrupted?
    pub fn corrupt_frame(&self, link: u32, attempt: u64) -> bool {
        self.spec.frame_corruption > 0.0
            && self
                .rng
                .uniform(stream::FRAME_CORRUPT, link as u64, attempt)
                < self.spec.frame_corruption
    }

    /// Is `link` inside a partition window at tick `now`?
    pub fn link_partitioned(&self, link: u32, now: u64) -> bool {
        self.spec
            .partitions
            .iter()
            .any(|p| p.link == link && (p.from..p.until).contains(&now))
    }

    /// Effective-bandwidth multiplier on `link` at tick `now` (1.0 when
    /// healthy; the minimum of overlapping windows otherwise).
    pub fn bandwidth_factor(&self, link: u32, now: u64) -> f64 {
        self.spec
            .degrades
            .iter()
            .filter(|d| d.link == link && (d.from..d.until).contains(&now))
            .map(|d| d.bandwidth_factor)
            .fold(1.0, f64::min)
    }

    // ---- Layer 2: AxE / cluster --------------------------------------

    /// Is `card` down at tick `now`?
    pub fn card_down(&self, card: u32, now: u64) -> bool {
        self.spec
            .card_failures
            .iter()
            .any(|c| c.card == card && now >= c.at)
    }

    /// The earliest crash tick of `card`, if any.
    pub fn card_failure_at(&self, card: u32) -> Option<u64> {
        self.spec
            .card_failures
            .iter()
            .filter(|c| c.card == card)
            .map(|c| c.at)
            .min()
    }

    /// The persistent slowdown of `card` (1.0 when healthy).
    pub fn card_slowdown(&self, card: u32) -> f64 {
        self.spec
            .stragglers
            .iter()
            .filter(|s| s.card == card)
            .map(|s| s.slowdown)
            .fold(1.0, f64::max)
    }

    /// Injected straggler delay for `card` serving work item `key`, in
    /// microseconds (0 when the card is healthy). Deterministic jitter:
    /// `base * slowdown * [0.5, 1.5)`.
    pub fn straggler_delay_us(&self, card: u32, key: u64) -> u64 {
        let slow = self.card_slowdown(card);
        if slow <= 1.0 || self.spec.straggler_delay_us == 0 {
            return 0;
        }
        let jitter = 0.5 + self.rng.uniform(stream::STRAGGLER, card as u64, key);
        (self.spec.straggler_delay_us as f64 * slow * jitter) as u64
    }

    // ---- Layer 3: SamplingService ------------------------------------

    /// Does dispatch attempt `attempt` of the request keyed `key` fail
    /// outright (MoF recovery budget exhausted)?
    pub fn drop_request(&self, key: u64, attempt: u32) -> bool {
        self.spec.request_loss > 0.0
            && self
                .rng
                .uniform(stream::REQUEST_LOSS, key, mix(attempt as u64))
                < self.spec.request_loss
    }

    /// Deterministic backoff jitter in `[0, 1)` for `(request, attempt)`.
    pub fn backoff_jitter(&self, key: u64, attempt: u32) -> f64 {
        self.rng
            .uniform(stream::BACKOFF_JITTER, key, mix(attempt as u64))
    }

    /// The dispatch index at which `worker` panics, if scheduled.
    pub fn worker_panic_after(&self, worker: u32) -> Option<u64> {
        self.spec
            .worker_panics
            .iter()
            .filter(|w| w.worker == worker)
            .map(|w| w.after_dispatches)
            .min()
    }

    /// The stall (microseconds) injected before `worker`'s dispatch
    /// number `dispatch`, if scheduled.
    pub fn queue_stall_us(&self, worker: u32, dispatch: u64) -> Option<u64> {
        self.spec
            .queue_stalls
            .iter()
            .find(|q| q.worker == worker && q.after_dispatches == dispatch)
            .map(|q| q.stall_us)
    }

    // ---- Replayability ------------------------------------------------

    /// Canonical byte encoding of the whole plan (seed, spec, timeline).
    /// Equal plans encode identically; this is the artifact the
    /// determinism tests compare byte-for-byte.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(b"LSDCHAOS1");
        push_u64(&mut out, self.seed);
        push_f64(&mut out, self.spec.frame_loss);
        push_f64(&mut out, self.spec.frame_corruption);
        push_f64(&mut out, self.spec.request_loss);
        push_u64(&mut out, self.spec.straggler_delay_us);
        push_u64(&mut out, self.spec.degrades.len() as u64);
        for d in &self.spec.degrades {
            push_u64(&mut out, d.link as u64);
            push_u64(&mut out, d.from);
            push_u64(&mut out, d.until);
            push_f64(&mut out, d.bandwidth_factor);
        }
        push_u64(&mut out, self.spec.partitions.len() as u64);
        for p in &self.spec.partitions {
            push_u64(&mut out, p.link as u64);
            push_u64(&mut out, p.from);
            push_u64(&mut out, p.until);
        }
        push_u64(&mut out, self.spec.card_failures.len() as u64);
        for c in &self.spec.card_failures {
            push_u64(&mut out, c.card as u64);
            push_u64(&mut out, c.at);
        }
        push_u64(&mut out, self.spec.stragglers.len() as u64);
        for s in &self.spec.stragglers {
            push_u64(&mut out, s.card as u64);
            push_f64(&mut out, s.slowdown);
        }
        push_u64(&mut out, self.spec.mem_stalls.len() as u64);
        for s in &self.spec.mem_stalls {
            push_u64(&mut out, s.channel as u64);
            push_u64(&mut out, s.at);
            push_u64(&mut out, s.duration);
        }
        push_u64(&mut out, self.spec.worker_panics.len() as u64);
        for w in &self.spec.worker_panics {
            push_u64(&mut out, w.worker as u64);
            push_u64(&mut out, w.after_dispatches);
        }
        push_u64(&mut out, self.spec.queue_stalls.len() as u64);
        for q in &self.spec.queue_stalls {
            push_u64(&mut out, q.worker as u64);
            push_u64(&mut out, q.after_dispatches);
            push_u64(&mut out, q.stall_us);
        }
        push_u64(&mut out, self.schedule.len() as u64);
        for e in &self.schedule {
            push_u64(&mut out, e.at);
            push_u64(&mut out, kind_rank(&e.kind) as u64);
            match e.kind {
                FaultKind::CardDown { card } => push_u64(&mut out, card as u64),
                FaultKind::PartitionStart { link } | FaultKind::PartitionEnd { link } => {
                    push_u64(&mut out, link as u64)
                }
                FaultKind::DegradeStart { link, factor } => {
                    push_u64(&mut out, link as u64);
                    push_f64(&mut out, factor);
                }
                FaultKind::DegradeEnd { link } => push_u64(&mut out, link as u64),
                FaultKind::MemStall { channel, duration } => {
                    push_u64(&mut out, channel as u64);
                    push_u64(&mut out, duration);
                }
            }
        }
        out
    }

    /// FNV-1a digest of [`FaultPlan::encode`] — a compact replayability
    /// fingerprint for bench artifacts.
    pub fn digest(&self) -> u64 {
        fnv1a(&self.encode())
    }
}

/// FNV-1a over arbitrary bytes (the workspace convention for stable
/// digests without a hashing dependency).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn kind_rank(k: &FaultKind) -> u8 {
    match k {
        FaultKind::CardDown { .. } => 0,
        FaultKind::PartitionStart { .. } => 1,
        FaultKind::PartitionEnd { .. } => 2,
        FaultKind::DegradeStart { .. } => 3,
        FaultKind::DegradeEnd { .. } => 4,
        FaultKind::MemStall { .. } => 5,
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ScenarioSpec {
        ScenarioSpec::none()
            .with_frame_loss(0.05)
            .with_request_loss(0.1)
            .with_card_failure(1, 500)
            .with_straggler(2, 3.0, 40)
            .with_partition(LinkPartition {
                link: 0,
                from: 100,
                until: 200,
            })
            .with_degrade(LinkDegrade {
                link: 1,
                from: 50,
                until: 300,
                bandwidth_factor: 0.25,
            })
            .with_mem_stall(MemStall {
                channel: 0,
                at: 400,
                duration: 50,
            })
    }

    #[test]
    fn same_seed_and_spec_encode_byte_identically() {
        let a = FaultPlan::build(7, scenario()).unwrap();
        let b = FaultPlan::build(7, scenario()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_differ_in_stochastic_decisions_only() {
        let a = FaultPlan::build(1, scenario()).unwrap();
        let b = FaultPlan::build(2, scenario()).unwrap();
        assert_eq!(a.schedule(), b.schedule(), "timeline is seed-free");
        assert_ne!(a.encode(), b.encode(), "seed is part of the identity");
        let disagree = (0..1000).any(|i| a.drop_frame(0, i, 0) != b.drop_frame(0, i, 0));
        assert!(disagree, "stochastic draws must depend on the seed");
    }

    #[test]
    fn timeline_is_sorted_and_complete() {
        let plan = FaultPlan::build(3, scenario()).unwrap();
        let times: Vec<u64> = plan.schedule().iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        // card down + partition start/end + degrade start/end + stall.
        assert_eq!(plan.schedule().len(), 6);
    }

    #[test]
    fn partition_windows_force_drops() {
        let plan = FaultPlan::build(4, scenario()).unwrap();
        assert!(plan.drop_frame(0, 0, 150), "inside the window");
        assert!(plan.link_partitioned(0, 100));
        assert!(!plan.link_partitioned(0, 200), "until is exclusive");
        assert!(!plan.link_partitioned(1, 150), "other links unaffected");
    }

    #[test]
    fn degrade_windows_scale_bandwidth() {
        let plan = FaultPlan::build(5, scenario()).unwrap();
        assert_eq!(plan.bandwidth_factor(1, 60), 0.25);
        assert_eq!(plan.bandwidth_factor(1, 300), 1.0);
        assert_eq!(plan.bandwidth_factor(0, 60), 1.0);
    }

    #[test]
    fn card_state_and_straggler_delays() {
        let plan = FaultPlan::build(6, scenario()).unwrap();
        assert!(!plan.card_down(1, 499));
        assert!(plan.card_down(1, 500));
        assert_eq!(plan.card_failure_at(1), Some(500));
        assert_eq!(plan.card_failure_at(0), None);
        assert_eq!(plan.straggler_delay_us(0, 9), 0, "healthy card");
        let d = plan.straggler_delay_us(2, 9);
        assert!(
            (60..180).contains(&d),
            "3x of 40us with [0.5,1.5) jitter, got {d}"
        );
        assert_eq!(d, plan.straggler_delay_us(2, 9), "deterministic per key");
    }

    #[test]
    fn zero_fault_plan_answers_no_everywhere() {
        let plan = FaultPlan::zero(9);
        assert!(plan.is_zero_fault());
        assert!(plan.schedule().is_empty());
        for i in 0..100 {
            assert!(!plan.drop_frame(0, i, i));
            assert!(!plan.corrupt_frame(0, i));
            assert!(!plan.drop_request(i, 0));
            assert!(!plan.card_down(0, i));
        }
        assert!(!FaultPlan::build(9, scenario()).unwrap().is_zero_fault());
    }

    #[test]
    fn frame_loss_rate_is_respected() {
        let plan = FaultPlan::build(11, ScenarioSpec::none().with_frame_loss(0.2)).unwrap();
        let drops = (0..10_000).filter(|&i| plan.drop_frame(3, i, 0)).count();
        assert!(
            (1_700..=2_300).contains(&drops),
            "drops {drops} far from 2000"
        );
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(matches!(
            FaultPlan::build(0, ScenarioSpec::none().with_frame_loss(1.5)),
            Err(PlanError::BadProbability("frame_loss", _))
        ));
        assert!(matches!(
            FaultPlan::build(
                0,
                ScenarioSpec::none().with_partition(LinkPartition {
                    link: 0,
                    from: 10,
                    until: 10
                })
            ),
            Err(PlanError::EmptyWindow("partition"))
        ));
        assert!(matches!(
            FaultPlan::build(0, ScenarioSpec::none().with_straggler(0, 0.5, 10)),
            Err(PlanError::BadFactor("straggler slowdown", _))
        ));
    }
}
