//! The [`FaultInjector`]: a shared, counting front-end over a
//! [`FaultPlan`].
//!
//! The plan itself is pure; the injector is what live components hold. It
//! answers the same queries but *counts every injected fault* into a
//! lock-free [`FaultStats`] snapshot, so the chaos layer is observable
//! through the telemetry registry like every other subsystem: fault
//! counters, plus the degraded-path counters the serving layer feeds
//! back in ([`FaultInjector::note_degraded_reply`] and friends).

use crate::plan::FaultPlan;
use lsdgnn_telemetry::{MetricSource, Scope};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Counters {
    /// Distinct cards already counted into `cards_downed` (a card dies
    /// once; every request observing it down must not re-count it).
    noted_cards: Mutex<Vec<u32>>,
    frames_dropped: AtomicU64,
    frames_corrupted: AtomicU64,
    requests_dropped: AtomicU64,
    straggler_delays: AtomicU64,
    straggler_delay_us: AtomicU64,
    cards_downed: AtomicU64,
    worker_panics: AtomicU64,
    queue_stalls: AtomicU64,
    degraded_replies: AtomicU64,
    exact_replies: AtomicU64,
}

/// A point-in-time copy of the injector's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// MoF frames dropped by injection.
    pub frames_dropped: u64,
    /// MoF frames corrupted by injection.
    pub frames_corrupted: u64,
    /// Service dispatch attempts failed by injection.
    pub requests_dropped: u64,
    /// Straggler delays injected.
    pub straggler_delays: u64,
    /// Total injected straggler delay, microseconds.
    pub straggler_delay_us: u64,
    /// Cards taken down.
    pub cards_downed: u64,
    /// Worker-shard panics injected.
    pub worker_panics: u64,
    /// Queue stalls injected.
    pub queue_stalls: u64,
    /// Replies the service flagged `degraded`.
    pub degraded_replies: u64,
    /// Replies served exactly despite the plan.
    pub exact_replies: u64,
}

impl FaultStats {
    /// Fraction of replies that were degraded (0 when none recorded).
    pub fn degraded_ratio(&self) -> f64 {
        let total = self.degraded_replies + self.exact_replies;
        if total == 0 {
            0.0
        } else {
            self.degraded_replies as f64 / total as f64
        }
    }
}

impl MetricSource for FaultStats {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("frames_dropped", self.frames_dropped);
        out.counter("frames_corrupted", self.frames_corrupted);
        out.counter("requests_dropped", self.requests_dropped);
        out.counter("straggler_delays", self.straggler_delays);
        out.counter("straggler_delay_us", self.straggler_delay_us);
        out.counter("cards_downed", self.cards_downed);
        out.counter("worker_panics", self.worker_panics);
        out.counter("queue_stalls", self.queue_stalls);
        out.counter("degraded_replies", self.degraded_replies);
        out.counter("exact_replies", self.exact_replies);
        out.gauge("degraded_ratio", self.degraded_ratio());
    }
}

/// A cloneable handle injecting faults from a shared [`FaultPlan`] and
/// counting everything it injects.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: Arc<FaultPlan>,
    counters: Arc<Counters>,
}

impl FaultInjector {
    /// Wraps `plan` with fresh counters.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan: Arc::new(plan),
            counters: Arc::new(Counters::default()),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counting wrapper over [`FaultPlan::drop_frame`].
    pub fn drop_frame(&self, link: u32, attempt: u64, now: u64) -> bool {
        let hit = self.plan.drop_frame(link, attempt, now);
        if hit {
            self.counters.frames_dropped.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Counting wrapper over [`FaultPlan::corrupt_frame`].
    pub fn corrupt_frame(&self, link: u32, attempt: u64) -> bool {
        let hit = self.plan.corrupt_frame(link, attempt);
        if hit {
            self.counters
                .frames_corrupted
                .fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Counting wrapper over [`FaultPlan::drop_request`].
    pub fn drop_request(&self, key: u64, attempt: u32) -> bool {
        let hit = self.plan.drop_request(key, attempt);
        if hit {
            self.counters
                .requests_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Counting wrapper over [`FaultPlan::straggler_delay_us`].
    pub fn straggler_delay_us(&self, card: u32, key: u64) -> u64 {
        let us = self.plan.straggler_delay_us(card, key);
        if us > 0 {
            self.counters
                .straggler_delays
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .straggler_delay_us
                .fetch_add(us, Ordering::Relaxed);
        }
        us
    }

    /// Records that a card was actually taken down by the harness.
    pub fn note_card_downed(&self) {
        self.counters.cards_downed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records cards observed down, counting each distinct card once no
    /// matter how many requests witness the outage.
    pub fn note_cards_down(&self, cards: &[u32]) {
        let mut noted = self.counters.noted_cards.lock().expect("noted lock");
        for &c in cards {
            if !noted.contains(&c) {
                noted.push(c);
                self.counters.cards_downed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records an injected worker panic.
    pub fn note_worker_panic(&self) {
        self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an injected queue stall.
    pub fn note_queue_stall(&self) {
        self.counters.queue_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a degraded reply leaving the service.
    pub fn note_degraded_reply(&self) {
        self.counters
            .degraded_replies
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records an exact (non-degraded) reply leaving the service.
    pub fn note_exact_reply(&self) {
        self.counters.exact_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of everything injected so far.
    pub fn stats(&self) -> FaultStats {
        let c = &self.counters;
        FaultStats {
            frames_dropped: c.frames_dropped.load(Ordering::Relaxed),
            frames_corrupted: c.frames_corrupted.load(Ordering::Relaxed),
            requests_dropped: c.requests_dropped.load(Ordering::Relaxed),
            straggler_delays: c.straggler_delays.load(Ordering::Relaxed),
            straggler_delay_us: c.straggler_delay_us.load(Ordering::Relaxed),
            cards_downed: c.cards_downed.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            queue_stalls: c.queue_stalls.load(Ordering::Relaxed),
            degraded_replies: c.degraded_replies.load(Ordering::Relaxed),
            exact_replies: c.exact_replies.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ScenarioSpec;

    #[test]
    fn injector_counts_what_it_injects() {
        let plan = FaultPlan::build(1, ScenarioSpec::none().with_frame_loss(0.5)).unwrap();
        let inj = FaultInjector::new(plan);
        let dropped = (0..1000).filter(|&i| inj.drop_frame(0, i, 0)).count() as u64;
        assert!(dropped > 0);
        assert_eq!(inj.stats().frames_dropped, dropped);
        assert_eq!(inj.stats().frames_corrupted, 0);
    }

    #[test]
    fn distinct_cards_count_once() {
        let inj = FaultInjector::new(FaultPlan::zero(0));
        inj.note_cards_down(&[1, 2]);
        inj.note_cards_down(&[2, 3]);
        inj.note_cards_down(&[1]);
        assert_eq!(inj.stats().cards_downed, 3);
    }

    #[test]
    fn clones_share_counters() {
        let inj = FaultInjector::new(FaultPlan::zero(0));
        let other = inj.clone();
        other.note_degraded_reply();
        other.note_exact_reply();
        other.note_exact_reply();
        assert_eq!(inj.stats().degraded_replies, 1);
        assert_eq!(inj.stats().exact_replies, 2);
        let r = inj.stats().degraded_ratio();
        assert!((r - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_register_as_metric_source() {
        let inj = FaultInjector::new(FaultPlan::zero(0));
        inj.note_degraded_reply();
        let mut reg = lsdgnn_telemetry::Registry::new();
        reg.register("chaos", &[("scenario", "test")], Box::new(inj.stats()));
        let snap = reg.snapshot();
        assert_eq!(snap.get("chaos/degraded_replies").unwrap().as_f64(), 1.0);
        assert_eq!(snap.get("chaos/degraded_ratio").unwrap().as_f64(), 1.0);
    }
}
