//! Deterministic, seedable fault injection for the LSD-GNN serving
//! stack.
//!
//! The paper sells LSD-GNN sampling as a *service* (§2.4 heavy traffic,
//! §4.3 MoF reliability, §6 FaaS deployment); a serving stack has to
//! answer "what happens when a card dies, a link degrades, or a shard
//! straggles". This crate supplies the question in reproducible form:
//!
//! * [`ScenarioSpec`] describes faults across three layers —
//!   MoF/memfabric (frame loss, corruption, bandwidth degradation, link
//!   partition), AxE/cluster (card crash at time T, stragglers,
//!   memory-channel stalls) and the `SamplingService` (worker panic,
//!   queue stall, whole-dispatch loss).
//! * [`FaultPlan::build`] fixes a seed and materializes a validated,
//!   byte-for-byte replayable plan: the deterministic timeline is an
//!   explicit sorted schedule, and every stochastic decision is a pure
//!   function of `(seed, stream, entity, index)` ([`ChaosRng`]) — no
//!   hidden RNG state, so decisions are identical in any thread
//!   interleaving and at any `--jobs` count.
//! * [`FaultInjector`] is the handle components hold: same queries,
//!   plus lock-free [`FaultStats`] counters that register into the
//!   telemetry [`Registry`](lsdgnn_telemetry::Registry).
//! * [`desim_glue::install`] replays the timeline inside a desim
//!   [`Simulation`](lsdgnn_desim::Simulation) so hardware models see
//!   faults at exact simulated instants.
//!
//! Pay-for-what-you-use: a zero-fault plan ([`FaultPlan::zero`], or any
//! spec equal to [`ScenarioSpec::none`]) answers "no fault" everywhere,
//! and consumers are expected to keep their fault-free fast paths
//! bit-identical to running with no plan at all — the property the
//! serving-layer chaos tests assert.
//!
//! # Example
//!
//! ```
//! use lsdgnn_chaos::{FaultPlan, ScenarioSpec};
//!
//! let spec = ScenarioSpec::none()
//!     .with_frame_loss(0.05)
//!     .with_card_failure(1, 500);
//! let plan = FaultPlan::build(42, spec.clone()).unwrap();
//! // Byte-for-byte replayable:
//! assert_eq!(plan.encode(), FaultPlan::build(42, spec).unwrap().encode());
//! // Card 1 dies at tick 500 and stays dead:
//! assert!(!plan.card_down(1, 499));
//! assert!(plan.card_down(1, 777));
//! ```

pub mod desim_glue;
pub mod plan;
pub mod rng;
pub mod stats;

pub use plan::{
    CardFailure, FaultEvent, FaultKind, FaultPlan, LinkDegrade, LinkPartition, MemStall, PlanError,
    QueueStall, ScenarioSpec, Straggler, WorkerPanic,
};
pub use rng::ChaosRng;
pub use stats::{FaultInjector, FaultStats};
