//! The outstanding-request model of Equation 3 / Figure 2(e).
//!
//! To keep a link of effective bandwidth `B` busy despite round-trip
//! latency `L`, a requester must keep `O = B / (Σ_k C_k · P_k) · L`
//! requests in flight, where `C_k`/`P_k` are the byte size and probability
//! of each access pattern in the workload mix. The paper uses this to size
//! the number of AxE cores per FaaS architecture (§6.2–6.5).

use crate::link::LinkModel;
use serde::{Deserialize, Serialize};

/// One component of a memory access mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessPattern {
    /// Request payload size in bytes (`C_k`).
    pub bytes: u64,
    /// Fraction of requests with this size (`P_k`).
    pub probability: f64,
}

impl AccessPattern {
    /// Creates a pattern component.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]` or `bytes` is zero.
    pub fn new(bytes: u64, probability: f64) -> Self {
        assert!(bytes > 0, "pattern bytes must be non-zero");
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        AccessPattern { bytes, probability }
    }
}

/// Mean request size of a mix: `Σ_k C_k · P_k`.
///
/// # Panics
///
/// Panics if the probabilities do not sum to ~1 or the mix is empty.
pub fn mean_request_bytes(mix: &[AccessPattern]) -> f64 {
    assert!(!mix.is_empty(), "access mix must be non-empty");
    let psum: f64 = mix.iter().map(|p| p.probability).sum();
    assert!(
        (psum - 1.0).abs() < 1e-6,
        "mix probabilities sum to {psum}, expected 1"
    );
    mix.iter().map(|p| p.bytes as f64 * p.probability).sum()
}

/// Equation 3 for a single uniform request size: outstanding requests
/// needed to sustain `bandwidth_gbps` at `latency_ns` round trip.
pub fn outstanding_demand(bandwidth_gbps: f64, latency_ns: f64, request_bytes: f64) -> f64 {
    bandwidth_gbps / request_bytes * latency_ns
}

/// Equation 3 for a workload mix against a concrete link model: uses the
/// link's round trip at the mean request size.
pub fn outstanding_for_mix(link: &LinkModel, mix: &[AccessPattern]) -> f64 {
    let mean = mean_request_bytes(mix);
    let latency_ns = link.round_trip(mean.round() as u64).as_nanos_f64();
    outstanding_demand(link.peak_gbps, latency_ns, mean)
}

/// The Figure 2(e) sweep: required outstanding requests for each target
/// bandwidth across a latency range, at a fixed (fine-grained) request
/// size. Returns `(latency_ns, demand)` pairs.
pub fn figure_2e_series(
    bandwidth_gbps: f64,
    request_bytes: u64,
    latencies_ns: &[u64],
) -> Vec<(u64, f64)> {
    latencies_ns
        .iter()
        .map(|&l| {
            (
                l,
                outstanding_demand(bandwidth_gbps, l as f64, request_bytes as f64),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_basic_arithmetic() {
        // 16 GB/s at 1000 ns with 64 B requests: 16/64*1000 = 250 in flight.
        let o = outstanding_demand(16.0, 1_000.0, 64.0);
        assert!((o - 250.0).abs() < 1e-9);
    }

    #[test]
    fn longer_latency_needs_more_outstanding() {
        // The core Figure 2(e) relationship.
        let fast = outstanding_demand(16.0, 100.0, 64.0);
        let slow = outstanding_demand(16.0, 5_000.0, 64.0);
        assert!(slow / fast > 40.0);
    }

    #[test]
    fn higher_bandwidth_needs_more_outstanding() {
        let narrow = outstanding_demand(16.0, 1_000.0, 64.0);
        let wide = outstanding_demand(200.0, 1_000.0, 64.0);
        assert!((wide / narrow - 12.5).abs() < 1e-9);
    }

    #[test]
    fn mix_mean_is_probability_weighted() {
        let mix = [AccessPattern::new(8, 0.5), AccessPattern::new(512, 0.5)];
        assert_eq!(mean_request_bytes(&mix), 260.0);
    }

    #[test]
    fn local_dram_needs_few_remote_needs_many() {
        // Paper: direct DRAM needs few concurrent requests; remote DRAM
        // needs many (right side of Figure 2(e)).
        let mix = [
            AccessPattern::new(8, 0.48),   // structure accesses
            AccessPattern::new(512, 0.52), // attribute fetches
        ];
        let local = outstanding_for_mix(&LinkModel::local_dram(4), &mix);
        let remote = outstanding_for_mix(&LinkModel::rdma_remote(), &mix);
        assert!(local < 40.0, "local demand {local}");
        assert!(remote > 100.0, "remote demand {remote}");
        assert!(remote > local * 5.0);
    }

    #[test]
    fn figure_2e_series_is_monotone() {
        let s = figure_2e_series(100.0, 64.0 as u64, &[100, 500, 1_000, 5_000]);
        assert_eq!(s.len(), 4);
        assert!(s.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn bad_mix_probabilities_panic() {
        mean_request_bytes(&[AccessPattern::new(8, 0.3)]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_byte_pattern_panics() {
        let _ = AccessPattern::new(0, 1.0);
    }
}
