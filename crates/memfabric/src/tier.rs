//! Named memory tiers and how an accelerator's IOs map onto them.
//!
//! Table 8 / Table 9 of the paper describe each architecture as a choice of
//! *Local Mem Access*, *Remote Mem Access* and FPGA↔GPU connection; this
//! module gives those choices a type.

use crate::link::LinkModel;
use serde::{Deserialize, Serialize};

/// A physical memory/interconnect tier an IO port can be wired to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryTier {
    /// CPU-attached DDR4 accessed directly (characterization baseline).
    LocalDram {
        /// Number of DDR4-1600 channels.
        channels: u32,
    },
    /// Host DRAM reached over PCIe (base/cost-opt/comm-opt local access).
    PcieHostDram,
    /// Remote node DRAM via PCIe→NIC→PCIe (base architecture).
    CloudNicRemote,
    /// Remote node DRAM via an on-FPGA NIC (cost-opt): skips one PCIe hop.
    OnFpgaNicRemote,
    /// Remote FPGA memory over the customized MoF fabric (comm/mem-opt).
    Mof {
        /// Number of aggregated 100 Gb/s lanes.
        links: u32,
    },
    /// FPGA-board DDR4 (mem-opt local access).
    FpgaLocalDram {
        /// Number of DDR4-1600 channels.
        channels: u32,
    },
    /// NVLink-class FPGA↔GPU connection (mem-opt.tc data output).
    GpuFastLink,
    /// PCIe peer-to-peer (in-server FPGA↔GPU connection, 16 GB/s).
    PciePeerToPeer,
}

impl MemoryTier {
    /// The timing model of this tier.
    pub fn link_model(&self) -> LinkModel {
        match *self {
            MemoryTier::LocalDram { channels } => LinkModel::local_dram(channels),
            MemoryTier::PcieHostDram => LinkModel::pcie_host_dram(),
            MemoryTier::CloudNicRemote => LinkModel::cloud_nic_remote(),
            MemoryTier::OnFpgaNicRemote => {
                // RDMA path minus the local PCIe traversal: lower latency,
                // same wire rate (§6.3: latency helps, bandwidth doesn't).
                LinkModel::new("on-fpga-nic-remote", 3_000, 800, 12.5)
            }
            MemoryTier::Mof { links } => LinkModel::mof(links),
            MemoryTier::FpgaLocalDram { channels } => LinkModel::fpga_local_dram(channels),
            MemoryTier::GpuFastLink => LinkModel::gpu_fast_link(),
            MemoryTier::PciePeerToPeer => LinkModel::new("pcie-p2p", 700, 150, 16.0),
        }
    }
}

/// The memory wiring of one accelerator instance: where local graph data
/// lives, where remote partitions are reached, and where results leave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierConfig {
    /// Local graph/attribute storage.
    pub local: MemoryTier,
    /// Remote partition access.
    pub remote: MemoryTier,
    /// Result output path toward the GPU/NN consumer.
    pub output: MemoryTier,
}

impl TierConfig {
    /// The PoC configuration of Table 9/10: MoF remote, choice of PCIe host
    /// memory or FPGA-local DRAM, PCIe P2P output.
    pub fn poc(fpga_local: bool) -> Self {
        TierConfig {
            local: if fpga_local {
                MemoryTier::FpgaLocalDram { channels: 4 }
            } else {
                MemoryTier::PcieHostDram
            },
            remote: MemoryTier::Mof { links: 3 },
            output: MemoryTier::PciePeerToPeer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_produce_expected_models() {
        assert_eq!(
            MemoryTier::LocalDram { channels: 2 }.link_model().peak_gbps,
            25.6
        );
        assert_eq!(MemoryTier::PcieHostDram.link_model().name, "pcie-host-dram");
        assert_eq!(MemoryTier::Mof { links: 3 }.link_model().name, "mof");
    }

    #[test]
    fn on_fpga_nic_cuts_latency_not_bandwidth() {
        // §6.3: the on-FPGA NIC reduces latency but provides no extra
        // bandwidth — the reason cost-opt shows no user-visible speedup.
        let base = MemoryTier::CloudNicRemote.link_model();
        let fpga_nic = MemoryTier::OnFpgaNicRemote.link_model();
        assert!(fpga_nic.round_trip(64) < base.round_trip(64));
        assert_eq!(fpga_nic.peak_gbps, base.peak_gbps);
    }

    #[test]
    fn poc_configs_differ_in_local_tier_only() {
        let host = TierConfig::poc(false);
        let fpga = TierConfig::poc(true);
        assert_ne!(host.local, fpga.local);
        assert_eq!(host.remote, fpga.remote);
        assert_eq!(host.output, fpga.output);
    }

    #[test]
    fn gpu_fast_link_is_the_fat_pipe() {
        let fast = MemoryTier::GpuFastLink.link_model();
        let p2p = MemoryTier::PciePeerToPeer.link_model();
        assert!(fast.peak_gbps > 10.0 * p2p.peak_gbps);
    }
}
