//! Queueing-delay corrections for loaded links.
//!
//! The base [`crate::LinkModel`] gives unloaded round trips; at high
//! utilization a link's effective latency grows with queueing. For
//! deterministic service (fixed-size packages on a wire) the M/D/1 model
//! applies: mean wait `W = ρ/(2(1-ρ)) · S` for utilization `ρ` and
//! service time `S`. The paper's Equation 3 uses *effective* (not peak)
//! bandwidth "taking considerations of overall system bottlenecks" —
//! this module is that correction.

use crate::link::LinkModel;
use lsdgnn_desim::Time;

/// Mean queueing wait of an M/D/1 server, in the same unit as
/// `service_time`.
///
/// # Panics
///
/// Panics unless `0 <= utilization < 1`.
pub fn md1_wait(service_time: f64, utilization: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&utilization),
        "utilization must be in [0, 1)"
    );
    service_time * utilization / (2.0 * (1.0 - utilization))
}

/// Round-trip latency of `link` for `bytes`-sized requests when the link
/// runs at `utilization` of its peak rate.
///
/// # Panics
///
/// Panics unless `0 <= utilization < 1`.
pub fn loaded_round_trip(link: &LinkModel, bytes: u64, utilization: f64) -> Time {
    let base = link.round_trip(bytes);
    let service_ns = link.transfer_time(bytes).as_nanos_f64();
    let wait_ns = md1_wait(service_ns, utilization);
    base + Time::from_ticks((wait_ns * 1e3) as u64)
}

/// The effective sustainable utilization given a latency budget: the
/// highest ρ at which the loaded round trip stays within
/// `latency_budget` — how much of a link's bandwidth a latency-bound
/// sampler can actually use (the Equation 3 "effective bandwidth").
pub fn sustainable_utilization(link: &LinkModel, bytes: u64, latency_budget: Time) -> f64 {
    let base = link.round_trip(bytes);
    if base >= latency_budget {
        return 0.0;
    }
    // Binary search ρ in [0, 1).
    let (mut lo, mut hi) = (0.0f64, 0.999f64);
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        if loaded_round_trip(link, bytes, mid) <= latency_budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_grows_superlinearly_with_load() {
        let s = 100.0;
        let w25 = md1_wait(s, 0.25);
        let w50 = md1_wait(s, 0.50);
        let w90 = md1_wait(s, 0.90);
        assert!(w25 < w50 && w50 < w90);
        // Knee behaviour: 90% load waits much more than 2x the 50% wait.
        assert!(w90 > 4.0 * w50);
        assert_eq!(md1_wait(s, 0.0), 0.0);
    }

    #[test]
    fn loaded_round_trip_reduces_to_base_when_idle() {
        let link = LinkModel::pcie_host_dram();
        assert_eq!(loaded_round_trip(&link, 64, 0.0), link.round_trip(64));
        assert!(loaded_round_trip(&link, 64, 0.9) > link.round_trip(64));
    }

    #[test]
    fn queueing_matters_more_for_big_transfers() {
        // Service time scales with bytes, so so does the wait.
        let link = LinkModel::mof(3);
        let small = loaded_round_trip(&link, 64, 0.8) - link.round_trip(64);
        let large = loaded_round_trip(&link, 64 * 1024, 0.8) - link.round_trip(64 * 1024);
        assert!(large > small * 100);
    }

    #[test]
    fn sustainable_utilization_tracks_the_budget() {
        let link = LinkModel::rdma_remote();
        // Generous budget: nearly full utilization is sustainable.
        let generous = sustainable_utilization(&link, 512, Time::from_micros(50));
        assert!(generous > 0.95, "generous {generous}");
        // A budget below the unloaded round trip sustains nothing.
        let impossible = sustainable_utilization(&link, 512, Time::from_nanos(100));
        assert_eq!(impossible, 0.0);
        // A tight-but-feasible budget lands in between.
        let tight = sustainable_utilization(&link, 64 * 1024, Time::from_micros(12));
        assert!((0.05..0.95).contains(&tight), "tight {tight}");
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn full_utilization_panics() {
        md1_wait(1.0, 1.0);
    }
}
