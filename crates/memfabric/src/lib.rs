//! Memory- and interconnect-timing models for the LSD-GNN reproduction.
//!
//! Encodes the latency/bandwidth structure the paper characterizes in
//! Figure 2(d) (round-trip latency and effective bandwidth versus request
//! size for direct DRAM, PCIe-attached host DRAM and RDMA-attached remote
//! DRAM) and the outstanding-request model of Figure 2(e) / Equation 3 used
//! to size AxE cores for each FaaS architecture.
//!
//! Constants are calibrated to the published numbers: 16 GB/s PCIe Gen3 x16,
//! 12.8 GB/s per DDR4-1600 channel, 100 GB/s MoF fabric, µs-scale RDMA
//! round trips (MVAPICH benchmarks, the paper's reference \[54\]).
//!
//! # Example
//!
//! ```
//! use lsdgnn_memfabric::LinkModel;
//!
//! let dram = LinkModel::local_dram(1);
//! let rdma = LinkModel::rdma_remote();
//! // Remote access is orders of magnitude slower for small requests:
//! assert!(rdma.round_trip(8) > dram.round_trip(8) * 10);
//! ```

pub mod link;
pub mod outstanding;
pub mod queueing;
pub mod tier;

pub use link::LinkModel;
pub use outstanding::{
    figure_2e_series, mean_request_bytes, outstanding_demand, outstanding_for_mix, AccessPattern,
};
pub use queueing::{loaded_round_trip, md1_wait, sustainable_utilization};
pub use tier::{MemoryTier, TierConfig};
