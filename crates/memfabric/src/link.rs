//! Parametric link/memory timing models (Figure 2(d)).

use lsdgnn_desim::Time;
use serde::{Deserialize, Serialize};

/// A request/response channel with fixed base latency, per-request
/// processing overhead, and a peak byte rate.
///
/// `round_trip(bytes)` is the single-request latency; `effective_bandwidth`
/// is the throughput one requester achieves issuing back-to-back
/// synchronous requests of a given size — the quantity whose collapse at
/// small sizes Figure 2(d) plots (8 B over RDMA is ~100× below peak).
///
/// # Example
///
/// ```
/// use lsdgnn_memfabric::LinkModel;
/// let rdma = LinkModel::rdma_remote();
/// let small = rdma.effective_bandwidth_gbps(8);
/// let large = rdma.effective_bandwidth_gbps(1024);
/// assert!(large / small > 50.0, "fine-grained access collapses bandwidth");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Human-readable name used in reports.
    pub name: String,
    /// Base one-way-ish round-trip latency component in nanoseconds.
    pub base_latency_ns: u64,
    /// Per-request protocol/software overhead in nanoseconds.
    pub per_request_ns: u64,
    /// Peak data rate in GB/s.
    pub peak_gbps: f64,
}

impl LinkModel {
    /// Builds a custom link model.
    ///
    /// # Panics
    ///
    /// Panics if `peak_gbps` is not positive and finite.
    pub fn new(name: &str, base_latency_ns: u64, per_request_ns: u64, peak_gbps: f64) -> Self {
        assert!(
            peak_gbps.is_finite() && peak_gbps > 0.0,
            "peak bandwidth must be positive"
        );
        LinkModel {
            name: name.to_string(),
            base_latency_ns,
            per_request_ns,
            peak_gbps,
        }
    }

    /// Directly-attached DDR4-1600 DRAM with `channels` channels
    /// (12.8 GB/s each). ~90 ns load-to-use latency.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn local_dram(channels: u32) -> Self {
        assert!(channels > 0, "need at least one DRAM channel");
        Self::new("local-dram", 90, 10, 12.8 * channels as f64)
    }

    /// Host DRAM reached over PCIe Gen3 x16: 16 GB/s, ~1 µs round trip
    /// (Figure 2(d)'s orange bars).
    pub fn pcie_host_dram() -> Self {
        Self::new("pcie-host-dram", 900, 200, 16.0)
    }

    /// Remote DRAM over a standard RDMA NIC (100 GbE-class): ~5 µs round
    /// trip including NIC processing (Figure 2(d)'s longest bars,
    /// MVAPICH-calibrated).
    pub fn rdma_remote() -> Self {
        Self::new("rdma-remote", 4_000, 1_000, 12.5)
    }

    /// Remote DRAM over a cloud NIC traversing the host PCIe + kernel
    /// bypass path (the `base` FaaS architecture's remote access:
    /// PCIe→NIC→PCIe→HostMem). Slightly worse than raw RDMA.
    pub fn cloud_nic_remote() -> Self {
        Self::new("cloud-nic-remote", 5_000, 1_500, 12.5)
    }

    /// The paper's customized Memory-over-Fabric link: QSFP-DD direct-attach
    /// fabric, hardware-terminated protocol — sub-µs latency and tiny
    /// per-request cost thanks to multi-request packing (§4.3).
    /// `links` 100 Gb/s lanes are aggregated (the PoC uses 3 per card,
    /// "MoF, 100GB/s" in Table 8 is the multi-lane aggregate).
    ///
    /// # Panics
    ///
    /// Panics if `links` is zero.
    pub fn mof(links: u32) -> Self {
        assert!(links > 0, "need at least one MoF lane");
        Self::new("mof", 700, 50, 12.5 * links as f64)
    }

    /// FPGA-local DDR4 (the `mem-opt` architectures): same channel rate as
    /// host DRAM but accessed from fabric logic without PCIe.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn fpga_local_dram(channels: u32) -> Self {
        assert!(channels > 0, "need at least one DRAM channel");
        Self::new("fpga-local-dram", 150, 10, 12.8 * channels as f64)
    }

    /// GPU high-speed link (NVLink-class, `mem-opt.tc`'s FPGA→GPU data
    /// path, "300GB/s" in Table 8).
    pub fn gpu_fast_link() -> Self {
        Self::new("gpu-fast-link", 500, 20, 300.0)
    }

    /// A bandwidth-degraded copy of this link: peak rate scaled by
    /// `factor`, latencies unchanged. This is the timing-model face of a
    /// chaos `LinkDegrade` fault — a flaky QSFP lane or congested fabric
    /// that still carries traffic, just slower.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn degraded(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0, 1]"
        );
        LinkModel {
            name: format!("{}-degraded", self.name),
            base_latency_ns: self.base_latency_ns,
            per_request_ns: self.per_request_ns,
            peak_gbps: self.peak_gbps * factor,
        }
    }

    /// Pure transfer time of `bytes` at peak rate.
    pub fn transfer_time(&self, bytes: u64) -> Time {
        let ns = bytes as f64 / self.peak_gbps; // GB/s == bytes/ns
        Time::from_ticks((ns * 1_000.0).ceil() as u64)
    }

    /// Round-trip latency of a single request carrying `bytes` of payload.
    pub fn round_trip(&self, bytes: u64) -> Time {
        Time::from_nanos(self.base_latency_ns + self.per_request_ns) + self.transfer_time(bytes)
    }

    /// Effective bandwidth (GB/s) for one synchronous requester issuing
    /// `bytes`-sized requests back to back.
    pub fn effective_bandwidth_gbps(&self, bytes: u64) -> f64 {
        let rt_ns = self.round_trip(bytes).as_nanos_f64();
        bytes as f64 / rt_ns
    }

    /// Bandwidth utilization (0–1) of a single synchronous requester at
    /// this request size.
    pub fn utilization_single_stream(&self, bytes: u64) -> f64 {
        self.effective_bandwidth_gbps(bytes) / self.peak_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hierarchy_matches_figure_2d() {
        // DRAM < PCIe host DRAM < RDMA remote, at every request size.
        let dram = LinkModel::local_dram(1);
        let pcie = LinkModel::pcie_host_dram();
        let rdma = LinkModel::rdma_remote();
        for bytes in [8u64, 16, 32, 64, 128] {
            assert!(dram.round_trip(bytes) < pcie.round_trip(bytes));
            assert!(pcie.round_trip(bytes) < rdma.round_trip(bytes));
        }
        // Small remote access is still µs-scale (Observation-3).
        assert!(rdma.round_trip(8) >= Time::from_micros(5));
        assert!(dram.round_trip(8) < Time::from_nanos(200));
    }

    #[test]
    fn small_requests_collapse_rdma_bandwidth() {
        // Paper: 8 B vs 1024 B remote bandwidth differs by ~100x.
        let rdma = LinkModel::rdma_remote();
        let ratio = rdma.effective_bandwidth_gbps(1024) / rdma.effective_bandwidth_gbps(8);
        assert!(
            (50.0..200.0).contains(&ratio),
            "bandwidth collapse ratio {ratio} outside paper's ~100x"
        );
    }

    #[test]
    fn mof_beats_rdma_on_both_axes() {
        let mof = LinkModel::mof(3);
        let rdma = LinkModel::rdma_remote();
        assert!(mof.round_trip(64) < rdma.round_trip(64));
        assert!(mof.peak_gbps > rdma.peak_gbps);
        // MoF keeps decent utilization even for small packed requests.
        assert!(mof.utilization_single_stream(64) > rdma.utilization_single_stream(64));
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let l = LinkModel::new("x", 0, 0, 1.0); // 1 byte/ns
        assert_eq!(l.transfer_time(1000), Time::from_micros(1));
        assert_eq!(l.round_trip(1000), Time::from_micros(1));
    }

    #[test]
    fn channel_aggregation() {
        assert_eq!(LinkModel::local_dram(4).peak_gbps, 51.2);
        assert!((LinkModel::mof(3).peak_gbps - 37.5).abs() < 1e-9);
        assert_eq!(LinkModel::fpga_local_dram(8).peak_gbps, 102.4);
    }

    #[test]
    fn utilization_bounded_by_one() {
        for link in [
            LinkModel::local_dram(1),
            LinkModel::pcie_host_dram(),
            LinkModel::rdma_remote(),
            LinkModel::mof(1),
        ] {
            for bytes in [8u64, 64, 1024, 1 << 20] {
                let u = link.utilization_single_stream(bytes);
                assert!((0.0..=1.0).contains(&u), "{}: {u}", link.name);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = LinkModel::new("bad", 0, 0, 0.0);
    }

    #[test]
    fn degraded_link_scales_bandwidth_not_latency() {
        let mof = LinkModel::mof(3);
        let half = mof.degraded(0.5);
        assert_eq!(half.name, "mof-degraded");
        assert_eq!(half.base_latency_ns, mof.base_latency_ns);
        assert_eq!(half.per_request_ns, mof.per_request_ns);
        assert!((half.peak_gbps - mof.peak_gbps * 0.5).abs() < 1e-9);
        // Large transfers roughly double; tiny latency-bound ones barely move.
        let big = 1u64 << 20;
        assert!(half.transfer_time(big) > mof.transfer_time(big));
        let d = half.round_trip(8).as_nanos_f64() - mof.round_trip(8).as_nanos_f64();
        assert!(d.abs() <= 2.0, "latency-bound trip shifted by {d} ns");
        // A full-strength "degradation" is the identity on timing.
        assert_eq!(mof.degraded(1.0).peak_gbps, mof.peak_gbps);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn degradation_factor_above_one_panics() {
        let _ = LinkModel::mof(1).degraded(1.5);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn degradation_factor_zero_panics() {
        let _ = LinkModel::mof(1).degraded(0.0);
    }
}
