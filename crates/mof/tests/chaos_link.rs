//! Chaos-driven link faults: a deterministic [`FaultPlan`] drives the
//! go-back-N [`ReliableChannel`] and the [`MofEndpoint`]'s
//! retransmit/abandon machinery — the real recovery paths, not ad-hoc
//! closures — and the outcomes replay exactly across runs.

use lsdgnn_chaos::{FaultPlan, LinkPartition, ScenarioSpec};
use lsdgnn_mof::{ReadRequestPackage, ReadResponsePackage, ReliableChannel};

fn lossy_plan(seed: u64, loss: f64) -> FaultPlan {
    FaultPlan::build(seed, ScenarioSpec::none().with_frame_loss(loss)).expect("valid spec")
}

#[test]
fn reliable_channel_recovers_under_planned_loss() {
    let plan = lossy_plan(17, 0.3);
    let mut ch = ReliableChannel::new(8);
    for i in 0..100u32 {
        ch.push(i);
    }
    // The plan decides per transmission attempt; the attempt counter is
    // the link's virtual clock.
    let mut attempt = 0u64;
    ch.run_with_retries(
        |_| {
            attempt += 1;
            plan.drop_frame(0, attempt, attempt)
        },
        10_000,
    )
    .expect("30% loss is survivable");
    assert_eq!(ch.received(), &(0..100).collect::<Vec<_>>()[..]);
    assert!(ch.drops() > 0, "the plan injected drops");
    assert!(ch.accounting_balances());
}

#[test]
fn channel_outcomes_replay_byte_for_byte() {
    let run = || {
        let plan = lossy_plan(23, 0.25);
        let mut ch = ReliableChannel::new(4);
        for i in 0..60u32 {
            ch.push(i);
        }
        let mut attempt = 0u64;
        ch.run(|_| {
            attempt += 1;
            plan.drop_frame(1, attempt, attempt)
        });
        (ch.transmissions(), ch.drops(), ch.wasted_tail())
    };
    assert_eq!(run(), run(), "same plan, same link history");
}

#[test]
fn partition_window_abandons_the_channel() {
    // The link goes fully dark from attempt 10 on; a bounded retry
    // budget must abandon instead of spinning.
    let plan = FaultPlan::build(
        5,
        ScenarioSpec::none().with_partition(LinkPartition {
            link: 0,
            from: 10,
            until: u64::MAX,
        }),
    )
    .unwrap();
    let mut ch = ReliableChannel::new(4);
    for i in 0..40u32 {
        ch.push(i);
    }
    let mut attempt = 0u64;
    let err = ch
        .run_with_retries(
            |_| {
                attempt += 1;
                plan.drop_frame(0, attempt, attempt)
            },
            32,
        )
        .expect_err("a permanent partition must abandon");
    assert!(err.undelivered > 0);
    assert_eq!(ch.received().len() + ch.pending_frames(), 40);
    assert!(ch.accounting_balances());
}

/// A perfect responder echoing each request's addresses as 8-byte data.
fn respond(frame: &[u8]) -> Vec<u8> {
    let req = ReadRequestPackage::decode(frame).expect("valid request");
    let mut data = Vec::new();
    for i in 0..req.request_count() {
        data.extend_from_slice(&req.address(i).to_le_bytes());
    }
    ReadResponsePackage::new(req.seq, 8, data).unwrap().encode()
}

#[test]
fn endpoint_retransmits_through_planned_loss_and_survives_corruption() {
    let plan = FaultPlan::build(
        31,
        ScenarioSpec::none()
            .with_frame_loss(0.3)
            .with_frame_corruption(0.1),
    )
    .unwrap();
    let mut ep = lsdgnn_mof::MofEndpoint::new(8, 5, 50);
    let mut now = 0u64;
    let mut attempt = 0u64;
    let mut completed = 0u32;
    let mut submitted = 0u32;
    let mut crc_errors = 0u32;
    let mut inbox: Vec<Vec<u8>> = Vec::new();
    while completed < 20 {
        now += 1;
        let mut wire = Vec::new();
        if submitted < 20 {
            if let Some(f) = ep
                .submit_read(now, submitted as u64 * 4096, &[0, 8, 16, 24], 8)
                .unwrap()
            {
                submitted += 1;
                wire.push(f);
            }
        }
        wire.extend(ep.poll_timeouts(now));
        for f in wire {
            attempt += 1;
            if plan.drop_frame(0, attempt, now) {
                continue; // lost on the wire; the endpoint will time out
            }
            let mut resp = respond(&f);
            if plan.corrupt_frame(0, attempt) {
                resp[6] ^= 0xA5; // flip header bits; CRC catches it
            }
            inbox.push(resp);
        }
        for resp in inbox.drain(..) {
            match ep.deliver(&resp) {
                Ok(Some(_)) => completed += 1,
                Ok(None) => {} // late duplicate
                Err(_) => crc_errors += 1,
            }
        }
        assert!(now < 50_000, "no forward progress under planned loss");
    }
    let stats = ep.stats();
    assert_eq!(stats.completed, 20);
    assert!(
        stats.retransmissions > 0,
        "loss exercised the recovery path"
    );
    assert!(crc_errors > 0, "corruption exercised the CRC path");
}
