//! Property-based and failure-injection tests for the MoF protocol:
//! codec fuzzing, reliability under arbitrary loss patterns, and packing
//! accounting invariants.

use lsdgnn_mof::{PackingScheme, ReadRequestPackage, ReadResponsePackage, ReliableChannel};
use proptest::prelude::*;

proptest! {
    /// Arbitrary byte soup never panics the decoders; valid-CRC inputs
    /// are the only accepted ones.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = ReadRequestPackage::decode(&bytes);
        let _ = ReadResponsePackage::decode(&bytes);
    }

    /// Request packages round-trip for arbitrary valid contents.
    #[test]
    fn request_round_trips(
        seq in any::<u32>(),
        base in any::<u64>(),
        offsets in proptest::collection::vec(any::<u32>(), 1..=64),
        req_bytes in 1u16..1024,
    ) {
        let pkg = ReadRequestPackage::new(seq, base, &offsets, req_bytes).unwrap();
        let decoded = ReadRequestPackage::decode(&pkg.encode()).unwrap();
        prop_assert_eq!(decoded, pkg);
    }

    /// Response packages round-trip for arbitrary payloads.
    #[test]
    fn response_round_trips(
        seq in any::<u32>(),
        count in 1usize..=64,
        req_bytes in 1u16..128,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..count * req_bytes as usize)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect();
        let pkg = ReadResponsePackage::new(seq, req_bytes, data).unwrap();
        let decoded = ReadResponsePackage::decode(&pkg.encode()).unwrap();
        prop_assert_eq!(decoded, pkg);
    }

    /// Single-bit corruption anywhere in a frame is always detected.
    #[test]
    fn single_bit_flips_detected(
        offsets in proptest::collection::vec(any::<u32>(), 1..=16),
        bit in 0usize..64,
    ) {
        let pkg = ReadRequestPackage::new(7, 0x1000, &offsets, 8).unwrap();
        let mut bytes = pkg.encode();
        let pos = bit % (bytes.len() * 8);
        bytes[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(ReadRequestPackage::decode(&bytes).is_err());
    }

    /// Go-back-N delivers everything exactly once, in order, under any
    /// loss pattern that is not total.
    #[test]
    fn reliability_under_arbitrary_loss(
        frames in 1usize..60,
        window in 1usize..12,
        loss_pattern in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let mut ch: ReliableChannel<usize> = ReliableChannel::new(window);
        for i in 0..frames {
            ch.push(i);
        }
        let mut tick = 0usize;
        ch.run(|_| {
            tick += 1;
            // A repeating, not-always-true pattern: drops at most
            // len-1 of every len transmissions.
            loss_pattern[tick % loss_pattern.len()] && !tick.is_multiple_of(loss_pattern.len())
        });
        prop_assert_eq!(ch.received(), &(0..frames).collect::<Vec<_>>()[..]);
        prop_assert!(ch.transmissions() >= frames as u64);
    }

    /// Packing accounting: fractions always partition the total, MoF
    /// never uses more packages than Gen-Z, and utilization grows with
    /// request size.
    #[test]
    fn packing_invariants(n in 1u64..1_000, bytes in 1u64..2_048) {
        for scheme in [PackingScheme::GenZ, PackingScheme::Mof] {
            let b = scheme.breakdown(n, bytes);
            let sum = b.header_fraction() + b.address_fraction() + b.data_fraction();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert_eq!(b.data_bytes, n * bytes);
        }
        let g = PackingScheme::GenZ.breakdown(n, bytes);
        let m = PackingScheme::Mof.breakdown(n, bytes);
        prop_assert!(m.request_packages <= g.request_packages);
        prop_assert!(m.data_fraction() >= g.data_fraction() - 1e-9);
    }
}
