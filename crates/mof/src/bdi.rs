//! Base-Delta-Immediate (BDI) compression (§4.3 Tech-2, Table 6).
//!
//! Fine-grained remote reads make the *request* side (64-bit addresses) as
//! expensive as the data itself, so MoF compresses both: a block of 64-bit
//! words is stored as one 8-byte base plus per-word deltas of 0, 1, 2 or 4
//! bytes — whichever is the narrowest that fits. Incompressible blocks fall
//! back to raw.

use crate::MofError;

/// A BDI-compressed block of 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressedBlock {
    /// Incompressible: stored verbatim.
    Raw(Vec<u64>),
    /// Base + fixed-width unsigned deltas.
    BaseDelta {
        /// The block's first word, used as the base.
        base: u64,
        /// Bytes per delta: 0 (all words equal), 1, 2 or 4.
        delta_width: u8,
        /// Deltas of each word from `base` (empty when `delta_width == 0`
        /// except for the implicit count).
        deltas: Vec<u32>,
        /// Number of words in the block.
        count: usize,
    },
}

impl CompressedBlock {
    /// Encoded size in bytes: 1 metadata byte, then either raw words or
    /// base + deltas.
    pub fn compressed_bytes(&self) -> u64 {
        match self {
            CompressedBlock::Raw(words) => 1 + 8 * words.len() as u64,
            CompressedBlock::BaseDelta {
                delta_width, count, ..
            } => 1 + 8 + *delta_width as u64 * *count as u64,
        }
    }

    /// Size of the uncompressed block in bytes.
    pub fn original_bytes(&self) -> u64 {
        match self {
            CompressedBlock::Raw(words) => 8 * words.len() as u64,
            CompressedBlock::BaseDelta { count, .. } => 8 * *count as u64,
        }
    }

    /// Compression ratio (compressed / original); > 1 means expansion.
    pub fn ratio(&self) -> f64 {
        self.compressed_bytes() as f64 / self.original_bytes() as f64
    }
}

/// Compresses a block of 64-bit words with BDI.
///
/// # Panics
///
/// Panics if `words` is empty.
pub fn bdi_compress(words: &[u64]) -> CompressedBlock {
    assert!(!words.is_empty(), "cannot compress an empty block");
    let base = words[0];
    // Find max delta; deltas must be non-negative (base = min would be
    // better, but hardware uses first-word base for streaming).
    let mut max_delta = 0u64;
    let mut ok = true;
    for &w in words {
        match w.checked_sub(base) {
            Some(d) => max_delta = max_delta.max(d),
            None => {
                ok = false;
                break;
            }
        }
    }
    if ok {
        let delta_width: u8 = if max_delta == 0 {
            0
        } else if max_delta <= u8::MAX as u64 {
            1
        } else if max_delta <= u16::MAX as u64 {
            2
        } else if max_delta <= u32::MAX as u64 {
            4
        } else {
            u8::MAX // sentinel: incompressible
        };
        if delta_width != u8::MAX {
            let compressed = 1 + 8 + delta_width as u64 * words.len() as u64;
            if compressed < 8 * words.len() as u64 {
                let deltas = if delta_width == 0 {
                    Vec::new()
                } else {
                    words.iter().map(|&w| (w - base) as u32).collect()
                };
                return CompressedBlock::BaseDelta {
                    base,
                    delta_width,
                    deltas,
                    count: words.len(),
                };
            }
        }
    }
    CompressedBlock::Raw(words.to_vec())
}

/// Decompresses a block back to its words.
///
/// # Errors
///
/// Returns [`MofError::Malformed`] if the block's internal lengths are
/// inconsistent.
pub fn bdi_decompress(block: &CompressedBlock) -> Result<Vec<u64>, MofError> {
    match block {
        CompressedBlock::Raw(words) => Ok(words.clone()),
        CompressedBlock::BaseDelta {
            base,
            delta_width,
            deltas,
            count,
        } => {
            if *delta_width == 0 {
                return Ok(vec![*base; *count]);
            }
            if deltas.len() != *count {
                return Err(MofError::Malformed("delta count mismatch"));
            }
            Ok(deltas.iter().map(|&d| base + d as u64).collect())
        }
    }
}

/// Compresses a byte buffer interpreted as little-endian u64 words
/// (zero-padded tail), returning the compressed byte count — the
/// Table 6 accounting helper.
///
/// # Panics
///
/// Panics if `bytes` is empty.
pub fn bdi_compressed_bytes(bytes: &[u8]) -> u64 {
    assert!(!bytes.is_empty(), "cannot compress an empty buffer");
    let words: Vec<u64> = bytes
        .chunks(8)
        .map(|c| {
            let mut w = [0u8; 8];
            w[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(w)
        })
        .collect();
    bdi_compress(&words).compressed_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_block_compresses_to_base_only() {
        let block = bdi_compress(&[42; 64]);
        assert_eq!(block.compressed_bytes(), 9);
        assert_eq!(bdi_decompress(&block).unwrap(), vec![42; 64]);
    }

    #[test]
    fn small_deltas_pick_one_byte() {
        let words: Vec<u64> = (0..64).map(|i| 1_000_000 + i).collect();
        let block = bdi_compress(&words);
        assert_eq!(block.compressed_bytes(), 1 + 8 + 64);
        assert!(block.ratio() < 0.15);
        assert_eq!(bdi_decompress(&block).unwrap(), words);
    }

    #[test]
    fn medium_deltas_pick_two_bytes() {
        let words: Vec<u64> = (0..64).map(|i| 5_000 + i * 300).collect();
        let block = bdi_compress(&words);
        assert_eq!(block.compressed_bytes(), 1 + 8 + 128);
        assert_eq!(bdi_decompress(&block).unwrap(), words);
    }

    #[test]
    fn random_data_falls_back_to_raw() {
        // Values spanning > 32-bit deltas cannot compress.
        let words = vec![0u64, u64::MAX / 2, 3, u64::MAX - 10];
        let block = bdi_compress(&words);
        assert!(matches!(block, CompressedBlock::Raw(_)));
        assert_eq!(block.compressed_bytes(), 1 + 32);
        assert_eq!(bdi_decompress(&block).unwrap(), words);
    }

    #[test]
    fn descending_first_word_forces_raw() {
        // base = first word; an earlier-smaller pattern underflows.
        let words = vec![100u64, 5, 7];
        let block = bdi_compress(&words);
        assert!(matches!(block, CompressedBlock::Raw(_)));
    }

    #[test]
    fn table6_style_address_block() {
        // 128 sampling addresses in one region: 8-byte addrs with
        // cache-line-ish strides compress ~4x or better.
        let addrs: Vec<u64> = (0..128).map(|i| 0x7F00_0000_0000 + i * 72).collect();
        let block = bdi_compress(&addrs);
        assert!(
            block.compressed_bytes() <= 1 + 8 + 2 * 128,
            "address block {} bytes",
            block.compressed_bytes()
        );
        assert!(block.ratio() < 0.3);
    }

    #[test]
    fn byte_api_counts() {
        let bytes = vec![7u8; 64];
        // 8 constant words -> 9 bytes.
        assert_eq!(bdi_compressed_bytes(&bytes), 9);
    }

    proptest! {
        #[test]
        fn roundtrip_any_block(words in proptest::collection::vec(any::<u64>(), 1..128)) {
            let block = bdi_compress(&words);
            prop_assert_eq!(bdi_decompress(&block).unwrap(), words.clone());
            // Never catastrophically expand: 1 metadata byte at most.
            prop_assert!(block.compressed_bytes() <= 8 * words.len() as u64 + 1);
        }

        #[test]
        fn roundtrip_local_blocks(base in 0u64..u64::MAX/2, strides in proptest::collection::vec(0u64..512, 1..64)) {
            let mut words = Vec::new();
            let mut cur = base;
            for s in strides {
                words.push(cur);
                cur += s;
            }
            let block = bdi_compress(&words);
            prop_assert_eq!(bdi_decompress(&block).unwrap(), words);
        }
    }
}
