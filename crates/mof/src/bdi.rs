//! Base-Delta-Immediate (BDI) compression (§4.3 Tech-2, Table 6).
//!
//! Fine-grained remote reads make the *request* side (64-bit addresses) as
//! expensive as the data itself, so MoF compresses both: a block of 64-bit
//! words is stored as one 8-byte base plus per-word deltas of 0, 1, 2 or 4
//! bytes — whichever is the narrowest that fits. Incompressible blocks fall
//! back to raw.

use crate::MofError;

/// A BDI-compressed block of 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressedBlock {
    /// Incompressible: stored verbatim.
    Raw(Vec<u64>),
    /// Base + fixed-width unsigned deltas.
    BaseDelta {
        /// The block's first word, used as the base.
        base: u64,
        /// Bytes per delta: 0 (all words equal), 1, 2 or 4.
        delta_width: u8,
        /// Deltas of each word from `base` (empty when `delta_width == 0`
        /// except for the implicit count).
        deltas: Vec<u32>,
        /// Number of words in the block.
        count: usize,
    },
    /// Base + fixed-width *signed* deltas — covers blocks whose first
    /// word is not the minimum (locality-relabeled neighbor lists keep
    /// their original relative order, so ids dip below the list head;
    /// standard BDI handles this with two's-complement deltas).
    SignedBaseDelta {
        /// The block's first word, used as the base.
        base: u64,
        /// Bytes per delta: 1, 2 or 4.
        delta_width: u8,
        /// Signed deltas of each word from `base`.
        deltas: Vec<i32>,
        /// Number of words in the block.
        count: usize,
    },
}

impl CompressedBlock {
    /// Encoded size in bytes: 1 metadata byte, then either raw words or
    /// base + deltas.
    pub fn compressed_bytes(&self) -> u64 {
        match self {
            CompressedBlock::Raw(words) => 1 + 8 * words.len() as u64,
            CompressedBlock::BaseDelta {
                delta_width, count, ..
            }
            | CompressedBlock::SignedBaseDelta {
                delta_width, count, ..
            } => 1 + 8 + *delta_width as u64 * *count as u64,
        }
    }

    /// Size of the uncompressed block in bytes.
    pub fn original_bytes(&self) -> u64 {
        match self {
            CompressedBlock::Raw(words) => 8 * words.len() as u64,
            CompressedBlock::BaseDelta { count, .. }
            | CompressedBlock::SignedBaseDelta { count, .. } => 8 * *count as u64,
        }
    }

    /// Compression ratio (compressed / original); > 1 means expansion.
    pub fn ratio(&self) -> f64 {
        self.compressed_bytes() as f64 / self.original_bytes() as f64
    }

    /// Savings ratio (original / compressed); ≥ 1 means the block
    /// genuinely shrank. Raw blocks report slightly below 1 (the honest
    /// metadata byte).
    pub fn savings_ratio(&self) -> f64 {
        self.original_bytes() as f64 / self.compressed_bytes() as f64
    }
}

/// Compresses a block of 64-bit words with BDI.
///
/// # Panics
///
/// Panics if `words` is empty.
pub fn bdi_compress(words: &[u64]) -> CompressedBlock {
    assert!(!words.is_empty(), "cannot compress an empty block");
    let base = words[0];
    let Some((delta_width, signed)) = delta_encoding(words) else {
        return CompressedBlock::Raw(words.to_vec());
    };
    let compressed = 1 + 8 + delta_width as u64 * words.len() as u64;
    if compressed >= 8 * words.len() as u64 {
        return CompressedBlock::Raw(words.to_vec());
    }
    if signed {
        CompressedBlock::SignedBaseDelta {
            base,
            delta_width,
            deltas: words
                .iter()
                .map(|&w| (w as i128 - base as i128) as i32)
                .collect(),
            count: words.len(),
        }
    } else {
        CompressedBlock::BaseDelta {
            base,
            delta_width,
            deltas: if delta_width == 0 {
                Vec::new()
            } else {
                words.iter().map(|&w| (w - base) as u32).collect()
            },
            count: words.len(),
        }
    }
}

/// The narrowest delta encoding covering `words` against a first-word
/// base: `Some((width_bytes, signed))` with widths 0 (all equal), 1, 2
/// or 4, preferring unsigned at equal width (the cheaper datapath), or
/// `None` when some delta exceeds 32 bits either way.
fn delta_encoding(words: &[u64]) -> Option<(u8, bool)> {
    let base = words[0] as i128;
    let mut min_d = 0i128;
    let mut max_d = 0i128;
    for &w in words {
        let d = w as i128 - base;
        min_d = min_d.min(d);
        max_d = max_d.max(d);
    }
    if min_d == 0 && max_d == 0 {
        return Some((0, false));
    }
    for width in [1u8, 2, 4] {
        let bits = 8 * width as u32;
        if min_d >= 0 && max_d < (1i128 << bits) {
            return Some((width, false));
        }
        if min_d >= -(1i128 << (bits - 1)) && max_d < (1i128 << (bits - 1)) {
            return Some((width, true));
        }
    }
    None
}

/// Decompresses a block back to its words.
///
/// # Errors
///
/// Returns [`MofError::Malformed`] if the block's internal lengths are
/// inconsistent.
pub fn bdi_decompress(block: &CompressedBlock) -> Result<Vec<u64>, MofError> {
    match block {
        CompressedBlock::Raw(words) => Ok(words.clone()),
        CompressedBlock::BaseDelta {
            base,
            delta_width,
            deltas,
            count,
        } => {
            if *delta_width == 0 {
                return Ok(vec![*base; *count]);
            }
            if deltas.len() != *count {
                return Err(MofError::Malformed("delta count mismatch"));
            }
            Ok(deltas.iter().map(|&d| base + d as u64).collect())
        }
        CompressedBlock::SignedBaseDelta {
            base,
            deltas,
            count,
            ..
        } => {
            if deltas.len() != *count {
                return Err(MofError::Malformed("delta count mismatch"));
            }
            Ok(deltas
                .iter()
                .map(|&d| base.wrapping_add(d as i64 as u64))
                .collect())
        }
    }
}

/// Compresses a byte buffer interpreted as little-endian u64 words
/// (zero-padded tail), returning the compressed byte count — the
/// Table 6 accounting helper.
///
/// # Panics
///
/// Panics if `bytes` is empty.
pub fn bdi_compressed_bytes(bytes: &[u8]) -> u64 {
    assert!(!bytes.is_empty(), "cannot compress an empty buffer");
    let words: Vec<u64> = bytes
        .chunks(8)
        .map(|c| {
            let mut w = [0u8; 8];
            w[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(w)
        })
        .collect();
    bdi_compress(&words).compressed_bytes()
}

/// Words per BDI line: 8 × u64 = one 64-byte memory line, the
/// granularity hardware BDI compresses at.
pub const BDI_LINE_WORDS: usize = 8;

/// Encoded size in bytes of `words` as one BDI block, without
/// materializing the block: the better of base+delta (when an encoding
/// exists) and the 1-byte-tagged raw fallback. Matches
/// [`CompressedBlock::compressed_bytes`] for the same input.
pub fn bdi_block_bytes(words: &[u64]) -> u64 {
    assert!(!words.is_empty(), "cannot size an empty block");
    let raw = 1 + 8 * words.len() as u64;
    match delta_encoding(words) {
        Some((width, _)) => raw.min(1 + 8 + width as u64 * words.len() as u64),
        None => raw,
    }
}

/// Allocation-free streaming BDI accountant: feed a payload as 64-bit
/// words; it sizes each [`BDI_LINE_WORDS`]-word line independently (the
/// hardware compresses per memory line, not per message) and accumulates
/// raw vs compressed byte totals. This is what the serving path charges
/// the wire with — measured on the actual response payload, per line,
/// with the raw fallback's expansion honestly included.
#[derive(Debug, Clone, Default)]
pub struct BdiStreamSizer {
    buf: [u64; BDI_LINE_WORDS],
    len: usize,
    raw_bytes: u64,
    wire_bytes: u64,
}

impl BdiStreamSizer {
    /// A fresh accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one 64-bit word.
    pub fn push(&mut self, w: u64) {
        self.buf[self.len] = w;
        self.len += 1;
        self.raw_bytes += 8;
        if self.len == BDI_LINE_WORDS {
            self.wire_bytes += bdi_block_bytes(&self.buf);
            self.len = 0;
        }
    }

    /// Flushes a partial trailing line and returns
    /// `(raw_bytes, compressed_bytes)`.
    pub fn finish(mut self) -> (u64, u64) {
        if self.len > 0 {
            self.wire_bytes += bdi_block_bytes(&self.buf[..self.len]);
        }
        (self.raw_bytes, self.wire_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_block_compresses_to_base_only() {
        let block = bdi_compress(&[42; 64]);
        assert_eq!(block.compressed_bytes(), 9);
        assert_eq!(bdi_decompress(&block).unwrap(), vec![42; 64]);
    }

    #[test]
    fn small_deltas_pick_one_byte() {
        let words: Vec<u64> = (0..64).map(|i| 1_000_000 + i).collect();
        let block = bdi_compress(&words);
        assert_eq!(block.compressed_bytes(), 1 + 8 + 64);
        assert!(block.ratio() < 0.15);
        assert_eq!(bdi_decompress(&block).unwrap(), words);
    }

    #[test]
    fn medium_deltas_pick_two_bytes() {
        let words: Vec<u64> = (0..64).map(|i| 5_000 + i * 300).collect();
        let block = bdi_compress(&words);
        assert_eq!(block.compressed_bytes(), 1 + 8 + 128);
        assert_eq!(bdi_decompress(&block).unwrap(), words);
    }

    #[test]
    fn random_data_falls_back_to_raw() {
        // Values spanning > 32-bit deltas cannot compress.
        let words = vec![0u64, u64::MAX / 2, 3, u64::MAX - 10];
        let block = bdi_compress(&words);
        assert!(matches!(block, CompressedBlock::Raw(_)));
        assert_eq!(block.compressed_bytes(), 1 + 32);
        assert_eq!(bdi_decompress(&block).unwrap(), words);
    }

    #[test]
    fn descending_first_word_compresses_signed() {
        // base = first word; earlier-smaller values need signed deltas
        // (order-preserved relabeled neighbor lists look exactly like
        // this). 3 words -> 1 + 8 + 3 = 12 bytes vs 24 raw.
        let words = vec![100u64, 5, 7];
        let block = bdi_compress(&words);
        assert!(matches!(
            block,
            CompressedBlock::SignedBaseDelta { delta_width: 1, .. }
        ));
        assert_eq!(block.compressed_bytes(), 12);
        assert_eq!(bdi_decompress(&block).unwrap(), words);
    }

    #[test]
    fn signed_prefers_unsigned_at_equal_width() {
        // Monotone-up small deltas still take the unsigned path.
        let words: Vec<u64> = (0..16).map(|i| 50 + i).collect();
        let block = bdi_compress(&words);
        assert!(matches!(
            block,
            CompressedBlock::BaseDelta { delta_width: 1, .. }
        ));
    }

    #[test]
    fn signed_width_boundaries() {
        // Delta of exactly i8::MIN fits width 1; one below needs 2.
        let w1 = vec![1000u64, 1000 - 128];
        assert!(matches!(
            bdi_compress(&w1),
            CompressedBlock::SignedBaseDelta { delta_width: 1, .. }
        ));
        let w2 = vec![1000u64, 1000 - 129, 5000];
        assert!(matches!(
            bdi_compress(&w2),
            CompressedBlock::SignedBaseDelta { delta_width: 2, .. }
        ));
        for w in [w1, w2] {
            assert_eq!(bdi_decompress(&bdi_compress(&w)).unwrap(), w);
        }
    }

    #[test]
    fn stream_sizer_matches_per_line_blocks() {
        // 20 words = two full 8-word lines + a 4-word tail.
        let words: Vec<u64> = (0..20).map(|i| 0x1000 + i * 3).collect();
        let mut sizer = BdiStreamSizer::new();
        for &w in &words {
            sizer.push(w);
        }
        let (raw, wire) = sizer.finish();
        assert_eq!(raw, 160);
        let expect: u64 = words.chunks(BDI_LINE_WORDS).map(bdi_block_bytes).sum();
        assert_eq!(wire, expect);
        assert!(wire < raw);
    }

    #[test]
    fn block_bytes_agrees_with_compressor() {
        for words in [
            vec![42u64; 8],
            (0..8).map(|i| 1_000_000 + i).collect(),
            vec![100u64, 5, 7],
            vec![0u64, u64::MAX / 2, 3, u64::MAX - 10],
        ] {
            assert_eq!(
                bdi_block_bytes(&words),
                bdi_compress(&words).compressed_bytes(),
                "words {words:?}"
            );
        }
    }

    #[test]
    fn table6_style_address_block() {
        // 128 sampling addresses in one region: 8-byte addrs with
        // cache-line-ish strides compress ~4x or better.
        let addrs: Vec<u64> = (0..128).map(|i| 0x7F00_0000_0000 + i * 72).collect();
        let block = bdi_compress(&addrs);
        assert!(
            block.compressed_bytes() <= 1 + 8 + 2 * 128,
            "address block {} bytes",
            block.compressed_bytes()
        );
        assert!(block.ratio() < 0.3);
    }

    #[test]
    fn byte_api_counts() {
        let bytes = vec![7u8; 64];
        // 8 constant words -> 9 bytes.
        assert_eq!(bdi_compressed_bytes(&bytes), 9);
    }

    proptest! {
        #[test]
        fn roundtrip_any_block(words in proptest::collection::vec(any::<u64>(), 1..128)) {
            let block = bdi_compress(&words);
            prop_assert_eq!(bdi_decompress(&block).unwrap(), words.clone());
            // Never catastrophically expand: 1 metadata byte at most.
            prop_assert!(block.compressed_bytes() <= 8 * words.len() as u64 + 1);
        }

        #[test]
        fn roundtrip_local_blocks(base in 0u64..u64::MAX/2, strides in proptest::collection::vec(0u64..512, 1..64)) {
            let mut words = Vec::new();
            let mut cur = base;
            for s in strides {
                words.push(cur);
                cur += s;
            }
            let block = bdi_compress(&words);
            prop_assert_eq!(bdi_decompress(&block).unwrap(), words);
        }

        // Adversarial payload classes from the serving path. Each pins
        // (a) lossless round-trip, (b) honest size accounting: a block
        // claiming savings (savings_ratio >= 1.0) must not be Raw, and
        // no block understates its encoded size.
        #[test]
        fn adversarial_all_equal(w in any::<u64>(), n in 1usize..256) {
            let words = vec![w; n];
            let block = bdi_compress(&words);
            prop_assert_eq!(bdi_decompress(&block).unwrap(), words);
            prop_assert_eq!(block.compressed_bytes(), 9);
            if n > 1 {
                prop_assert!(block.savings_ratio() >= 1.0);
            }
        }

        #[test]
        fn adversarial_random(words in proptest::collection::vec(any::<u64>(), 1..256)) {
            let block = bdi_compress(&words);
            prop_assert_eq!(bdi_decompress(&block).unwrap(), words.clone());
            // Accounting honesty: savings claims require a delta encoding.
            if block.savings_ratio() >= 1.0 {
                prop_assert!(!matches!(block, CompressedBlock::Raw(_)));
            }
            prop_assert!(block.compressed_bytes() >= 9u64.min(1 + 8 * words.len() as u64));
        }

        #[test]
        fn adversarial_monotone_id_runs(start in 0u64..1_000_000_000, step in 1u64..64, n in 2usize..256) {
            // Relabeled neighbor-id runs: monotone with small strides —
            // the case locality reordering manufactures. Must compress.
            let words: Vec<u64> = (0..n as u64).map(|i| start + i * step).collect();
            let block = bdi_compress(&words);
            prop_assert_eq!(bdi_decompress(&block).unwrap(), words);
            if n >= 3 {
                prop_assert!(block.savings_ratio() >= 1.0, "n={} step={} -> {:.3}", n, step, block.savings_ratio());
            }
        }

        #[test]
        fn adversarial_attr_floats_as_words(vals in proptest::collection::vec(-1.0f32..1.0, 2..128)) {
            // Attribute rows cross the wire as f32 pairs packed into u64
            // words; round-trip must reproduce the exact bit patterns.
            let words: Vec<u64> = vals.chunks(2).map(|c| {
                let lo = c[0].to_bits() as u64;
                let hi = c.get(1).map_or(0, |v| v.to_bits()) as u64;
                lo | (hi << 32)
            }).collect();
            let block = bdi_compress(&words);
            prop_assert_eq!(bdi_decompress(&block).unwrap(), words.clone());
            // Float payloads are usually incompressible: the accountant
            // must charge the expansion, never claim savings it lacks.
            prop_assert!(block.compressed_bytes() <= 1 + 8 * words.len() as u64);
        }

        #[test]
        fn stream_sizer_never_exceeds_tagged_raw(words in proptest::collection::vec(any::<u64>(), 1..512)) {
            let mut sizer = BdiStreamSizer::new();
            for &w in &words { sizer.push(w); }
            let (raw, wire) = sizer.finish();
            prop_assert_eq!(raw, 8 * words.len() as u64);
            let lines = words.len().div_ceil(BDI_LINE_WORDS) as u64;
            prop_assert!(wire <= raw + lines);
            prop_assert!(wire >= lines * 9u64.min(8 * words.len() as u64 + 1));
        }
    }
}
