//! The Table 5 byte-accounting model: MoF multi-request packing versus a
//! Gen-Z-style package format.
//!
//! For a batch of `n` reads of `s` bytes each, both schemes move the same
//! `n*s` bytes of data; they differ in how many packages that takes and how
//! many header/address bytes ride along:
//!
//! * **Gen-Z style**: 4 requests per request-package, 56-byte package
//!   header, full 8-byte address per request; responses return in 4-wide
//!   data packages with the same header. 128 reads → 32 request + 32
//!   response = 64 packages (the paper's count).
//! * **MoF**: 64 requests per package (shared 8-byte base + 4-byte
//!   offsets), 12-byte header+CRC. 128 reads → 2 request packages (the
//!   paper counts request packages) + 2 response packages.

use serde::{Deserialize, Serialize};

/// Byte accounting of one batched transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteBreakdown {
    /// Request packages sent (the paper's "number of packages" column).
    pub request_packages: u64,
    /// Response packages returned.
    pub response_packages: u64,
    /// Header + CRC bytes across all packages.
    pub header_bytes: u64,
    /// Address/offset bytes across request packages.
    pub address_bytes: u64,
    /// Payload data bytes.
    pub data_bytes: u64,
}

impl ByteBreakdown {
    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.header_bytes + self.address_bytes + self.data_bytes
    }

    /// Header overhead fraction.
    pub fn header_fraction(&self) -> f64 {
        self.header_bytes as f64 / self.total_bytes() as f64
    }

    /// Address overhead fraction.
    pub fn address_fraction(&self) -> f64 {
        self.address_bytes as f64 / self.total_bytes() as f64
    }

    /// Data (useful payload) fraction — the "utilization" column.
    pub fn data_fraction(&self) -> f64 {
        self.data_bytes as f64 / self.total_bytes() as f64
    }
}

/// A package format for batched remote reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackingScheme {
    /// Gen-Z-style: 4 requests per package, full addresses.
    GenZ,
    /// The paper's MoF format: 64 requests per package, base+offset
    /// addressing.
    Mof,
}

impl PackingScheme {
    /// Requests carried per request-package.
    pub fn requests_per_package(&self) -> u64 {
        match self {
            PackingScheme::GenZ => 4,
            PackingScheme::Mof => 64,
        }
    }

    /// Header + CRC bytes per package.
    pub fn header_bytes_per_package(&self) -> u64 {
        match self {
            PackingScheme::GenZ => 56,
            PackingScheme::Mof => 12,
        }
    }

    /// Address bytes per request (plus any per-package base).
    fn address_bytes(&self, requests_in_package: u64) -> u64 {
        match self {
            PackingScheme::GenZ => 8 * requests_in_package,
            PackingScheme::Mof => 8 + 4 * requests_in_package,
        }
    }

    /// Accounts a batch of `n_requests` reads of `request_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `n_requests` or `request_bytes` is zero.
    pub fn breakdown(&self, n_requests: u64, request_bytes: u64) -> ByteBreakdown {
        assert!(n_requests > 0, "need at least one request");
        assert!(request_bytes > 0, "request bytes must be non-zero");
        let per = self.requests_per_package();
        let full = n_requests / per;
        let rem = n_requests % per;
        let request_packages = full + u64::from(rem > 0);
        let response_packages = request_packages;
        let hdr = self.header_bytes_per_package() * (request_packages + response_packages);
        let mut addr = self.address_bytes(per) * full;
        if rem > 0 {
            addr += self.address_bytes(rem);
        }
        ByteBreakdown {
            request_packages,
            response_packages,
            header_bytes: hdr,
            address_bytes: addr,
            data_bytes: n_requests * request_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_package_counts() {
        // Paper Table 5: 128 requests → Gen-Z 64 packages (32 req + 32
        // resp), proposed 2 (request packages).
        let genz = PackingScheme::GenZ.breakdown(128, 16);
        let mof = PackingScheme::Mof.breakdown(128, 16);
        assert_eq!(genz.request_packages + genz.response_packages, 64);
        assert_eq!(mof.request_packages, 2);
    }

    #[test]
    fn table5_16byte_fractions() {
        // Paper: Gen-Z 51.02% hdr / 10.20% addr / 32.65% data;
        // proposed 2.36% / 19.53% / 78.11%.
        let genz = PackingScheme::GenZ.breakdown(128, 16);
        assert!(
            (genz.header_fraction() - 0.51).abs() < 0.05,
            "{}",
            genz.header_fraction()
        );
        assert!((genz.data_fraction() - 0.33).abs() < 0.05);
        let mof = PackingScheme::Mof.breakdown(128, 16);
        assert!(
            (mof.header_fraction() - 0.024).abs() < 0.01,
            "{}",
            mof.header_fraction()
        );
        assert!((mof.address_fraction() - 0.195).abs() < 0.03);
        assert!((mof.data_fraction() - 0.78).abs() < 0.03);
    }

    #[test]
    fn table5_64byte_fractions() {
        // Paper: Gen-Z 65.98% data; proposed 94.03% data.
        let genz = PackingScheme::GenZ.breakdown(128, 64);
        assert!(
            (genz.data_fraction() - 0.66).abs() < 0.07,
            "{}",
            genz.data_fraction()
        );
        let mof = PackingScheme::Mof.breakdown(128, 64);
        assert!(
            (mof.data_fraction() - 0.94).abs() < 0.02,
            "{}",
            mof.data_fraction()
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        for scheme in [PackingScheme::GenZ, PackingScheme::Mof] {
            for (n, s) in [(1u64, 8u64), (128, 16), (1000, 64), (63, 8)] {
                let b = scheme.breakdown(n, s);
                let sum = b.header_fraction() + b.address_fraction() + b.data_fraction();
                assert!((sum - 1.0).abs() < 1e-9);
                assert_eq!(
                    b.total_bytes(),
                    b.header_bytes + b.address_bytes + b.data_bytes
                );
            }
        }
    }

    #[test]
    fn partial_packages_accounted() {
        let b = PackingScheme::Mof.breakdown(65, 8);
        assert_eq!(b.request_packages, 2);
        // 64-wide package + 1-wide package: 8+4*64 + 8+4*1.
        assert_eq!(b.address_bytes, (8 + 256) + (8 + 4));
    }

    #[test]
    fn mof_always_beats_genz_utilization() {
        for s in [8u64, 16, 32, 64, 128] {
            let g = PackingScheme::GenZ.breakdown(128, s);
            let m = PackingScheme::Mof.breakdown(128, s);
            assert!(m.data_fraction() > g.data_fraction(), "size {s}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_requests_panics() {
        PackingScheme::Mof.breakdown(0, 8);
    }
}
