//! A MoF endpoint: the request/response session layer tying frames,
//! credits and retransmission together.
//!
//! The AxE load unit hands the endpoint batches of reads; the endpoint
//! packs them (Tech-1), tracks outstanding packages by sequence number,
//! enforces credit-based flow control, retransmits on timeout, and
//! matches responses back to the caller's batch — everything a hardware
//! MoF block does between the load unit and the PHY.

use crate::flow::CreditFlow;
use crate::frame::{ReadRequestPackage, ReadResponsePackage, MAX_REQUESTS_PER_PACKAGE};
use crate::MofError;
use std::collections::HashMap;

/// An outstanding read batch.
#[derive(Debug, Clone)]
struct Pending {
    pkg: ReadRequestPackage,
    sent_at: u64,
    retries: u32,
}

/// Endpoint statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Packages transmitted (including retransmissions).
    pub transmissions: u64,
    /// Retransmissions due to timeout.
    pub retransmissions: u64,
    /// Responses matched to pending requests.
    pub completed: u64,
    /// Responses that matched nothing (late duplicates), dropped.
    pub orphans: u64,
}

/// The requester side of a MoF link.
#[derive(Debug)]
pub struct MofEndpoint {
    next_seq: u32,
    pending: HashMap<u32, Pending>,
    flow: CreditFlow,
    timeout_ticks: u64,
    max_retries: u32,
    stats: EndpointStats,
}

impl MofEndpoint {
    /// Creates an endpoint with `credits` in-flight packages, a
    /// retransmit `timeout_ticks`, and `max_retries` per package.
    ///
    /// # Panics
    ///
    /// Panics if `credits` or `timeout_ticks` is zero.
    pub fn new(credits: u32, timeout_ticks: u64, max_retries: u32) -> Self {
        assert!(timeout_ticks > 0, "timeout must be non-zero");
        MofEndpoint {
            next_seq: 0,
            pending: HashMap::new(),
            flow: CreditFlow::new(credits),
            timeout_ticks,
            max_retries,
            stats: EndpointStats::default(),
        }
    }

    /// Submits a batch of reads (≤64, one package). Returns the wire
    /// frame to transmit, or `None` when out of credits (caller retries
    /// after responses drain).
    ///
    /// # Errors
    ///
    /// Propagates frame-construction errors (empty/oversized batches).
    pub fn submit_read(
        &mut self,
        now: u64,
        base_address: u64,
        offsets: &[u32],
        request_bytes: u16,
    ) -> Result<Option<Vec<u8>>, MofError> {
        if offsets.len() > MAX_REQUESTS_PER_PACKAGE {
            return Err(MofError::TooManyRequests(offsets.len()));
        }
        if !self.flow.try_send() {
            return Ok(None);
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let pkg = ReadRequestPackage::new(seq, base_address, offsets, request_bytes)?;
        let wire = pkg.encode();
        self.pending.insert(
            seq,
            Pending {
                pkg,
                sent_at: now,
                retries: 0,
            },
        );
        self.stats.transmissions += 1;
        Ok(Some(wire))
    }

    /// Delivers a response frame; returns the completed request package
    /// and its response when it matches a pending sequence.
    ///
    /// # Errors
    ///
    /// Propagates decode errors (CRC, truncation).
    pub fn deliver(
        &mut self,
        bytes: &[u8],
    ) -> Result<Option<(ReadRequestPackage, ReadResponsePackage)>, MofError> {
        let resp = ReadResponsePackage::decode(bytes)?;
        match self.pending.remove(&resp.seq) {
            Some(p) => {
                self.flow.return_credit();
                self.stats.completed += 1;
                Ok(Some((p.pkg, resp)))
            }
            None => {
                self.stats.orphans += 1;
                Ok(None)
            }
        }
    }

    /// Advances time: returns re-encoded frames for every timed-out
    /// pending package (go-back on loss). Packages beyond `max_retries`
    /// are abandoned and their credit reclaimed.
    pub fn poll_timeouts(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut resend = Vec::new();
        let mut abandoned = Vec::new();
        for (&seq, p) in self.pending.iter_mut() {
            if now.saturating_sub(p.sent_at) >= self.timeout_ticks {
                if p.retries >= self.max_retries {
                    abandoned.push(seq);
                } else {
                    p.retries += 1;
                    p.sent_at = now;
                    self.stats.transmissions += 1;
                    self.stats.retransmissions += 1;
                    resend.push(p.pkg.encode());
                }
            }
        }
        for seq in abandoned {
            self.pending.remove(&seq);
            self.flow.return_credit();
        }
        resend
    }

    /// Packages awaiting responses.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Endpoint statistics.
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A perfect responder echoing each request's addresses as 8-byte
    /// data.
    fn respond(frame: &[u8]) -> Vec<u8> {
        let req = ReadRequestPackage::decode(frame).expect("valid request");
        let mut data = Vec::new();
        for i in 0..req.request_count() {
            data.extend_from_slice(&req.address(i).to_le_bytes());
        }
        ReadResponsePackage::new(req.seq, 8, data).unwrap().encode()
    }

    #[test]
    fn round_trip_matches_request_to_response() {
        let mut ep = MofEndpoint::new(4, 100, 3);
        let frame = ep
            .submit_read(0, 0x1000, &[0, 8, 16], 8)
            .unwrap()
            .expect("credit available");
        assert_eq!(ep.outstanding(), 1);
        let resp = respond(&frame);
        let (req, rsp) = ep.deliver(&resp).unwrap().expect("matched");
        assert_eq!(req.request_count(), 3);
        assert_eq!(rsp.response(1), 0x1008u64.to_le_bytes());
        assert_eq!(ep.outstanding(), 0);
        assert_eq!(ep.stats().completed, 1);
    }

    #[test]
    fn credits_gate_submissions() {
        let mut ep = MofEndpoint::new(2, 100, 3);
        assert!(ep.submit_read(0, 0, &[0], 8).unwrap().is_some());
        assert!(ep.submit_read(0, 0, &[0], 8).unwrap().is_some());
        assert!(ep.submit_read(0, 0, &[0], 8).unwrap().is_none());
        // Draining one response frees a credit.
        let frame = ep.submit_read(0, 64, &[0], 8).unwrap(); // still none
        assert!(frame.is_none());
    }

    #[test]
    fn timeouts_retransmit_then_abandon() {
        let mut ep = MofEndpoint::new(2, 10, 2);
        ep.submit_read(0, 0x2000, &[0, 8], 8).unwrap().unwrap();
        // First timeout: retransmit.
        let r1 = ep.poll_timeouts(10);
        assert_eq!(r1.len(), 1);
        assert_eq!(ep.stats().retransmissions, 1);
        // Identical frame content on retransmit.
        let again = ReadRequestPackage::decode(&r1[0]).unwrap();
        assert_eq!(again.base_address, 0x2000);
        // Second timeout: retransmit again (retries = 2 = max).
        let r2 = ep.poll_timeouts(20);
        assert_eq!(r2.len(), 1);
        // Third: abandoned, credit reclaimed.
        let r3 = ep.poll_timeouts(30);
        assert!(r3.is_empty());
        assert_eq!(ep.outstanding(), 0);
        assert!(ep.submit_read(31, 0, &[0], 8).unwrap().is_some());
    }

    #[test]
    fn late_duplicates_are_orphaned_not_crashed() {
        let mut ep = MofEndpoint::new(2, 100, 3);
        let f = ep.submit_read(0, 0, &[0], 8).unwrap().unwrap();
        let resp = respond(&f);
        assert!(ep.deliver(&resp).unwrap().is_some());
        // The same response again: orphan.
        assert!(ep.deliver(&resp).unwrap().is_none());
        assert_eq!(ep.stats().orphans, 1);
    }

    #[test]
    fn corrupted_response_is_an_error_not_a_match() {
        let mut ep = MofEndpoint::new(2, 100, 3);
        let f = ep.submit_read(0, 0, &[0], 8).unwrap().unwrap();
        let mut resp = respond(&f);
        resp[5] ^= 0xFF;
        assert!(ep.deliver(&resp).is_err());
        assert_eq!(ep.outstanding(), 1, "pending request survives");
    }

    #[test]
    fn lossy_link_end_to_end_with_recovery() {
        // Drop every 3rd transmission; everything still completes.
        let mut ep = MofEndpoint::new(8, 5, 10);
        let mut now = 0u64;
        let mut wire_count = 0u64;
        let mut completed = 0;
        let mut submitted = 0;
        let mut inbox: Vec<Vec<u8>> = Vec::new();
        while completed < 20 {
            now += 1;
            if submitted < 20 {
                if let Some(f) = ep
                    .submit_read(now, submitted as u64 * 4096, &[0, 8, 16, 24], 8)
                    .unwrap()
                {
                    wire_count += 1;
                    if !wire_count.is_multiple_of(3) {
                        inbox.push(respond(&f));
                    }
                    submitted += 1;
                }
            }
            for f in ep.poll_timeouts(now) {
                wire_count += 1;
                if !wire_count.is_multiple_of(3) {
                    inbox.push(respond(&f));
                }
            }
            for resp in inbox.drain(..) {
                if ep.deliver(&resp).unwrap().is_some() {
                    completed += 1;
                }
            }
            assert!(now < 10_000, "no forward progress");
        }
        assert_eq!(ep.stats().completed, 20);
        assert!(ep.stats().retransmissions > 0);
    }
}
