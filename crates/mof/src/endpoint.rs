//! A MoF endpoint: the request/response session layer tying frames,
//! credits and retransmission together.
//!
//! The AxE load unit hands the endpoint batches of reads; the endpoint
//! packs them (Tech-1), tracks outstanding packages by sequence number,
//! enforces credit-based flow control, retransmits on timeout, and
//! matches responses back to the caller's batch — everything a hardware
//! MoF block does between the load unit and the PHY.

use crate::flow::CreditFlow;
use crate::frame::{ReadRequestPackage, ReadResponsePackage, MAX_REQUESTS_PER_PACKAGE};
use crate::MofError;
use lsdgnn_telemetry::{pids, ticks_to_us, MetricSource, Scope, Tracer};
use std::collections::HashMap;

/// An outstanding read batch.
#[derive(Debug, Clone)]
struct Pending {
    pkg: ReadRequestPackage,
    sent_at: u64,
    /// Original submission time (unchanged across retransmissions), so
    /// the traced package lifecycle covers the full loss-recovery tail.
    first_sent: u64,
    retries: u32,
}

/// Endpoint statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Packages transmitted (including retransmissions).
    pub transmissions: u64,
    /// Retransmissions due to timeout.
    pub retransmissions: u64,
    /// Responses matched to pending requests.
    pub completed: u64,
    /// Responses that matched nothing (late duplicates), dropped.
    pub orphans: u64,
    /// Ticks completed packages spent in loss recovery (submission →
    /// last transmission) — the queue-wait half of the latency split.
    pub recovery_wait_ticks: u64,
    /// Ticks completed packages spent on their final, answered flight
    /// (last transmission → completion) — the service-time half.
    pub service_ticks: u64,
}

impl MetricSource for EndpointStats {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("transmissions", self.transmissions);
        out.counter("retransmissions", self.retransmissions);
        out.counter("completed", self.completed);
        out.counter("orphans", self.orphans);
        out.counter("recovery_wait_ticks", self.recovery_wait_ticks);
        out.counter("service_ticks", self.service_ticks);
        if self.transmissions > 0 {
            out.gauge(
                "retransmit_rate",
                self.retransmissions as f64 / self.transmissions as f64,
            );
        }
        if self.completed > 0 {
            out.gauge(
                "mean_recovery_wait_ticks",
                self.recovery_wait_ticks as f64 / self.completed as f64,
            );
            out.gauge(
                "mean_service_ticks",
                self.service_ticks as f64 / self.completed as f64,
            );
        }
    }
}

/// The requester side of a MoF link.
#[derive(Debug)]
pub struct MofEndpoint {
    next_seq: u32,
    pending: HashMap<u32, Pending>,
    flow: CreditFlow,
    timeout_ticks: u64,
    max_retries: u32,
    stats: EndpointStats,
    tracer: Option<(Tracer, u32)>,
    /// Latest timestamp this endpoint has seen (the session layer has no
    /// clock of its own; `deliver` stamps completion spans with it).
    last_now: u64,
}

impl MofEndpoint {
    /// Creates an endpoint with `credits` in-flight packages, a
    /// retransmit `timeout_ticks`, and `max_retries` per package.
    ///
    /// # Panics
    ///
    /// Panics if `credits` or `timeout_ticks` is zero.
    pub fn new(credits: u32, timeout_ticks: u64, max_retries: u32) -> Self {
        assert!(timeout_ticks > 0, "timeout must be non-zero");
        MofEndpoint {
            next_seq: 0,
            pending: HashMap::new(),
            flow: CreditFlow::new(credits),
            timeout_ticks,
            max_retries,
            stats: EndpointStats::default(),
            tracer: None,
            last_now: 0,
        }
    }

    /// Attaches a tracer: package lifecycles become `mof`-category spans
    /// and retransmit/abandon decisions become instants, on thread `tid`
    /// of the MoF process track.
    pub fn set_tracer(&mut self, tracer: Tracer, tid: u32) {
        tracer.name_process(pids::MOF, "mof-endpoint");
        self.tracer = Some((tracer, tid));
    }

    /// Submits a batch of reads (≤64, one package). Returns the wire
    /// frame to transmit, or `None` when out of credits (caller retries
    /// after responses drain).
    ///
    /// # Errors
    ///
    /// Propagates frame-construction errors (empty/oversized batches).
    pub fn submit_read(
        &mut self,
        now: u64,
        base_address: u64,
        offsets: &[u32],
        request_bytes: u16,
    ) -> Result<Option<Vec<u8>>, MofError> {
        if offsets.len() > MAX_REQUESTS_PER_PACKAGE {
            return Err(MofError::TooManyRequests(offsets.len()));
        }
        if !self.flow.try_send() {
            return Ok(None);
        }
        self.last_now = self.last_now.max(now);
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let pkg = ReadRequestPackage::new(seq, base_address, offsets, request_bytes)?;
        let wire = pkg.encode();
        self.pending.insert(
            seq,
            Pending {
                pkg,
                sent_at: now,
                first_sent: now,
                retries: 0,
            },
        );
        self.stats.transmissions += 1;
        Ok(Some(wire))
    }

    /// Delivers a response frame; returns the completed request package
    /// and its response when it matches a pending sequence.
    ///
    /// # Errors
    ///
    /// Propagates decode errors (CRC, truncation).
    pub fn deliver(
        &mut self,
        bytes: &[u8],
    ) -> Result<Option<(ReadRequestPackage, ReadResponsePackage)>, MofError> {
        let resp = ReadResponsePackage::decode(bytes)?;
        match self.pending.remove(&resp.seq) {
            Some(p) => {
                self.flow.return_credit();
                self.stats.completed += 1;
                // Split the package's lifetime at its last transmission:
                // everything before is loss recovery (timeouts waiting
                // for retransmits), everything after is the flight the
                // responder actually answered.
                self.stats.recovery_wait_ticks += p.sent_at.saturating_sub(p.first_sent);
                self.stats.service_ticks += self.last_now.max(p.sent_at) - p.sent_at;
                if let Some((tracer, tid)) = &self.tracer {
                    let ts = ticks_to_us(p.first_sent);
                    let end = ticks_to_us(self.last_now.max(p.first_sent));
                    tracer.span_args(
                        "mof",
                        "package",
                        pids::MOF,
                        *tid,
                        ts,
                        end - ts,
                        &[
                            ("seq", resp.seq as f64),
                            ("requests", p.pkg.request_count() as f64),
                            ("retries", p.retries as f64),
                        ],
                    );
                }
                Ok(Some((p.pkg, resp)))
            }
            None => {
                self.stats.orphans += 1;
                Ok(None)
            }
        }
    }

    /// Advances time: returns re-encoded frames for every timed-out
    /// pending package (go-back on loss). Packages beyond `max_retries`
    /// are abandoned and their credit reclaimed.
    pub fn poll_timeouts(&mut self, now: u64) -> Vec<Vec<u8>> {
        self.last_now = self.last_now.max(now);
        let mut resend = Vec::new();
        let mut abandoned = Vec::new();
        for (&seq, p) in self.pending.iter_mut() {
            if now.saturating_sub(p.sent_at) >= self.timeout_ticks {
                if p.retries >= self.max_retries {
                    abandoned.push(seq);
                } else {
                    p.retries += 1;
                    p.sent_at = now;
                    self.stats.transmissions += 1;
                    self.stats.retransmissions += 1;
                    if let Some((tracer, tid)) = &self.tracer {
                        tracer.instant("mof", "retransmit", pids::MOF, *tid, ticks_to_us(now));
                    }
                    resend.push(p.pkg.encode());
                }
            }
        }
        for seq in abandoned {
            self.pending.remove(&seq);
            self.flow.return_credit();
            if let Some((tracer, tid)) = &self.tracer {
                tracer.instant("mof", "abandon", pids::MOF, *tid, ticks_to_us(now));
            }
        }
        resend
    }

    /// Packages awaiting responses.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Endpoint statistics.
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A perfect responder echoing each request's addresses as 8-byte
    /// data.
    fn respond(frame: &[u8]) -> Vec<u8> {
        let req = ReadRequestPackage::decode(frame).expect("valid request");
        let mut data = Vec::new();
        for i in 0..req.request_count() {
            data.extend_from_slice(&req.address(i).to_le_bytes());
        }
        ReadResponsePackage::new(req.seq, 8, data).unwrap().encode()
    }

    #[test]
    fn round_trip_matches_request_to_response() {
        let mut ep = MofEndpoint::new(4, 100, 3);
        let frame = ep
            .submit_read(0, 0x1000, &[0, 8, 16], 8)
            .unwrap()
            .expect("credit available");
        assert_eq!(ep.outstanding(), 1);
        let resp = respond(&frame);
        let (req, rsp) = ep.deliver(&resp).unwrap().expect("matched");
        assert_eq!(req.request_count(), 3);
        assert_eq!(rsp.response(1), 0x1008u64.to_le_bytes());
        assert_eq!(ep.outstanding(), 0);
        assert_eq!(ep.stats().completed, 1);
    }

    #[test]
    fn credits_gate_submissions() {
        let mut ep = MofEndpoint::new(2, 100, 3);
        assert!(ep.submit_read(0, 0, &[0], 8).unwrap().is_some());
        assert!(ep.submit_read(0, 0, &[0], 8).unwrap().is_some());
        assert!(ep.submit_read(0, 0, &[0], 8).unwrap().is_none());
        // Draining one response frees a credit.
        let frame = ep.submit_read(0, 64, &[0], 8).unwrap(); // still none
        assert!(frame.is_none());
    }

    #[test]
    fn timeouts_retransmit_then_abandon() {
        let mut ep = MofEndpoint::new(2, 10, 2);
        ep.submit_read(0, 0x2000, &[0, 8], 8).unwrap().unwrap();
        // First timeout: retransmit.
        let r1 = ep.poll_timeouts(10);
        assert_eq!(r1.len(), 1);
        assert_eq!(ep.stats().retransmissions, 1);
        // Identical frame content on retransmit.
        let again = ReadRequestPackage::decode(&r1[0]).unwrap();
        assert_eq!(again.base_address, 0x2000);
        // Second timeout: retransmit again (retries = 2 = max).
        let r2 = ep.poll_timeouts(20);
        assert_eq!(r2.len(), 1);
        // Third: abandoned, credit reclaimed.
        let r3 = ep.poll_timeouts(30);
        assert!(r3.is_empty());
        assert_eq!(ep.outstanding(), 0);
        assert!(ep.submit_read(31, 0, &[0], 8).unwrap().is_some());
    }

    #[test]
    fn late_duplicates_are_orphaned_not_crashed() {
        let mut ep = MofEndpoint::new(2, 100, 3);
        let f = ep.submit_read(0, 0, &[0], 8).unwrap().unwrap();
        let resp = respond(&f);
        assert!(ep.deliver(&resp).unwrap().is_some());
        // The same response again: orphan.
        assert!(ep.deliver(&resp).unwrap().is_none());
        assert_eq!(ep.stats().orphans, 1);
    }

    #[test]
    fn corrupted_response_is_an_error_not_a_match() {
        let mut ep = MofEndpoint::new(2, 100, 3);
        let f = ep.submit_read(0, 0, &[0], 8).unwrap().unwrap();
        let mut resp = respond(&f);
        resp[5] ^= 0xFF;
        assert!(ep.deliver(&resp).is_err());
        assert_eq!(ep.outstanding(), 1, "pending request survives");
    }

    #[test]
    fn lossy_link_end_to_end_with_recovery() {
        // Drop every 3rd transmission; everything still completes.
        let mut ep = MofEndpoint::new(8, 5, 10);
        let mut now = 0u64;
        let mut wire_count = 0u64;
        let mut completed = 0;
        let mut submitted = 0;
        let mut inbox: Vec<Vec<u8>> = Vec::new();
        while completed < 20 {
            now += 1;
            if submitted < 20 {
                if let Some(f) = ep
                    .submit_read(now, submitted as u64 * 4096, &[0, 8, 16, 24], 8)
                    .unwrap()
                {
                    wire_count += 1;
                    if !wire_count.is_multiple_of(3) {
                        inbox.push(respond(&f));
                    }
                    submitted += 1;
                }
            }
            for f in ep.poll_timeouts(now) {
                wire_count += 1;
                if !wire_count.is_multiple_of(3) {
                    inbox.push(respond(&f));
                }
            }
            for resp in inbox.drain(..) {
                if ep.deliver(&resp).unwrap().is_some() {
                    completed += 1;
                }
            }
            assert!(now < 10_000, "no forward progress");
        }
        assert_eq!(ep.stats().completed, 20);
        assert!(ep.stats().retransmissions > 0);
    }

    #[test]
    fn tracer_records_package_lifecycle_and_retransmits() {
        let tracer = Tracer::new();
        let mut ep = MofEndpoint::new(4, 10, 3);
        ep.set_tracer(tracer.clone(), 0);
        let f = ep.submit_read(0, 0x1000, &[0, 8], 8).unwrap().unwrap();
        // Time out once, then deliver.
        let resent = ep.poll_timeouts(10);
        assert_eq!(resent.len(), 1);
        assert!(ep.deliver(&respond(&f)).unwrap().is_some());
        let events = tracer.events();
        let span = events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "package")
            .expect("package span");
        assert_eq!(span.cat, "mof");
        assert!(span.args.iter().any(|(k, v)| k == "retries" && *v == 1.0));
        assert!(events.iter().any(|e| e.ph == 'i' && e.name == "retransmit"));
    }

    #[test]
    fn latency_split_charges_recovery_and_service_separately() {
        let mut ep = MofEndpoint::new(4, 10, 3);
        let f = ep.submit_read(0, 0x40, &[0, 8], 8).unwrap().unwrap();
        // One timeout at tick 10: everything before the retransmission is
        // loss recovery; the answered flight then takes 4 more ticks.
        assert_eq!(ep.poll_timeouts(10).len(), 1);
        assert!(ep.poll_timeouts(14).is_empty());
        assert!(ep.deliver(&respond(&f)).unwrap().is_some());
        let s = ep.stats();
        assert_eq!(s.recovery_wait_ticks, 10);
        assert_eq!(s.service_ticks, 4);
    }

    #[test]
    fn stats_register_as_metric_source() {
        let mut ep = MofEndpoint::new(4, 10, 3);
        let f = ep.submit_read(0, 0, &[0], 8).unwrap().unwrap();
        ep.poll_timeouts(10);
        ep.deliver(&respond(&f)).unwrap();
        let mut reg = lsdgnn_telemetry::Registry::new();
        reg.register("mof/endpoint", &[("link", "0")], Box::new(ep.stats()));
        let snap = reg.snapshot();
        use lsdgnn_telemetry::MetricValue;
        assert_eq!(
            snap.get("mof/endpoint/transmissions"),
            Some(&MetricValue::Counter(2))
        );
        assert_eq!(
            snap.get("mof/endpoint/retransmissions"),
            Some(&MetricValue::Counter(1))
        );
        assert_eq!(
            snap.get("mof/endpoint/retransmit_rate"),
            Some(&MetricValue::Gauge(0.5))
        );
    }
}
