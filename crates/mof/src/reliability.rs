//! Link-level reliability: sequence numbers + go-back-N retransmission.
//!
//! MoF "provides data-link capability with high reliability without much
//! software overhead" (§4.3): hardware sequencing and CRC with go-back-N
//! recovery instead of a kernel TCP stack. This module simulates that layer
//! against a deterministic loss pattern to show in-order exactly-once
//! delivery — and, since the chaos work, against a *bounded* recovery
//! budget: a frame that keeps being dropped is eventually abandoned
//! (mirroring [`crate::MofEndpoint`]'s abandon instant) instead of
//! livelocking the link.

use std::collections::VecDeque;

/// Outcome of pushing one frame through the lossy link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// Frame arrived and was accepted in order.
    Delivered,
    /// Frame was dropped by the link (will be retransmitted).
    Dropped,
    /// Frame arrived but was out of the expected sequence and discarded
    /// (go-back-N receivers only accept in-order frames).
    OutOfOrder,
}

/// The channel gave up on its head frame after exhausting the retry
/// budget; undelivered frames remain in the pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelAbandoned {
    /// Sequence number of the frame that exhausted its budget.
    pub seq: u64,
    /// Drops suffered by that frame alone.
    pub retries: u64,
    /// Frames still undelivered (including the abandoned head).
    pub undelivered: usize,
}

impl std::fmt::Display for ChannelAbandoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame {} abandoned after {} retries ({} frames undelivered)",
            self.seq, self.retries, self.undelivered
        )
    }
}

impl std::error::Error for ChannelAbandoned {}

/// A reliable go-back-N sender/receiver pair over a lossy link.
///
/// `push(payload)` enqueues application frames; `run(loss)` drives
/// transmission with `loss(seq)` deciding which transmissions the link
/// drops. Delivered payloads come out of `received()` in order.
///
/// # Example
///
/// ```
/// use lsdgnn_mof::ReliableChannel;
/// let mut ch = ReliableChannel::new(4);
/// for i in 0..10u32 {
///     ch.push(i);
/// }
/// // Drop every third transmission — delivery still exact and ordered.
/// let mut n = 0u32;
/// ch.run(|_| { n += 1; n % 3 == 0 });
/// assert_eq!(ch.received(), &(0..10).collect::<Vec<_>>()[..]);
/// ```
#[derive(Debug, Clone)]
pub struct ReliableChannel<T> {
    window: usize,
    pending: VecDeque<T>,
    received: Vec<T>,
    transmissions: u64,
    drops: u64,
    wasted_tail: u64,
    retransmissions: u64,
}

impl<T: Clone> ReliableChannel<T> {
    /// Creates a channel with the given go-back-N window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        ReliableChannel {
            window,
            pending: VecDeque::new(),
            received: Vec::new(),
            transmissions: 0,
            drops: 0,
            wasted_tail: 0,
            retransmissions: 0,
        }
    }

    /// Enqueues a frame for transmission.
    pub fn push(&mut self, payload: T) {
        self.pending.push_back(payload);
    }

    /// Drives the link until all pending frames are delivered, with an
    /// unbounded retry budget. `drop_fn` is called once per transmission
    /// attempt with the frame's sequence number; returning `true` drops
    /// that transmission.
    ///
    /// Go-back-N: when a frame in the window is dropped, the whole window
    /// from that frame onward is resent.
    ///
    /// A `drop_fn` that returns `true` forever will loop forever — use
    /// [`ReliableChannel::run_with_retries`] when the loss process is not
    /// known to let every frame through eventually.
    pub fn run<F: FnMut(u64) -> bool>(&mut self, drop_fn: F) {
        self.run_with_retries(drop_fn, u64::MAX)
            .expect("unbounded retry budget never abandons");
    }

    /// Like [`ReliableChannel::run`], but gives each frame at most
    /// `max_retries` retransmissions before the channel abandons it —
    /// the software mirror of the endpoint's abandon instant, and the
    /// guard against a livelock when the link stays black.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelAbandoned`] when the window's head frame is
    /// dropped more than `max_retries` times; the abandoned frame and
    /// everything behind it stay in the pending queue (visible through
    /// [`ReliableChannel::pending_frames`]) so the caller can fail over
    /// or reroute.
    pub fn run_with_retries<F: FnMut(u64) -> bool>(
        &mut self,
        mut drop_fn: F,
        max_retries: u64,
    ) -> Result<(), ChannelAbandoned> {
        let mut seq_base = self.received.len() as u64;
        // Consecutive drops of the current head frame; delivering the
        // head resets it. Only the head can starve: go-back-N always
        // retries from the first undelivered frame.
        let mut head_retries = 0u64;
        while !self.pending.is_empty() {
            let in_flight = self.window.min(self.pending.len());
            let mut delivered = 0usize;
            for i in 0..in_flight {
                self.transmissions += 1;
                if drop_fn(seq_base + i as u64) {
                    self.drops += 1;
                    // Everything after the drop is wasted (receiver
                    // discards out-of-order frames); count retransmits.
                    let wasted = (in_flight - i - 1) as u64;
                    self.transmissions += wasted;
                    self.wasted_tail += wasted;
                    self.retransmissions += (in_flight - i) as u64;
                    break;
                }
                delivered += 1;
            }
            for _ in 0..delivered {
                let frame = self.pending.pop_front().expect("delivered <= pending");
                self.received.push(frame);
            }
            seq_base += delivered as u64;
            if delivered == 0 {
                head_retries += 1;
                if head_retries > max_retries {
                    return Err(ChannelAbandoned {
                        seq: seq_base,
                        retries: head_retries,
                        undelivered: self.pending.len(),
                    });
                }
            } else {
                head_retries = 0;
            }
        }
        Ok(())
    }

    /// Frames delivered so far, in order.
    pub fn received(&self) -> &[T] {
        &self.received
    }

    /// Frames still awaiting delivery (non-empty only after an abandon).
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Total transmission attempts (including wasted window tails).
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Transmissions the link dropped.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Speculative window-tail transmissions wasted behind a drop (sent,
    /// but discarded out-of-order by the receiver).
    pub fn wasted_tail(&self) -> u64 {
        self.wasted_tail
    }

    /// Frames scheduled for retransmission.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Goodput efficiency: delivered / transmissions.
    pub fn efficiency(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.received.len() as f64 / self.transmissions as f64
        }
    }

    /// The go-back-N conservation law: every transmission either
    /// delivered a frame, was dropped by the link, or was a wasted
    /// window tail behind a drop. Exposed so tests (and debug asserts in
    /// callers) can pin the accounting.
    pub fn accounting_balances(&self) -> bool {
        self.transmissions == self.received.len() as u64 + self.drops + self.wasted_tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_link_is_perfectly_efficient() {
        let mut ch = ReliableChannel::new(8);
        for i in 0..100u32 {
            ch.push(i);
        }
        ch.run(|_| false);
        assert_eq!(ch.received().len(), 100);
        assert_eq!(ch.efficiency(), 1.0);
        assert_eq!(ch.drops(), 0);
        assert!(ch.accounting_balances());
    }

    #[test]
    fn delivery_survives_heavy_loss() {
        let mut ch = ReliableChannel::new(4);
        for i in 0..50u32 {
            ch.push(i);
        }
        let mut n = 0u32;
        ch.run(|_| {
            n += 1;
            n.is_multiple_of(2) // 50% transmission loss
        });
        assert_eq!(ch.received(), &(0..50).collect::<Vec<_>>()[..]);
        assert!(ch.efficiency() < 1.0);
        assert!(ch.drops() > 0);
    }

    #[test]
    fn ordering_is_preserved_under_bursty_loss() {
        let mut ch = ReliableChannel::new(8);
        for i in 0..30u32 {
            ch.push(i);
        }
        let mut n = 0u32;
        ch.run(|_| {
            n += 1;
            (10..14).contains(&n) // a burst of four drops
        });
        assert_eq!(ch.received(), &(0..30).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn larger_windows_amortize_but_waste_more_on_loss() {
        let run = |window: usize| {
            let mut ch = ReliableChannel::new(window);
            for i in 0..200u32 {
                ch.push(i);
            }
            let mut n = 0u32;
            ch.run(|_| {
                n += 1;
                n.is_multiple_of(10)
            });
            ch.transmissions()
        };
        // With loss, a huge window wastes more transmissions than a small
        // one (go-back-N discards the tail).
        assert!(run(32) > run(2));
    }

    #[test]
    fn transmission_accounting_cannot_drift() {
        // The invariant transmissions == delivered + drops + wasted_tail
        // must hold at every loss rate and window size.
        for window in [1usize, 2, 4, 8, 32] {
            for modulo in [2u32, 3, 5, 10] {
                let mut ch = ReliableChannel::new(window);
                for i in 0..150u32 {
                    ch.push(i);
                }
                let mut n = 0u32;
                ch.run(|_| {
                    n += 1;
                    n.is_multiple_of(modulo)
                });
                assert!(
                    ch.accounting_balances(),
                    "window {window} 1/{modulo} loss: {} != {} + {} + {}",
                    ch.transmissions(),
                    ch.received().len(),
                    ch.drops(),
                    ch.wasted_tail()
                );
            }
        }
    }

    #[test]
    fn black_link_abandons_instead_of_livelocking() {
        let mut ch = ReliableChannel::new(4);
        for i in 0..10u32 {
            ch.push(i);
        }
        let err = ch
            .run_with_retries(|_| true, 16)
            .expect_err("a 100%-loss link must abandon");
        assert_eq!(err.seq, 0, "the head frame starves first");
        assert_eq!(err.retries, 17, "budget exhausted one past max_retries");
        assert_eq!(err.undelivered, 10);
        assert_eq!(ch.pending_frames(), 10);
        assert!(ch.received().is_empty());
        assert!(ch.accounting_balances(), "abandon keeps the books straight");
    }

    #[test]
    fn mid_stream_blackout_reports_partial_delivery() {
        let mut ch = ReliableChannel::new(4);
        for i in 0..20u32 {
            ch.push(i);
        }
        // Healthy for 10 transmissions, then the link goes black.
        let mut n = 0u32;
        let err = ch
            .run_with_retries(
                |_| {
                    n += 1;
                    n > 10
                },
                8,
            )
            .expect_err("blackout must abandon");
        assert_eq!(ch.received(), &(0..10).collect::<Vec<_>>()[..]);
        assert_eq!(err.seq, 10);
        assert_eq!(err.undelivered, 10);
        assert!(ch.accounting_balances());
    }

    #[test]
    fn bounded_retries_still_recover_from_survivable_loss() {
        let mut ch = ReliableChannel::new(4);
        for i in 0..50u32 {
            ch.push(i);
        }
        let mut n = 0u32;
        ch.run_with_retries(
            |_| {
                n += 1;
                n.is_multiple_of(2)
            },
            64,
        )
        .expect("50% loss is survivable with a sane budget");
        assert_eq!(ch.received(), &(0..50).collect::<Vec<_>>()[..]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _: ReliableChannel<u8> = ReliableChannel::new(0);
    }
}
