//! Link-level reliability: sequence numbers + go-back-N retransmission.
//!
//! MoF "provides data-link capability with high reliability without much
//! software overhead" (§4.3): hardware sequencing and CRC with go-back-N
//! recovery instead of a kernel TCP stack. This module simulates that layer
//! against a deterministic loss pattern to show in-order exactly-once
//! delivery.

use std::collections::VecDeque;

/// Outcome of pushing one frame through the lossy link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// Frame arrived and was accepted in order.
    Delivered,
    /// Frame was dropped by the link (will be retransmitted).
    Dropped,
    /// Frame arrived but was out of the expected sequence and discarded
    /// (go-back-N receivers only accept in-order frames).
    OutOfOrder,
}

/// A reliable go-back-N sender/receiver pair over a lossy link.
///
/// `push(payload)` enqueues application frames; `run(loss)` drives
/// transmission with `loss(seq)` deciding which transmissions the link
/// drops. Delivered payloads come out of `received()` in order.
///
/// # Example
///
/// ```
/// use lsdgnn_mof::ReliableChannel;
/// let mut ch = ReliableChannel::new(4);
/// for i in 0..10u32 {
///     ch.push(i);
/// }
/// // Drop every third transmission — delivery still exact and ordered.
/// let mut n = 0u32;
/// ch.run(|_| { n += 1; n % 3 == 0 });
/// assert_eq!(ch.received(), &(0..10).collect::<Vec<_>>()[..]);
/// ```
#[derive(Debug, Clone)]
pub struct ReliableChannel<T> {
    window: usize,
    pending: VecDeque<T>,
    received: Vec<T>,
    transmissions: u64,
    drops: u64,
    retransmissions: u64,
}

impl<T: Clone> ReliableChannel<T> {
    /// Creates a channel with the given go-back-N window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        ReliableChannel {
            window,
            pending: VecDeque::new(),
            received: Vec::new(),
            transmissions: 0,
            drops: 0,
            retransmissions: 0,
        }
    }

    /// Enqueues a frame for transmission.
    pub fn push(&mut self, payload: T) {
        self.pending.push_back(payload);
    }

    /// Drives the link until all pending frames are delivered. `drop_fn`
    /// is called once per transmission attempt with the frame's sequence
    /// number; returning `true` drops that transmission.
    ///
    /// Go-back-N: when a frame in the window is dropped, the whole window
    /// from that frame onward is resent.
    pub fn run<F: FnMut(u64) -> bool>(&mut self, mut drop_fn: F) {
        let mut seq_base = self.received.len() as u64;
        while !self.pending.is_empty() {
            let in_flight = self.window.min(self.pending.len());
            let mut delivered = 0usize;
            for i in 0..in_flight {
                self.transmissions += 1;
                if i > 0 {
                    // Anything after the first frame this round is
                    // speculative under go-back-N.
                }
                if drop_fn(seq_base + i as u64) {
                    self.drops += 1;
                    // Everything after the drop is wasted (receiver
                    // discards out-of-order frames); count retransmits.
                    let wasted = in_flight - i - 1;
                    self.transmissions += wasted as u64;
                    self.retransmissions += (in_flight - i) as u64;
                    break;
                }
                delivered += 1;
            }
            for _ in 0..delivered {
                let frame = self.pending.pop_front().expect("delivered <= pending");
                self.received.push(frame);
            }
            seq_base += delivered as u64;
        }
    }

    /// Frames delivered so far, in order.
    pub fn received(&self) -> &[T] {
        &self.received
    }

    /// Total transmission attempts (including wasted window tails).
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Transmissions the link dropped.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Frames scheduled for retransmission.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Goodput efficiency: delivered / transmissions.
    pub fn efficiency(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.received.len() as f64 / self.transmissions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_link_is_perfectly_efficient() {
        let mut ch = ReliableChannel::new(8);
        for i in 0..100u32 {
            ch.push(i);
        }
        ch.run(|_| false);
        assert_eq!(ch.received().len(), 100);
        assert_eq!(ch.efficiency(), 1.0);
        assert_eq!(ch.drops(), 0);
    }

    #[test]
    fn delivery_survives_heavy_loss() {
        let mut ch = ReliableChannel::new(4);
        for i in 0..50u32 {
            ch.push(i);
        }
        let mut n = 0u32;
        ch.run(|_| {
            n += 1;
            n.is_multiple_of(2) // 50% transmission loss
        });
        assert_eq!(ch.received(), &(0..50).collect::<Vec<_>>()[..]);
        assert!(ch.efficiency() < 1.0);
        assert!(ch.drops() > 0);
    }

    #[test]
    fn ordering_is_preserved_under_bursty_loss() {
        let mut ch = ReliableChannel::new(8);
        for i in 0..30u32 {
            ch.push(i);
        }
        let mut n = 0u32;
        ch.run(|_| {
            n += 1;
            (10..14).contains(&n) // a burst of four drops
        });
        assert_eq!(ch.received(), &(0..30).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn larger_windows_amortize_but_waste_more_on_loss() {
        let run = |window: usize| {
            let mut ch = ReliableChannel::new(window);
            for i in 0..200u32 {
                ch.push(i);
            }
            let mut n = 0u32;
            ch.run(|_| {
                n += 1;
                n.is_multiple_of(10)
            });
            ch.transmissions()
        };
        // With loss, a huge window wastes more transmissions than a small
        // one (go-back-N discards the tail).
        assert!(run(32) > run(2));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _: ReliableChannel<u8> = ReliableChannel::new(0);
    }
}
