//! Credit-based flow control for the MoF link.
//!
//! The MoF receiver has bounded buffering (the AxE response FIFOs); the
//! sender may only transmit while it holds credits, and the receiver
//! returns a credit as each package drains. This is the standard
//! hardware data-link mechanism behind the paper's "high reliability
//! without much software overhead": no drops from buffer overrun, back-
//! pressure instead.

/// The sender side of a credit-managed link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditFlow {
    max_credits: u32,
    credits: u32,
    sent: u64,
    stalls: u64,
}

impl CreditFlow {
    /// Creates a flow with `max_credits` receiver buffer slots.
    ///
    /// # Panics
    ///
    /// Panics if `max_credits` is zero.
    pub fn new(max_credits: u32) -> Self {
        assert!(max_credits > 0, "need at least one credit");
        CreditFlow {
            max_credits,
            credits: max_credits,
            sent: 0,
            stalls: 0,
        }
    }

    /// Attempts to consume a credit for one package; `false` means the
    /// sender must stall.
    pub fn try_send(&mut self) -> bool {
        if self.credits == 0 {
            self.stalls += 1;
            return false;
        }
        self.credits -= 1;
        self.sent += 1;
        true
    }

    /// Receiver drained one package: return a credit.
    ///
    /// # Panics
    ///
    /// Panics on a credit overflow (protocol violation: more returns
    /// than sends).
    pub fn return_credit(&mut self) {
        assert!(
            self.credits < self.max_credits,
            "credit overflow: receiver returned more credits than it held"
        );
        self.credits += 1;
    }

    /// Credits currently available.
    pub fn available(&self) -> u32 {
        self.credits
    }

    /// Packages in flight (or sitting in the receiver buffer).
    pub fn in_flight(&self) -> u32 {
        self.max_credits - self.credits
    }

    /// Packages sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Send attempts refused for lack of credit.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

/// Simulates a producer/consumer pair where the producer generates
/// `packages` packages and the consumer drains one package every
/// `drain_period` producer attempts. Returns `(stalls, max_in_flight)` —
/// demonstrating that in-flight never exceeds the credit budget no
/// matter the rate mismatch.
pub fn simulate_producer_consumer(credits: u32, packages: u64, drain_period: u64) -> (u64, u32) {
    let mut flow = CreditFlow::new(credits);
    let mut produced = 0u64;
    let mut buffered = 0u32;
    let mut tick = 0u64;
    let mut max_in_flight = 0;
    while produced < packages {
        tick += 1;
        if flow.try_send() {
            produced += 1;
            buffered += 1;
        }
        max_in_flight = max_in_flight.max(flow.in_flight());
        if drain_period > 0 && tick.is_multiple_of(drain_period) && buffered > 0 {
            buffered -= 1;
            flow.return_credit();
        }
    }
    (flow.stalls(), max_in_flight)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_bound_in_flight() {
        let (_, max_in_flight) = simulate_producer_consumer(8, 1_000, 3);
        assert!(max_in_flight <= 8);
    }

    #[test]
    fn fast_consumer_never_stalls_sender() {
        let (stalls, _) = simulate_producer_consumer(4, 500, 1);
        assert_eq!(stalls, 0);
    }

    #[test]
    fn slow_consumer_back_pressures() {
        let (stalls, max_in_flight) = simulate_producer_consumer(4, 500, 5);
        assert!(stalls > 0, "rate mismatch must stall the producer");
        assert_eq!(max_in_flight, 4, "buffer saturates at the credit budget");
    }

    #[test]
    fn credit_accounting() {
        let mut f = CreditFlow::new(2);
        assert!(f.try_send());
        assert!(f.try_send());
        assert!(!f.try_send());
        assert_eq!(f.available(), 0);
        assert_eq!(f.in_flight(), 2);
        f.return_credit();
        assert!(f.try_send());
        assert_eq!(f.sent(), 3);
        assert_eq!(f.stalls(), 1);
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn over_returning_credits_panics() {
        CreditFlow::new(1).return_credit();
    }
}
