//! Memory-over-Fabric (MoF) protocol — the paper's customized lightweight
//! inter-FPGA interconnect (§4.3).
//!
//! Three pieces:
//!
//! * [`frame`] — the wire format: read-request packages carrying up to
//!   **64 requests per package** (Tech-1) as a shared 8-byte base address
//!   plus 4-byte per-request offsets, and read-response packages carrying
//!   the data back. Encode/decode round-trips through [`bytes`] buffers.
//! * [`packing`] — the byte-accounting model behind Table 5, comparing the
//!   MoF package format against a Gen-Z-style 4-requests-per-package
//!   format on header/address/data overhead and package count.
//! * [`bdi`] — Base-Delta-Immediate compression (Tech-2) applied to both
//!   response data and request addresses, reproducing the Table 6
//!   byte-count reductions.
//! * [`reliability`] — CRC-protected sequencing with go-back-N
//!   retransmission, the "data-link capability with high reliability
//!   without much software overhead".
//!
//! # Example
//!
//! ```
//! use lsdgnn_mof::frame::{ReadRequestPackage, MAX_REQUESTS_PER_PACKAGE};
//!
//! let base = 0x1000_0000;
//! let offsets: Vec<u32> = (0..64).map(|i| i * 16).collect();
//! let pkg = ReadRequestPackage::new(7, base, &offsets, 16).unwrap();
//! let bytes = pkg.encode();
//! let back = ReadRequestPackage::decode(&bytes).unwrap();
//! assert_eq!(back, pkg);
//! assert!(offsets.len() <= MAX_REQUESTS_PER_PACKAGE);
//! ```

pub mod bdi;
pub mod endpoint;
pub mod flow;
pub mod frame;
pub mod packing;
pub mod reliability;

pub use bdi::{
    bdi_block_bytes, bdi_compress, bdi_decompress, BdiStreamSizer, CompressedBlock, BDI_LINE_WORDS,
};
pub use endpoint::{EndpointStats, MofEndpoint};
pub use flow::CreditFlow;
pub use frame::{
    pack_read_requests, PackedRequests, ReadRequestPackage, ReadResponsePackage,
    WriteRequestPackage, CRC_BYTES, HEADER_BYTES, MAX_REQUESTS_PER_PACKAGE,
};
pub use packing::{ByteBreakdown, PackingScheme};
pub use reliability::{ChannelAbandoned, LinkOutcome, ReliableChannel};

/// Errors produced by MoF encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MofError {
    /// Package would exceed [`MAX_REQUESTS_PER_PACKAGE`] requests.
    TooManyRequests(usize),
    /// A package must carry at least one request.
    EmptyPackage,
    /// Byte buffer too short or malformed.
    Malformed(&'static str),
    /// CRC mismatch on decode.
    CrcMismatch,
}

impl std::fmt::Display for MofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MofError::TooManyRequests(n) => {
                write!(
                    f,
                    "package holds {n} requests, max {MAX_REQUESTS_PER_PACKAGE}"
                )
            }
            MofError::EmptyPackage => write!(f, "package must carry at least one request"),
            MofError::Malformed(what) => write!(f, "malformed package: {what}"),
            MofError::CrcMismatch => write!(f, "crc mismatch"),
        }
    }
}

impl std::error::Error for MofError {}
