//! MoF wire format: multi-request packages (§4.3 Tech-1).
//!
//! Layout (little-endian):
//!
//! ```text
//! ReadRequestPackage:
//!   u8  kind (=1)      u8 count-1        u16 request_bytes
//!   u32 seq            u64 base_address  [u32 offset; count]
//!   u32 crc
//! ReadResponsePackage:
//!   u8  kind (=2)      u8 count-1        u16 request_bytes
//!   u32 seq            [u8 data; count * request_bytes]
//!   u32 crc
//! ```
//!
//! The 16-byte header+base of a request package is amortized over up to 64
//! requests; each request costs only a 4-byte offset against the shared
//! base address — the packing that lifts small-read utilization from ~33 %
//! (Gen-Z style) to 78–94 % in Table 5.

use crate::MofError;
use bytes::{Buf, BufMut, BytesMut};

/// Requests a single MoF package can carry (Tech-1: "64 requests per
/// package").
pub const MAX_REQUESTS_PER_PACKAGE: usize = 64;

/// Fixed header bytes of either package kind (kind, count, request size,
/// sequence number).
pub const HEADER_BYTES: u64 = 8;
/// Trailing CRC bytes.
pub const CRC_BYTES: u64 = 4;

const KIND_READ_REQUEST: u8 = 1;
const KIND_READ_RESPONSE: u8 = 2;
const KIND_WRITE_REQUEST: u8 = 3;

/// CRC-32 (IEEE, bitwise implementation — this is a simulator, not a NIC).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A read-request package: up to 64 same-size reads sharing one base
/// address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRequestPackage {
    /// Link-level sequence number.
    pub seq: u32,
    /// Shared base address.
    pub base_address: u64,
    /// Per-request byte offsets from `base_address`.
    pub offsets: Vec<u32>,
    /// Bytes to read per request.
    pub request_bytes: u16,
}

impl ReadRequestPackage {
    /// Builds a package.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::TooManyRequests`] beyond 64 requests and
    /// [`MofError::EmptyPackage`] for zero.
    pub fn new(
        seq: u32,
        base_address: u64,
        offsets: &[u32],
        request_bytes: u16,
    ) -> Result<Self, MofError> {
        if offsets.is_empty() {
            return Err(MofError::EmptyPackage);
        }
        if offsets.len() > MAX_REQUESTS_PER_PACKAGE {
            return Err(MofError::TooManyRequests(offsets.len()));
        }
        Ok(ReadRequestPackage {
            seq,
            base_address,
            offsets: offsets.to_vec(),
            request_bytes,
        })
    }

    /// Number of reads carried.
    pub fn request_count(&self) -> usize {
        self.offsets.len()
    }

    /// Encoded size in bytes: header + base + offsets + CRC.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + 8 + 4 * self.offsets.len() as u64 + CRC_BYTES
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.wire_bytes() as usize);
        buf.put_u8(KIND_READ_REQUEST);
        buf.put_u8((self.offsets.len() - 1) as u8);
        buf.put_u16_le(self.request_bytes);
        buf.put_u32_le(self.seq);
        buf.put_u64_le(self.base_address);
        for &o in &self.offsets {
            buf.put_u32_le(o);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.to_vec()
    }

    /// Parses wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::Malformed`] on truncated/invalid input and
    /// [`MofError::CrcMismatch`] on a bad checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, MofError> {
        if bytes.len() < (HEADER_BYTES + 8 + 4 + CRC_BYTES) as usize {
            return Err(MofError::Malformed("truncated request package"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != want {
            return Err(MofError::CrcMismatch);
        }
        let mut buf = body;
        let kind = buf.get_u8();
        if kind != KIND_READ_REQUEST {
            return Err(MofError::Malformed("wrong kind for request package"));
        }
        let count = buf.get_u8() as usize + 1;
        let request_bytes = buf.get_u16_le();
        let seq = buf.get_u32_le();
        let base_address = buf.get_u64_le();
        if buf.remaining() != count * 4 {
            return Err(MofError::Malformed("offset array length mismatch"));
        }
        let offsets = (0..count).map(|_| buf.get_u32_le()).collect();
        Ok(ReadRequestPackage {
            seq,
            base_address,
            offsets,
            request_bytes,
        })
    }

    /// Absolute address of request `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn address(&self, i: usize) -> u64 {
        self.base_address + self.offsets[i] as u64
    }
}

/// A read-response package: the data for every request of one request
/// package, in request order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResponsePackage {
    /// Echoes the request's sequence number.
    pub seq: u32,
    /// Bytes per request.
    pub request_bytes: u16,
    /// Concatenated response data, `count * request_bytes` long.
    pub data: Vec<u8>,
}

impl ReadResponsePackage {
    /// Builds a response for `count` requests of `request_bytes` each.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::Malformed`] if `data` length is not a non-zero
    /// multiple of `request_bytes`, or carries more than 64 requests.
    pub fn new(seq: u32, request_bytes: u16, data: Vec<u8>) -> Result<Self, MofError> {
        if request_bytes == 0
            || data.is_empty()
            || !data.len().is_multiple_of(request_bytes as usize)
        {
            return Err(MofError::Malformed("data not a multiple of request size"));
        }
        let count = data.len() / request_bytes as usize;
        if count > MAX_REQUESTS_PER_PACKAGE {
            return Err(MofError::TooManyRequests(count));
        }
        Ok(ReadResponsePackage {
            seq,
            request_bytes,
            data,
        })
    }

    /// Number of responses carried.
    pub fn request_count(&self) -> usize {
        self.data.len() / self.request_bytes as usize
    }

    /// Encoded size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + self.data.len() as u64 + CRC_BYTES
    }

    /// Data slice of response `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn response(&self, i: usize) -> &[u8] {
        let sz = self.request_bytes as usize;
        &self.data[i * sz..(i + 1) * sz]
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.wire_bytes() as usize);
        buf.put_u8(KIND_READ_RESPONSE);
        buf.put_u8((self.request_count() - 1) as u8);
        buf.put_u16_le(self.request_bytes);
        buf.put_u32_le(self.seq);
        buf.put_slice(&self.data);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.to_vec()
    }

    /// Parses wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::Malformed`] on truncated/invalid input and
    /// [`MofError::CrcMismatch`] on a bad checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, MofError> {
        if bytes.len() < (HEADER_BYTES + 1 + CRC_BYTES) as usize {
            return Err(MofError::Malformed("truncated response package"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != want {
            return Err(MofError::CrcMismatch);
        }
        let mut buf = body;
        let kind = buf.get_u8();
        if kind != KIND_READ_RESPONSE {
            return Err(MofError::Malformed("wrong kind for response package"));
        }
        let count = buf.get_u8() as usize + 1;
        let request_bytes = buf.get_u16_le();
        let seq = buf.get_u32_le();
        if buf.remaining() != count * request_bytes as usize {
            return Err(MofError::Malformed("data length mismatch"));
        }
        let data = buf.chunk().to_vec();
        Ok(ReadResponsePackage {
            seq,
            request_bytes,
            data,
        })
    }
}

/// A write-request package: up to 64 same-size writes sharing one base
/// address, each carrying its payload inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRequestPackage {
    /// Link-level sequence number.
    pub seq: u32,
    /// Shared base address.
    pub base_address: u64,
    /// Per-request byte offsets from `base_address`.
    pub offsets: Vec<u32>,
    /// Bytes per write.
    pub request_bytes: u16,
    /// Concatenated write payloads, `offsets.len() * request_bytes` long.
    pub data: Vec<u8>,
}

impl WriteRequestPackage {
    /// Builds a write package.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::TooManyRequests`] beyond 64 requests,
    /// [`MofError::EmptyPackage`] for zero, and [`MofError::Malformed`]
    /// if the payload length disagrees with the offsets.
    pub fn new(
        seq: u32,
        base_address: u64,
        offsets: &[u32],
        request_bytes: u16,
        data: Vec<u8>,
    ) -> Result<Self, MofError> {
        if offsets.is_empty() {
            return Err(MofError::EmptyPackage);
        }
        if offsets.len() > MAX_REQUESTS_PER_PACKAGE {
            return Err(MofError::TooManyRequests(offsets.len()));
        }
        if data.len() != offsets.len() * request_bytes as usize || request_bytes == 0 {
            return Err(MofError::Malformed("write payload length mismatch"));
        }
        Ok(WriteRequestPackage {
            seq,
            base_address,
            offsets: offsets.to_vec(),
            request_bytes,
            data,
        })
    }

    /// Number of writes carried.
    pub fn request_count(&self) -> usize {
        self.offsets.len()
    }

    /// Payload slice of write `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn payload(&self, i: usize) -> &[u8] {
        let sz = self.request_bytes as usize;
        &self.data[i * sz..(i + 1) * sz]
    }

    /// Absolute address of write `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn address(&self, i: usize) -> u64 {
        self.base_address + self.offsets[i] as u64
    }

    /// Encoded size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + 8 + 4 * self.offsets.len() as u64 + self.data.len() as u64 + CRC_BYTES
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.wire_bytes() as usize);
        buf.put_u8(KIND_WRITE_REQUEST);
        buf.put_u8((self.offsets.len() - 1) as u8);
        buf.put_u16_le(self.request_bytes);
        buf.put_u32_le(self.seq);
        buf.put_u64_le(self.base_address);
        for &o in &self.offsets {
            buf.put_u32_le(o);
        }
        buf.put_slice(&self.data);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.to_vec()
    }

    /// Parses wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::Malformed`] on truncated/invalid input and
    /// [`MofError::CrcMismatch`] on a bad checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, MofError> {
        if bytes.len() < (HEADER_BYTES + 8 + 4 + 1 + CRC_BYTES) as usize {
            return Err(MofError::Malformed("truncated write package"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != want {
            return Err(MofError::CrcMismatch);
        }
        let mut buf = body;
        let kind = buf.get_u8();
        if kind != KIND_WRITE_REQUEST {
            return Err(MofError::Malformed("wrong kind for write package"));
        }
        let count = buf.get_u8() as usize + 1;
        let request_bytes = buf.get_u16_le();
        let seq = buf.get_u32_le();
        let base_address = buf.get_u64_le();
        if buf.remaining() != count * 4 + count * request_bytes as usize {
            return Err(MofError::Malformed("write body length mismatch"));
        }
        let offsets: Vec<u32> = (0..count).map(|_| buf.get_u32_le()).collect();
        let data = buf.chunk().to_vec();
        Ok(WriteRequestPackage {
            seq,
            base_address,
            offsets,
            request_bytes,
            data,
        })
    }
}

/// The outcome of packing an address stream into request packages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedRequests {
    /// The packages, in stream order.
    pub packages: Vec<ReadRequestPackage>,
    /// Total requests packed (sum of per-package counts).
    pub requests: u64,
    /// Packages closed early because the next address could not be
    /// expressed as a 4-byte offset from the open package's base —
    /// base + offset overflow splits, as opposed to plain 64-request
    /// capacity splits.
    pub overflow_splits: u64,
}

impl PackedRequests {
    /// Total wire bytes of every package.
    pub fn wire_bytes(&self) -> u64 {
        self.packages.iter().map(|p| p.wire_bytes()).sum()
    }

    /// Mean requests per package relative to the 64-request capacity —
    /// the Table 5 utilization figure for this stream.
    pub fn occupancy(&self) -> f64 {
        if self.packages.is_empty() {
            return 0.0;
        }
        self.requests as f64 / (self.packages.len() * MAX_REQUESTS_PER_PACKAGE) as f64
    }
}

/// Packs an arrival-ordered address stream into [`ReadRequestPackage`]s
/// greedily: each package keeps the *minimum* address seen so far as its
/// base (rebasing earlier offsets when a smaller address arrives), adds
/// requests while the package's address span fits a 4-byte offset, and
/// splits — rather than erroring — when the span would overflow or the
/// 64-request capacity is reached. Never fails: any address stream packs
/// into some sequence of valid packages.
///
/// Sequence numbers count up from `first_seq`.
pub fn pack_read_requests(addresses: &[u64], request_bytes: u16, first_seq: u32) -> PackedRequests {
    let mut packages = Vec::new();
    let mut overflow_splits = 0u64;
    let mut seq = first_seq;
    // The open package: base (current minimum address) + offsets from it.
    let mut base = 0u64;
    let mut max_addr = 0u64;
    let mut offsets: Vec<u32> = Vec::new();
    let mut close = |base: u64, offsets: &mut Vec<u32>, packages: &mut Vec<ReadRequestPackage>| {
        if !offsets.is_empty() {
            let pkg = ReadRequestPackage::new(seq, base, offsets, request_bytes)
                .expect("packer maintains the package invariants");
            seq = seq.wrapping_add(1);
            packages.push(pkg);
            offsets.clear();
        }
    };
    for &addr in addresses {
        if offsets.is_empty() {
            base = addr;
            max_addr = addr;
            offsets.push(0);
            continue;
        }
        let new_base = base.min(addr);
        let new_max = max_addr.max(addr);
        if new_max - new_base > u32::MAX as u64 {
            overflow_splits += 1;
            close(base, &mut offsets, &mut packages);
            base = addr;
            max_addr = addr;
            offsets.push(0);
            continue;
        }
        if new_base < base {
            // Rebase: shift every recorded offset up to the new minimum.
            let shift = (base - new_base) as u32;
            for o in offsets.iter_mut() {
                *o += shift;
            }
            base = new_base;
        }
        max_addr = new_max;
        offsets.push((addr - base) as u32);
        if offsets.len() == MAX_REQUESTS_PER_PACKAGE {
            close(base, &mut offsets, &mut packages);
        }
    }
    close(base, &mut offsets, &mut packages);
    PackedRequests {
        packages,
        requests: addresses.len() as u64,
        overflow_splits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let offsets: Vec<u32> = (0..64u32).map(|i| i * 8).collect();
        let p = ReadRequestPackage::new(3, 0xDEAD_0000, &offsets, 8).unwrap();
        let bytes = p.encode();
        assert_eq!(bytes.len() as u64, p.wire_bytes());
        assert_eq!(ReadRequestPackage::decode(&bytes).unwrap(), p);
        assert_eq!(p.address(2), 0xDEAD_0000 + 16);
    }

    #[test]
    fn response_round_trips() {
        let data: Vec<u8> = (0..128).collect();
        let p = ReadResponsePackage::new(9, 16, data).unwrap();
        assert_eq!(p.request_count(), 8);
        assert_eq!(p.response(1), &(16..32).collect::<Vec<u8>>()[..]);
        let bytes = p.encode();
        assert_eq!(ReadResponsePackage::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn corruption_is_detected() {
        let p = ReadRequestPackage::new(1, 100, &[0, 8, 16], 8).unwrap();
        let mut bytes = p.encode();
        bytes[10] ^= 0xFF;
        assert_eq!(
            ReadRequestPackage::decode(&bytes),
            Err(MofError::CrcMismatch)
        );
    }

    #[test]
    fn limits_enforced() {
        let too_many: Vec<u32> = (0..65).collect();
        assert_eq!(
            ReadRequestPackage::new(0, 0, &too_many, 8),
            Err(MofError::TooManyRequests(65))
        );
        assert_eq!(
            ReadRequestPackage::new(0, 0, &[], 8),
            Err(MofError::EmptyPackage)
        );
        assert!(ReadResponsePackage::new(0, 8, vec![1, 2, 3]).is_err());
    }

    #[test]
    fn header_amortization_is_real() {
        // 64 packed 16-byte reads: request package overhead per request is
        // ~4.4 bytes, versus >= 20 bytes unpacked (header+addr per read).
        let offsets: Vec<u32> = (0..64u32).map(|i| i * 16).collect();
        let p = ReadRequestPackage::new(0, 0, &offsets, 16).unwrap();
        let per_request = p.wire_bytes() as f64 / 64.0;
        assert!(per_request < 6.0, "per-request overhead {per_request}");
    }

    #[test]
    fn truncated_buffers_rejected() {
        assert!(ReadRequestPackage::decode(&[1, 2, 3]).is_err());
        assert!(ReadResponsePackage::decode(&[2]).is_err());
    }

    #[test]
    fn write_round_trips_and_addresses() {
        let offsets = [0u32, 16, 32];
        let data: Vec<u8> = (0..48).collect();
        let w = WriteRequestPackage::new(5, 0x9000, &offsets, 16, data).unwrap();
        assert_eq!(w.request_count(), 3);
        assert_eq!(w.address(2), 0x9020);
        assert_eq!(w.payload(1), &(16..32).collect::<Vec<u8>>()[..]);
        let bytes = w.encode();
        assert_eq!(bytes.len() as u64, w.wire_bytes());
        assert_eq!(WriteRequestPackage::decode(&bytes).unwrap(), w);
        // Corruption detected.
        let mut bad = bytes.clone();
        bad[20] ^= 0x55;
        assert_eq!(
            WriteRequestPackage::decode(&bad),
            Err(MofError::CrcMismatch)
        );
    }

    #[test]
    fn write_payload_length_enforced() {
        assert_eq!(
            WriteRequestPackage::new(0, 0, &[0, 8], 8, vec![0; 15]),
            Err(MofError::Malformed("write payload length mismatch"))
        );
        assert_eq!(
            WriteRequestPackage::new(0, 0, &[], 8, vec![]),
            Err(MofError::EmptyPackage)
        );
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn pack_span_at_exactly_offset_range_stays_whole() {
        // max - min == u32::MAX is representable: one package.
        let packed = pack_read_requests(&[0, 500, u32::MAX as u64], 8, 0);
        assert_eq!(packed.packages.len(), 1);
        assert_eq!(packed.overflow_splits, 0);
        assert_eq!(packed.packages[0].base_address, 0);
        assert_eq!(packed.packages[0].offsets, vec![0, 500, u32::MAX]);
    }

    #[test]
    fn pack_span_one_past_offset_range_splits() {
        // One byte beyond the 4-byte offset range must split, not error.
        let packed = pack_read_requests(&[0, u32::MAX as u64 + 1], 8, 7);
        assert_eq!(packed.packages.len(), 2);
        assert_eq!(packed.overflow_splits, 1);
        assert_eq!(packed.packages[0].seq, 7);
        assert_eq!(packed.packages[1].seq, 8);
        assert_eq!(packed.packages[1].base_address, u32::MAX as u64 + 1);
        assert_eq!(packed.requests, 2);
        for (i, &addr) in [0u64, u32::MAX as u64 + 1].iter().enumerate() {
            assert_eq!(packed.packages[i].address(0), addr);
        }
    }

    #[test]
    fn pack_rebases_when_a_smaller_address_arrives() {
        // Arrival order is not address order: the base shifts down and
        // existing offsets shift up, as long as the span still fits.
        let packed = pack_read_requests(&[1000, 4000, 200], 8, 0);
        assert_eq!(packed.packages.len(), 1);
        let p = &packed.packages[0];
        assert_eq!(p.base_address, 200);
        assert_eq!(p.offsets, vec![800, 3800, 0]);
        for (i, &addr) in [1000u64, 4000, 200].iter().enumerate() {
            assert_eq!(p.address(i), addr);
        }
    }

    #[test]
    fn pack_capacity_split_is_not_an_overflow_split() {
        let addrs: Vec<u64> = (0..65).map(|i| i * 8).collect();
        let packed = pack_read_requests(&addrs, 8, 0);
        assert_eq!(packed.packages.len(), 2);
        assert_eq!(packed.overflow_splits, 0);
        assert_eq!(packed.packages[0].request_count(), 64);
        assert_eq!(packed.packages[1].request_count(), 1);
        assert!((packed.occupancy() - 65.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn pack_empty_stream_yields_no_packages() {
        let packed = pack_read_requests(&[], 8, 0);
        assert!(packed.packages.is_empty());
        assert_eq!(packed.wire_bytes(), 0);
        assert_eq!(packed.occupancy(), 0.0);
    }

    #[test]
    fn packed_packages_encode_and_decode() {
        let addrs: Vec<u64> = (0..100).map(|i| 0xAA00_0000 + i * 72).collect();
        let packed = pack_read_requests(&addrs, 64, 3);
        let mut recovered = Vec::new();
        for p in &packed.packages {
            let rt = ReadRequestPackage::decode(&p.encode()).unwrap();
            for i in 0..rt.request_count() {
                recovered.push(rt.address(i));
            }
        }
        assert_eq!(recovered, addrs);
    }
}
