//! MoF wire format: multi-request packages (§4.3 Tech-1).
//!
//! Layout (little-endian):
//!
//! ```text
//! ReadRequestPackage:
//!   u8  kind (=1)      u8 count-1        u16 request_bytes
//!   u32 seq            u64 base_address  [u32 offset; count]
//!   u32 crc
//! ReadResponsePackage:
//!   u8  kind (=2)      u8 count-1        u16 request_bytes
//!   u32 seq            [u8 data; count * request_bytes]
//!   u32 crc
//! ```
//!
//! The 16-byte header+base of a request package is amortized over up to 64
//! requests; each request costs only a 4-byte offset against the shared
//! base address — the packing that lifts small-read utilization from ~33 %
//! (Gen-Z style) to 78–94 % in Table 5.

use crate::MofError;
use bytes::{Buf, BufMut, BytesMut};

/// Requests a single MoF package can carry (Tech-1: "64 requests per
/// package").
pub const MAX_REQUESTS_PER_PACKAGE: usize = 64;

/// Fixed header bytes of either package kind (kind, count, request size,
/// sequence number).
pub const HEADER_BYTES: u64 = 8;
/// Trailing CRC bytes.
pub const CRC_BYTES: u64 = 4;

const KIND_READ_REQUEST: u8 = 1;
const KIND_READ_RESPONSE: u8 = 2;
const KIND_WRITE_REQUEST: u8 = 3;

/// CRC-32 (IEEE, bitwise implementation — this is a simulator, not a NIC).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A read-request package: up to 64 same-size reads sharing one base
/// address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRequestPackage {
    /// Link-level sequence number.
    pub seq: u32,
    /// Shared base address.
    pub base_address: u64,
    /// Per-request byte offsets from `base_address`.
    pub offsets: Vec<u32>,
    /// Bytes to read per request.
    pub request_bytes: u16,
}

impl ReadRequestPackage {
    /// Builds a package.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::TooManyRequests`] beyond 64 requests and
    /// [`MofError::EmptyPackage`] for zero.
    pub fn new(
        seq: u32,
        base_address: u64,
        offsets: &[u32],
        request_bytes: u16,
    ) -> Result<Self, MofError> {
        if offsets.is_empty() {
            return Err(MofError::EmptyPackage);
        }
        if offsets.len() > MAX_REQUESTS_PER_PACKAGE {
            return Err(MofError::TooManyRequests(offsets.len()));
        }
        Ok(ReadRequestPackage {
            seq,
            base_address,
            offsets: offsets.to_vec(),
            request_bytes,
        })
    }

    /// Number of reads carried.
    pub fn request_count(&self) -> usize {
        self.offsets.len()
    }

    /// Encoded size in bytes: header + base + offsets + CRC.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + 8 + 4 * self.offsets.len() as u64 + CRC_BYTES
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.wire_bytes() as usize);
        buf.put_u8(KIND_READ_REQUEST);
        buf.put_u8((self.offsets.len() - 1) as u8);
        buf.put_u16_le(self.request_bytes);
        buf.put_u32_le(self.seq);
        buf.put_u64_le(self.base_address);
        for &o in &self.offsets {
            buf.put_u32_le(o);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.to_vec()
    }

    /// Parses wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::Malformed`] on truncated/invalid input and
    /// [`MofError::CrcMismatch`] on a bad checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, MofError> {
        if bytes.len() < (HEADER_BYTES + 8 + 4 + CRC_BYTES) as usize {
            return Err(MofError::Malformed("truncated request package"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != want {
            return Err(MofError::CrcMismatch);
        }
        let mut buf = body;
        let kind = buf.get_u8();
        if kind != KIND_READ_REQUEST {
            return Err(MofError::Malformed("wrong kind for request package"));
        }
        let count = buf.get_u8() as usize + 1;
        let request_bytes = buf.get_u16_le();
        let seq = buf.get_u32_le();
        let base_address = buf.get_u64_le();
        if buf.remaining() != count * 4 {
            return Err(MofError::Malformed("offset array length mismatch"));
        }
        let offsets = (0..count).map(|_| buf.get_u32_le()).collect();
        Ok(ReadRequestPackage {
            seq,
            base_address,
            offsets,
            request_bytes,
        })
    }

    /// Absolute address of request `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn address(&self, i: usize) -> u64 {
        self.base_address + self.offsets[i] as u64
    }
}

/// A read-response package: the data for every request of one request
/// package, in request order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResponsePackage {
    /// Echoes the request's sequence number.
    pub seq: u32,
    /// Bytes per request.
    pub request_bytes: u16,
    /// Concatenated response data, `count * request_bytes` long.
    pub data: Vec<u8>,
}

impl ReadResponsePackage {
    /// Builds a response for `count` requests of `request_bytes` each.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::Malformed`] if `data` length is not a non-zero
    /// multiple of `request_bytes`, or carries more than 64 requests.
    pub fn new(seq: u32, request_bytes: u16, data: Vec<u8>) -> Result<Self, MofError> {
        if request_bytes == 0
            || data.is_empty()
            || !data.len().is_multiple_of(request_bytes as usize)
        {
            return Err(MofError::Malformed("data not a multiple of request size"));
        }
        let count = data.len() / request_bytes as usize;
        if count > MAX_REQUESTS_PER_PACKAGE {
            return Err(MofError::TooManyRequests(count));
        }
        Ok(ReadResponsePackage {
            seq,
            request_bytes,
            data,
        })
    }

    /// Number of responses carried.
    pub fn request_count(&self) -> usize {
        self.data.len() / self.request_bytes as usize
    }

    /// Encoded size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + self.data.len() as u64 + CRC_BYTES
    }

    /// Data slice of response `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn response(&self, i: usize) -> &[u8] {
        let sz = self.request_bytes as usize;
        &self.data[i * sz..(i + 1) * sz]
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.wire_bytes() as usize);
        buf.put_u8(KIND_READ_RESPONSE);
        buf.put_u8((self.request_count() - 1) as u8);
        buf.put_u16_le(self.request_bytes);
        buf.put_u32_le(self.seq);
        buf.put_slice(&self.data);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.to_vec()
    }

    /// Parses wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::Malformed`] on truncated/invalid input and
    /// [`MofError::CrcMismatch`] on a bad checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, MofError> {
        if bytes.len() < (HEADER_BYTES + 1 + CRC_BYTES) as usize {
            return Err(MofError::Malformed("truncated response package"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != want {
            return Err(MofError::CrcMismatch);
        }
        let mut buf = body;
        let kind = buf.get_u8();
        if kind != KIND_READ_RESPONSE {
            return Err(MofError::Malformed("wrong kind for response package"));
        }
        let count = buf.get_u8() as usize + 1;
        let request_bytes = buf.get_u16_le();
        let seq = buf.get_u32_le();
        if buf.remaining() != count * request_bytes as usize {
            return Err(MofError::Malformed("data length mismatch"));
        }
        let data = buf.chunk().to_vec();
        Ok(ReadResponsePackage {
            seq,
            request_bytes,
            data,
        })
    }
}

/// A write-request package: up to 64 same-size writes sharing one base
/// address, each carrying its payload inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRequestPackage {
    /// Link-level sequence number.
    pub seq: u32,
    /// Shared base address.
    pub base_address: u64,
    /// Per-request byte offsets from `base_address`.
    pub offsets: Vec<u32>,
    /// Bytes per write.
    pub request_bytes: u16,
    /// Concatenated write payloads, `offsets.len() * request_bytes` long.
    pub data: Vec<u8>,
}

impl WriteRequestPackage {
    /// Builds a write package.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::TooManyRequests`] beyond 64 requests,
    /// [`MofError::EmptyPackage`] for zero, and [`MofError::Malformed`]
    /// if the payload length disagrees with the offsets.
    pub fn new(
        seq: u32,
        base_address: u64,
        offsets: &[u32],
        request_bytes: u16,
        data: Vec<u8>,
    ) -> Result<Self, MofError> {
        if offsets.is_empty() {
            return Err(MofError::EmptyPackage);
        }
        if offsets.len() > MAX_REQUESTS_PER_PACKAGE {
            return Err(MofError::TooManyRequests(offsets.len()));
        }
        if data.len() != offsets.len() * request_bytes as usize || request_bytes == 0 {
            return Err(MofError::Malformed("write payload length mismatch"));
        }
        Ok(WriteRequestPackage {
            seq,
            base_address,
            offsets: offsets.to_vec(),
            request_bytes,
            data,
        })
    }

    /// Number of writes carried.
    pub fn request_count(&self) -> usize {
        self.offsets.len()
    }

    /// Payload slice of write `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn payload(&self, i: usize) -> &[u8] {
        let sz = self.request_bytes as usize;
        &self.data[i * sz..(i + 1) * sz]
    }

    /// Absolute address of write `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn address(&self, i: usize) -> u64 {
        self.base_address + self.offsets[i] as u64
    }

    /// Encoded size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + 8 + 4 * self.offsets.len() as u64 + self.data.len() as u64 + CRC_BYTES
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.wire_bytes() as usize);
        buf.put_u8(KIND_WRITE_REQUEST);
        buf.put_u8((self.offsets.len() - 1) as u8);
        buf.put_u16_le(self.request_bytes);
        buf.put_u32_le(self.seq);
        buf.put_u64_le(self.base_address);
        for &o in &self.offsets {
            buf.put_u32_le(o);
        }
        buf.put_slice(&self.data);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf.to_vec()
    }

    /// Parses wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MofError::Malformed`] on truncated/invalid input and
    /// [`MofError::CrcMismatch`] on a bad checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, MofError> {
        if bytes.len() < (HEADER_BYTES + 8 + 4 + 1 + CRC_BYTES) as usize {
            return Err(MofError::Malformed("truncated write package"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != want {
            return Err(MofError::CrcMismatch);
        }
        let mut buf = body;
        let kind = buf.get_u8();
        if kind != KIND_WRITE_REQUEST {
            return Err(MofError::Malformed("wrong kind for write package"));
        }
        let count = buf.get_u8() as usize + 1;
        let request_bytes = buf.get_u16_le();
        let seq = buf.get_u32_le();
        let base_address = buf.get_u64_le();
        if buf.remaining() != count * 4 + count * request_bytes as usize {
            return Err(MofError::Malformed("write body length mismatch"));
        }
        let offsets: Vec<u32> = (0..count).map(|_| buf.get_u32_le()).collect();
        let data = buf.chunk().to_vec();
        Ok(WriteRequestPackage {
            seq,
            base_address,
            offsets,
            request_bytes,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let offsets: Vec<u32> = (0..64u32).map(|i| i * 8).collect();
        let p = ReadRequestPackage::new(3, 0xDEAD_0000, &offsets, 8).unwrap();
        let bytes = p.encode();
        assert_eq!(bytes.len() as u64, p.wire_bytes());
        assert_eq!(ReadRequestPackage::decode(&bytes).unwrap(), p);
        assert_eq!(p.address(2), 0xDEAD_0000 + 16);
    }

    #[test]
    fn response_round_trips() {
        let data: Vec<u8> = (0..128).collect();
        let p = ReadResponsePackage::new(9, 16, data).unwrap();
        assert_eq!(p.request_count(), 8);
        assert_eq!(p.response(1), &(16..32).collect::<Vec<u8>>()[..]);
        let bytes = p.encode();
        assert_eq!(ReadResponsePackage::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn corruption_is_detected() {
        let p = ReadRequestPackage::new(1, 100, &[0, 8, 16], 8).unwrap();
        let mut bytes = p.encode();
        bytes[10] ^= 0xFF;
        assert_eq!(
            ReadRequestPackage::decode(&bytes),
            Err(MofError::CrcMismatch)
        );
    }

    #[test]
    fn limits_enforced() {
        let too_many: Vec<u32> = (0..65).collect();
        assert_eq!(
            ReadRequestPackage::new(0, 0, &too_many, 8),
            Err(MofError::TooManyRequests(65))
        );
        assert_eq!(
            ReadRequestPackage::new(0, 0, &[], 8),
            Err(MofError::EmptyPackage)
        );
        assert!(ReadResponsePackage::new(0, 8, vec![1, 2, 3]).is_err());
    }

    #[test]
    fn header_amortization_is_real() {
        // 64 packed 16-byte reads: request package overhead per request is
        // ~4.4 bytes, versus >= 20 bytes unpacked (header+addr per read).
        let offsets: Vec<u32> = (0..64u32).map(|i| i * 16).collect();
        let p = ReadRequestPackage::new(0, 0, &offsets, 16).unwrap();
        let per_request = p.wire_bytes() as f64 / 64.0;
        assert!(per_request < 6.0, "per-request overhead {per_request}");
    }

    #[test]
    fn truncated_buffers_rejected() {
        assert!(ReadRequestPackage::decode(&[1, 2, 3]).is_err());
        assert!(ReadResponsePackage::decode(&[2]).is_err());
    }

    #[test]
    fn write_round_trips_and_addresses() {
        let offsets = [0u32, 16, 32];
        let data: Vec<u8> = (0..48).collect();
        let w = WriteRequestPackage::new(5, 0x9000, &offsets, 16, data).unwrap();
        assert_eq!(w.request_count(), 3);
        assert_eq!(w.address(2), 0x9020);
        assert_eq!(w.payload(1), &(16..32).collect::<Vec<u8>>()[..]);
        let bytes = w.encode();
        assert_eq!(bytes.len() as u64, w.wire_bytes());
        assert_eq!(WriteRequestPackage::decode(&bytes).unwrap(), w);
        // Corruption detected.
        let mut bad = bytes.clone();
        bad[20] ^= 0x55;
        assert_eq!(
            WriteRequestPackage::decode(&bad),
            Err(MofError::CrcMismatch)
        );
    }

    #[test]
    fn write_payload_length_enforced() {
        assert_eq!(
            WriteRequestPackage::new(0, 0, &[0, 8], 8, vec![0; 15]),
            Err(MofError::Malformed("write payload length mismatch"))
        );
        assert_eq!(
            WriteRequestPackage::new(0, 0, &[], 8, vec![]),
            Err(MofError::EmptyPackage)
        );
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
