//! Formatting helpers for the table/figure printers.

/// Prints a header banner for one experiment.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("==== {id}: {caption} ====");
}

/// Formats a float with engineering-style suffixes (K/M/G).
pub fn eng(v: f64) -> String {
    let (scaled, suffix) = if v.abs() >= 1e9 {
        (v / 1e9, "G")
    } else if v.abs() >= 1e6 {
        (v / 1e6, "M")
    } else if v.abs() >= 1e3 {
        (v / 1e3, "K")
    } else {
        (v, "")
    };
    format!("{scaled:.2}{suffix}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Prints one row of left-aligned cells at the given widths.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:<w$} ", w = w));
    }
    println!("{}", line.trim_end());
}
