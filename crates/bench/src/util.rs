//! Formatting helpers, the captured-output sink, the `--jobs` worker
//! pool primitives and the telemetry context shared by every experiment
//! printer.
//!
//! # Output discipline
//!
//! Experiments never call `println!` directly: they print through
//! [`outln!`] (and [`banner`]/[`Table`], which route through it). On the
//! main thread that is a plain `println!`; inside [`capture`] the lines
//! land in a thread-local buffer instead, so a worker thread can run a
//! whole experiment and hand its output back as one string. `main`
//! prints those buffers in selection order, which makes `--jobs N`
//! output byte-identical to the serial run regardless of completion
//! order.

use lsdgnn_core::telemetry::{MetricValue, Registry, Snapshot, TraceEvent, Tracer};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

thread_local! {
    /// Capture buffer for the current thread; `None` = print directly.
    static SINK: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Writes one line to the active sink (capture buffer or stdout). Use
/// through [`outln!`].
pub fn emit_line(line: std::fmt::Arguments) {
    SINK.with(|s| match &mut *s.borrow_mut() {
        Some(buf) => {
            use std::fmt::Write;
            writeln!(buf, "{line}").expect("write to capture buffer");
        }
        None => println!("{line}"),
    })
}

/// `println!` replacement for experiment code: prints to stdout on the
/// main thread, into the capture buffer inside [`capture`].
macro_rules! outln {
    () => { $crate::util::emit_line(format_args!("")) };
    ($($arg:tt)*) => { $crate::util::emit_line(format_args!($($arg)*)) };
}
pub(crate) use outln;

/// Runs `f` with output captured; returns its result and everything it
/// printed through [`outln!`].
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, String) {
    SINK.with(|s| *s.borrow_mut() = Some(String::new()));
    let r = f();
    let out = SINK
        .with(|s| s.borrow_mut().take())
        .expect("capture sink installed above");
    (r, out)
}

/// Worker count for `--jobs` / `LSDGNN_JOBS`, set once by `main`.
static JOBS: OnceLock<usize> = OnceLock::new();

/// Records the requested worker count (first call wins; later calls are
/// ignored, which only matters to tests driving `main` logic twice).
pub fn set_jobs(n: usize) {
    let _ = JOBS.set(n.max(1));
}

/// The worker count experiments should fan out to (1 = serial).
pub fn jobs() -> usize {
    *JOBS.get().unwrap_or(&1)
}

/// Maps `f` over `items` on up to [`jobs`] scoped worker threads,
/// returning results in item order. With one job (or one item) it runs
/// inline. `f` must not print — compute in `par_map`, then print from
/// the ordered results — because worker threads have no capture sink.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = work.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot lock")
                    .take()
                    .expect("each index is claimed once");
                let r = f(item);
                *slots[i].lock().expect("result slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot lock")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Prints a header banner for one experiment.
pub fn banner(id: &str, caption: &str) {
    outln!();
    outln!("==== {id}: {caption} ====");
}

/// Formats a float with engineering-style suffixes (K/M/G).
pub fn eng(v: f64) -> String {
    let (scaled, suffix) = if v.abs() >= 1e9 {
        (v / 1e9, "G")
    } else if v.abs() >= 1e6 {
        (v / 1e6, "M")
    } else if v.abs() >= 1e3 {
        (v / 1e3, "K")
    } else {
        (v, "")
    };
    format!("{scaled:.2}{suffix}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Fixed-width table printer: owns the column widths, prints the header
/// row on construction, then left-aligned data rows and trailing notes.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Starts a table by printing its header row.
    pub fn new(headers: &[&str], widths: &[usize]) -> Table {
        assert_eq!(headers.len(), widths.len(), "one width per column");
        let t = Table {
            widths: widths.to_vec(),
        };
        t.row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
        t
    }

    /// Prints one row of left-aligned cells.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{c:<w$} ", w = w));
        }
        outln!("{}", line.trim_end());
    }

    /// Prints a parenthesized footnote tying the table to the paper.
    pub fn note(&self, msg: &str) {
        outln!("({msg})");
    }
}

/// Renders one metric value for table cells: counters as integers,
/// gauges at full precision, histograms as their p50/p99 summary.
pub fn metric_cell(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(c) => c.to_string(),
        MetricValue::Gauge(g) => format!("{g:.4}"),
        MetricValue::Histogram(h) => {
            format!("n={} p50={:.0} p99={:.0}", h.count, h.p50, h.p99)
        }
    }
}

/// Prints a whole telemetry snapshot as a (metric, labels, value) table.
pub fn snapshot_table(snap: &Snapshot) {
    let t = Table::new(&["metric", "labels", "value"], &[36, 24, 24]);
    for m in snap.metrics() {
        let labels = m
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        t.row(&[m.name.clone(), labels, metric_cell(&m.value)]);
    }
}

/// The per-experiment telemetry context: a metrics registry the
/// experiment registers sources into, plus an optional tracer that
/// exists only when tracing was requested (so untraced runs pay
/// nothing). Each worker gets its own `Telemetry`; [`into_parts`]
/// (called on the worker thread, where the registered sources live)
/// reduces it to plain `Send` data the scheduler merges in selection
/// order.
///
/// [`into_parts`]: Telemetry::into_parts
pub struct Telemetry {
    pub registry: Registry,
    tracer: Option<Tracer>,
}

impl Telemetry {
    pub fn worker(tracing: bool) -> Telemetry {
        Telemetry {
            registry: Registry::new(),
            tracer: tracing.then(Tracer::new),
        }
    }

    /// Tracer handle for experiments that support span recording; `None`
    /// when no `--trace-out` path was given.
    pub fn tracer(&self) -> Option<Tracer> {
        self.tracer.clone()
    }

    /// Collapses the context into its snapshot and trace events.
    pub fn into_parts(self) -> (Snapshot, Vec<TraceEvent>) {
        let snap = self.registry.snapshot();
        let events = self.tracer.map(|t| t.events()).unwrap_or_default();
        (snap, events)
    }
}

/// The main-thread side: accumulates per-experiment snapshots and trace
/// events in selection order and writes the requested output files.
pub struct TelemetrySink {
    merged: Snapshot,
    tracer: Option<Tracer>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

impl TelemetrySink {
    pub fn new(metrics_out: Option<String>, trace_out: Option<String>) -> TelemetrySink {
        TelemetrySink {
            merged: Snapshot::new(),
            tracer: trace_out.as_ref().map(|_| Tracer::new()),
            metrics_out,
            trace_out,
        }
    }

    /// Whether experiments should record traces.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Folds one experiment's results in. Call in selection order — the
    /// merged snapshot (and therefore `--metrics-out`) preserves it.
    pub fn absorb(&mut self, snapshot: Snapshot, events: Vec<TraceEvent>) {
        self.merged.extend(snapshot);
        if let Some(tracer) = &self.tracer {
            tracer.absorb(events);
        }
    }

    /// Writes the metrics snapshot and Chrome trace to their requested
    /// paths. Called once by `main` after the selected experiments ran.
    /// Without `--metrics-out`, registered metrics are printed instead
    /// of silently discarded.
    pub fn finish(&self) {
        if let Some(path) = &self.metrics_out {
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).expect("create metrics dir");
                }
            }
            std::fs::write(path, self.merged.to_json()).expect("write metrics snapshot");
            outln!("wrote {} metrics to {path}", self.merged.len());
        } else if !self.merged.is_empty() {
            banner(
                "Telemetry",
                "registered metrics (pass --metrics-out to export JSON)",
            );
            snapshot_table(&self.merged);
        }
        if let (Some(path), Some(tracer)) = (&self.trace_out, &self.tracer) {
            tracer
                .write_json(std::path::Path::new(path))
                .expect("write chrome trace");
            outln!(
                "wrote {} trace events to {path} (open in Perfetto / chrome://tracing)",
                tracer.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_buffers_and_restores_direct_printing() {
        let ((), out) = capture(|| {
            outln!("line {}", 1);
            banner("X", "caption");
        });
        assert_eq!(out, "line 1\n\n==== X: caption ====\n");
        // After capture the sink is gone; emit_line falls back to stdout
        // (nothing to assert beyond not panicking).
        outln!("direct");
    }

    #[test]
    fn par_map_preserves_item_order() {
        // jobs() may be 1 here (OnceLock unset) — order must hold either
        // way, and with multiple workers the scheduler still fills slots
        // by index.
        set_jobs(4);
        let out = par_map((0..100).collect::<Vec<u64>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn telemetry_parts_merge_in_absorb_order() {
        let mut a = Telemetry::worker(false);
        a.registry.register(
            "a",
            &[],
            Box::new(|s: &mut lsdgnn_core::telemetry::Scope| s.counter("n", 1)),
        );
        let mut b = Telemetry::worker(false);
        b.registry.register(
            "b",
            &[],
            Box::new(|s: &mut lsdgnn_core::telemetry::Scope| s.counter("n", 2)),
        );
        let mut sink = TelemetrySink::new(None, None);
        let (sa, ea) = a.into_parts();
        let (sb, eb) = b.into_parts();
        sink.absorb(sa, ea);
        sink.absorb(sb, eb);
        let names: Vec<&str> = sink
            .merged
            .metrics()
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(names, ["a/n", "b/n"]);
    }
}
