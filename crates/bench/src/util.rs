//! Formatting helpers and the telemetry context shared by every
//! experiment printer.

use lsdgnn_core::telemetry::{MetricValue, Registry, Snapshot, Tracer};

/// Prints a header banner for one experiment.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("==== {id}: {caption} ====");
}

/// Formats a float with engineering-style suffixes (K/M/G).
pub fn eng(v: f64) -> String {
    let (scaled, suffix) = if v.abs() >= 1e9 {
        (v / 1e9, "G")
    } else if v.abs() >= 1e6 {
        (v / 1e6, "M")
    } else if v.abs() >= 1e3 {
        (v / 1e3, "K")
    } else {
        (v, "")
    };
    format!("{scaled:.2}{suffix}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Fixed-width table printer: owns the column widths, prints the header
/// row on construction, then left-aligned data rows and trailing notes.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Starts a table by printing its header row.
    pub fn new(headers: &[&str], widths: &[usize]) -> Table {
        assert_eq!(headers.len(), widths.len(), "one width per column");
        let t = Table {
            widths: widths.to_vec(),
        };
        t.row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
        t
    }

    /// Prints one row of left-aligned cells.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{c:<w$} ", w = w));
        }
        println!("{}", line.trim_end());
    }

    /// Prints a parenthesized footnote tying the table to the paper.
    pub fn note(&self, msg: &str) {
        println!("({msg})");
    }
}

/// Renders one metric value for table cells: counters as integers,
/// gauges at full precision, histograms as their p50/p99 summary.
pub fn metric_cell(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(c) => c.to_string(),
        MetricValue::Gauge(g) => format!("{g:.4}"),
        MetricValue::Histogram(h) => {
            format!("n={} p50={:.0} p99={:.0}", h.count, h.p50, h.p99)
        }
    }
}

/// Prints a whole telemetry snapshot as a (metric, labels, value) table.
pub fn snapshot_table(snap: &Snapshot) {
    let t = Table::new(&["metric", "labels", "value"], &[36, 24, 24]);
    for m in snap.metrics() {
        let labels = m
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        t.row(&[m.name.clone(), labels, metric_cell(&m.value)]);
    }
}

/// The per-invocation telemetry context: a metrics registry every
/// experiment can register sources into, plus an optional tracer that
/// exists only when `--trace-out` was requested (so untraced runs pay
/// nothing). `finish` writes both files under the requested paths.
pub struct Telemetry {
    pub registry: Registry,
    tracer: Option<Tracer>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

impl Telemetry {
    pub fn new(metrics_out: Option<String>, trace_out: Option<String>) -> Telemetry {
        Telemetry {
            registry: Registry::new(),
            tracer: trace_out.as_ref().map(|_| Tracer::new()),
            metrics_out,
            trace_out,
        }
    }

    /// Tracer handle for experiments that support span recording; `None`
    /// when no `--trace-out` path was given.
    pub fn tracer(&self) -> Option<Tracer> {
        self.tracer.clone()
    }

    /// Writes the metrics snapshot and Chrome trace to their requested
    /// paths. Called once by `main` after the selected experiments ran.
    /// Without `--metrics-out`, registered metrics are printed instead
    /// of silently discarded.
    pub fn finish(&self) {
        if let Some(path) = &self.metrics_out {
            let snap = self.registry.snapshot();
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).expect("create metrics dir");
                }
            }
            std::fs::write(path, snap.to_json()).expect("write metrics snapshot");
            println!("wrote {} metrics to {path}", snap.len());
        } else if !self.registry.is_empty() {
            banner(
                "Telemetry",
                "registered metrics (pass --metrics-out to export JSON)",
            );
            snapshot_table(&self.registry.snapshot());
        }
        if let (Some(path), Some(tracer)) = (&self.trace_out, &self.tracer) {
            tracer
                .write_json(std::path::Path::new(path))
                .expect("write chrome trace");
            println!(
                "wrote {} trace events to {path} (open in Perfetto / chrome://tracing)",
                tracer.len()
            );
        }
    }
}
