//! `bench dataplane` — before/after microbenchmark of the flat-buffer
//! serving data plane.
//!
//! Two arms over the same partitioned cluster workload:
//!
//! * **legacy** — `CpuBackend::new_legacy`: nested `Vec<Vec<NodeId>>`
//!   frontiers, one allocation per neighbor list, every partition —
//!   local included — reached over its channel.
//! * **flat** — `CpuBackend::new`: [`SampleBlock`] flat buffers, per-hop
//!   request coalescing, pooled arenas, zero-copy CSR reads on the
//!   worker-local shard.
//!
//! Both arms are measured on the batched 2-hop service-level workload
//! (requests through a [`SamplingService`]) and on the raw one-hop
//! `fetch_neighbors` inner loop (direct backend calls). Samples are
//! byte-identical across arms — the run folds every block digest and
//! writes `digests_match` next to the speedups in
//! `BENCH_dataplane.json`, along with the flat arm's coalescing hit rate
//! and buffer-pool reuse rate.

use crate::util::outln;
use lsdgnn_core::framework::{
    CpuBackend, RequestStats, SampleRequest, SamplingBackend, SamplingService, ServiceConfig,
};
use lsdgnn_core::graph::{generators, AttributeStore, CsrGraph, NodeId, PartitionedGraph};
use lsdgnn_core::telemetry::Json;
use std::time::Instant;

/// Server partitions; partition 0 is the worker-local (zero-copy) shard.
pub(crate) const PARTITIONS: u32 = 2;
pub(crate) const HOPS: u32 = 2;
pub(crate) const FANOUT: usize = 10;
/// Roots per service request: hop-2 frontiers of ~640 entries, with the
/// hub repetition coalescing exists for.
pub(crate) const ROOTS_PER_REQ: u64 = 64;
/// Size of the hot head that popular traffic concentrates on.
pub(crate) const HOT_SET: u64 = 256;
/// Feature width in floats — sized like a real GNN embedding table row
/// (256 B/node), so attribute movement is a first-class cost the way the
/// paper's GetAttribute stage is.
pub(crate) const ATTR_LEN: usize = 64;
/// Roots per inner-loop call (one big single-hop frontier fetch).
const INNER_ROOTS: u64 = 512;

const SERVICE_REQUESTS: u64 = 512;
const QUICK_SERVICE_REQUESTS: u64 = 64;
const INNER_ITERS: u64 = 256;
const QUICK_INNER_ITERS: u64 = 32;

pub(crate) fn graph(quick: bool) -> (CsrGraph, AttributeStore) {
    let n = if quick { 20_000 } else { 100_000 };
    (
        generators::power_law(n, 48, 91),
        AttributeStore::synthetic(n, ATTR_LEN, 91),
    )
}

/// Partition placement both arms serve from: the hot head lives on the
/// worker-local shard (the paper co-locates hot vertices with the
/// accelerator), the tail is hash-spread across every shard exactly as
/// the default map does. The legacy arm runs over the *same* placement —
/// it just cannot exploit it, because its wire format channels every
/// lookup, local or not.
pub(crate) fn placement(g: &CsrGraph, a: &AttributeStore) -> PartitionedGraph {
    let assignment: Vec<u32> = (0..g.num_nodes())
        .map(|v| {
            if v < HOT_SET {
                0
            } else {
                let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (h >> 32) as u32 % PARTITIONS
            }
        })
        .collect();
    PartitionedGraph::with_assignment(g.clone(), assignment).with_attributes(a.clone())
}

/// Draws a popularity-skewed root: serving traffic follows a zipf-like
/// distribution, and the generator's preferential attachment makes the
/// low node ids the hubs, so cubing a uniform draw concentrates roots
/// on hot, high-degree vertices — the workload coalescing exists for.
pub(crate) fn skewed_root(seed: u64, i: u64, nodes: u64) -> NodeId {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // 80% of traffic lands on the hot head (top ids = the hubs under
    // preferential attachment); the tail is uniform.
    if x % 10 < 8 {
        NodeId((x >> 32) % HOT_SET.min(nodes))
    } else {
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        NodeId((nodes as f64 * u * u * u) as u64 % nodes)
    }
}

pub(crate) fn request(seed: u64, nodes: u64, roots: u64) -> SampleRequest {
    SampleRequest {
        roots: (0..roots).map(|i| skewed_root(seed, i, nodes)).collect(),
        hops: HOPS,
        fanout: FANOUT,
        seed,
    }
}

/// Order-stable fold of per-request block digests: equal streams of
/// samples produce equal fingerprints.
pub(crate) fn fold(digest: u64, block_digest: u64) -> u64 {
    digest.wrapping_mul(0x0000_0100_0000_01b3) ^ block_digest
}

/// Requests per arm whose sample digests are folded (untimed) to pin
/// the two arms to byte-identical results.
const VERIFY_REQUESTS: u64 = 64;

/// Serves `requests` batched 2-hop requests through a service over
/// `backend` and returns (requests/sec, folded digest, backend stats).
/// Digest folding runs in a separate untimed pass so the timed window
/// measures serving, not fingerprinting. The timed pass repeats three
/// times and the best run counts — the bench box is a shared machine,
/// and the before/after claim is about the data plane, not about who
/// else had the core that second.
fn service_arm(
    backend: Box<dyn SamplingBackend>,
    requests: u64,
    nodes: u64,
) -> (f64, u64, RequestStats) {
    // One worker shard: the single-core bench box makes extra workers
    // pure scheduler noise. Both arms serve the identical config.
    let cfg = ServiceConfig {
        workers: 1,
        queue_capacity: 128,
        max_batch: 32,
        ..ServiceConfig::default()
    };
    let svc = SamplingService::start(backend, cfg);
    // Warm caches, pools and thread pools outside the timed window.
    for s in 0..8 {
        let block = svc.sample_block(request(1 << 32 | s, nodes, ROOTS_PER_REQ));
        svc.backend().recycle(block);
    }
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for s in 0..VERIFY_REQUESTS.min(requests) {
        let block = svc.sample_block(request(s, nodes, ROOTS_PER_REQ));
        digest = fold(digest, block.digest());
        svc.backend().recycle(block);
    }
    // Sliding window: keep the queue full so the batcher always has a
    // whole batch to coalesce, with no drain bubble between waves.
    let window = 64u64;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let mut tickets = std::collections::VecDeque::new();
        let mut submitted = 0u64;
        while submitted < requests.min(window) {
            tickets.push_back(svc.submit(request(submitted, nodes, ROOTS_PER_REQ)));
            submitted += 1;
        }
        while let Some(t) = tickets.pop_front() {
            svc.backend().recycle(t.wait_block());
            if submitted < requests {
                tickets.push_back(svc.submit(request(submitted, nodes, ROOTS_PER_REQ)));
                submitted += 1;
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    let stats = svc.stats().backend;
    svc.shutdown();
    (requests as f64 / best, digest, stats)
}

/// Runs the raw one-hop frontier-fetch loop directly against `backend`
/// and returns (calls/sec, folded digest).
fn inner_arm(backend: &CpuBackend, iters: u64, nodes: u64) -> (f64, u64) {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for s in 0..VERIFY_REQUESTS.min(iters) {
        let block = backend.sample_block(&SampleRequest {
            hops: 1,
            ..request(s, nodes, INNER_ROOTS)
        });
        digest = fold(digest, block.digest());
        backend.recycle(block);
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for s in 0..iters {
            backend.recycle(backend.sample_block(&SampleRequest {
                hops: 1,
                ..request(s, nodes, INNER_ROOTS)
            }));
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (iters as f64 / best, digest)
}

/// Runs both arms of both workloads and writes `BENCH_dataplane.json`.
pub fn dataplane(quick: bool) {
    let (requests, iters) = if quick {
        (QUICK_SERVICE_REQUESTS, QUICK_INNER_ITERS)
    } else {
        (SERVICE_REQUESTS, INNER_ITERS)
    };
    let (g, a) = graph(quick);
    let nodes = g.num_nodes();
    outln!(
        "dataplane bench: {nodes} nodes, {PARTITIONS} partitions, \
         {requests} service requests x {ROOTS_PER_REQ} roots ({HOPS} hops, fanout {FANOUT}), \
         {iters} inner-loop calls x {INNER_ROOTS} roots"
    );

    // Service-level arm: batched 2-hop requests through the service.
    let (legacy_rps, legacy_digest, _) = service_arm(
        Box::new(CpuBackend::from_partitioned_legacy(placement(&g, &a))),
        requests,
        nodes,
    );
    let flat_backend = CpuBackend::from_partitioned(placement(&g, &a));
    let pool = flat_backend.cluster().pool().clone();
    let (flat_rps, flat_digest, flat_stats) = service_arm(Box::new(flat_backend), requests, nodes);
    let coalesce_hit_rate = flat_stats.coalesce_hit_rate();
    let attr_coalesce_hit_rate = flat_stats.attr_coalesce_hit_rate();
    let service_speedup = flat_rps / legacy_rps;
    let service_match = legacy_digest == flat_digest;

    // Inner-loop arm: raw one-hop frontier fetch, no service in front.
    let legacy_inner = CpuBackend::from_partitioned_legacy(placement(&g, &a));
    let flat_inner = CpuBackend::from_partitioned(placement(&g, &a));
    let (legacy_ips, legacy_inner_digest) = inner_arm(&legacy_inner, iters, nodes);
    let (flat_ips, flat_inner_digest) = inner_arm(&flat_inner, iters, nodes);
    let inner_speedup = flat_ips / legacy_ips;
    let inner_match = legacy_inner_digest == flat_inner_digest;

    let pool_reuse_rate = pool.stats().reuse_rate();
    let digests_match = service_match && inner_match;
    // Quick runs smoke the machinery; the full workload is what the >=2x
    // claim is made on.
    let speedup_ok = service_speedup >= if quick { 1.0 } else { 2.0 };

    outln!(
        "  service (2-hop): legacy {legacy_rps:>8.1} req/s   flat {flat_rps:>8.1} req/s   speedup {service_speedup:.2}x"
    );
    outln!(
        "  inner loop (1-hop): legacy {legacy_ips:>8.1} call/s  flat {flat_ips:>8.1} call/s  speedup {inner_speedup:.2}x"
    );
    outln!(
        "  digests_match {digests_match}   coalesce_hit_rate {coalesce_hit_rate:.3}   \
         attr_coalesce_hit_rate {attr_coalesce_hit_rate:.3}   pool_reuse_rate {pool_reuse_rate:.3}"
    );

    let doc = Json::Obj(vec![
        ("bench".to_string(), Json::Str("dataplane".to_string())),
        ("quick".to_string(), Json::Bool(quick)),
        ("nodes".to_string(), Json::Num(nodes as f64)),
        ("partitions".to_string(), Json::Num(PARTITIONS as f64)),
        ("service_requests".to_string(), Json::Num(requests as f64)),
        (
            "roots_per_request".to_string(),
            Json::Num(ROOTS_PER_REQ as f64),
        ),
        ("hops".to_string(), Json::Num(HOPS as f64)),
        ("fanout".to_string(), Json::Num(FANOUT as f64)),
        ("legacy_requests_per_sec".to_string(), Json::Num(legacy_rps)),
        ("flat_requests_per_sec".to_string(), Json::Num(flat_rps)),
        ("service_speedup".to_string(), Json::Num(service_speedup)),
        ("inner_iters".to_string(), Json::Num(iters as f64)),
        (
            "legacy_inner_calls_per_sec".to_string(),
            Json::Num(legacy_ips),
        ),
        ("flat_inner_calls_per_sec".to_string(), Json::Num(flat_ips)),
        ("inner_speedup".to_string(), Json::Num(inner_speedup)),
        (
            "coalesce_hit_rate".to_string(),
            Json::Num(coalesce_hit_rate),
        ),
        (
            "attr_coalesce_hit_rate".to_string(),
            Json::Num(attr_coalesce_hit_rate),
        ),
        ("pool_reuse_rate".to_string(), Json::Num(pool_reuse_rate)),
        ("digests_match".to_string(), Json::Bool(digests_match)),
        ("speedup_ok".to_string(), Json::Bool(speedup_ok)),
    ]);
    std::fs::write("BENCH_dataplane.json", doc.render()).expect("write dataplane bench json");
    outln!("wrote BENCH_dataplane.json");
}
