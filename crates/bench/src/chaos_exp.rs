//! `bench chaos` — the fault-injection sweep: loss rate × card-failure
//! scenarios through the degrading [`SamplingService`], with the MoF
//! go-back-N recovery leg driven by the same [`FaultPlan`].
//!
//! Each cell builds a deterministic plan from `--seed` and the cell's
//! scenario, serves a fixed request stream through a chaos-wrapped CPU
//! cluster (request seeds double as virtual ticks, so "card 1 dies at
//! tick N/2" is a mid-run crash), and reports:
//!
//! * **availability** — completed / submitted (degraded replies count:
//!   an approximate sample from the reachable partitions is a valid
//!   answer, the paper's streaming-sampling argument applied to faults);
//! * **quality** — mean/min [`quality::batch_recall`] of every reply
//!   against the fault-free exact batch, i.e. the measured sample-quality
//!   delta vs fault severity;
//! * **replayability** — the plan digest and an FNV digest over every
//!   reply's content + degraded flag. Both are pure functions of
//!   `(seed, scenario)`: byte-identical across runs and `--jobs` counts.
//! * **MoF recovery** — the same plan's frame-loss stream pushed through
//!   the real [`ReliableChannel`] retransmit path (transmissions,
//!   retransmissions, delivery).
//!
//! Wall-clock observations (p99 latency, retry/hedge/breaker counters —
//! anything that depends on attempt counts or sleeps) live in a separate
//! `observed` block per cell; `LSDGNN_CHAOS_OMIT_TIMING=1` zeroes that
//! block so determinism tests can compare whole artifacts byte-for-byte.
//!
//! The zero-fault cell is the pay-for-what-you-use gate: its replies are
//! digest-compared against a service started with *no* injector at all,
//! and the run fails if they differ.

use crate::util::{outln, par_map, Table};
use lsdgnn_core::chaos::plan::fnv1a;
use lsdgnn_core::chaos::{FaultInjector, FaultPlan, ScenarioSpec};
use lsdgnn_core::framework::{
    ChaosBackend, CpuBackend, DegradeConfig, SampleReply, SampleRequest, SamplingBackend,
    SamplingService, ServiceConfig,
};
use lsdgnn_core::graph::{generators, AttributeStore, NodeId};
use lsdgnn_core::mof::ReliableChannel;
use lsdgnn_core::sampler::quality;
use lsdgnn_core::telemetry::Json;
use std::time::{Duration, Instant};

/// Graph size for every cell — fixed (not `LSDGNN_SCALE`) so the
/// committed artifact replays identically in any environment.
const GRAPH_NODES: u64 = 600;
/// Cluster partitions = chaos "cards".
const PARTITIONS: u32 = 4;
/// Requests per cell.
const FULL_REQUESTS: u64 = 400;
const QUICK_REQUESTS: u64 = 120;
/// Frames pushed through the MoF recovery leg per cell.
const FULL_FRAMES: u32 = 200;
const QUICK_FRAMES: u32 = 80;

/// One scenario-grid cell: a frame/request loss rate crossed with a set
/// of card crashes (ticks are request sequence numbers).
struct Cell {
    name: String,
    loss: f64,
    /// `(card, at_fraction)` — crash tick = `at_fraction * requests`.
    card_failures: Vec<(u32, f64)>,
    /// `(card, slowdown, base_delay_us)` — a straggling card.
    straggler: Option<(u32, f64, u64)>,
}

fn grid(quick: bool) -> Vec<Cell> {
    let losses: &[f64] = if quick {
        &[0.0, 0.05]
    } else {
        &[0.0, 0.01, 0.05, 0.10, 0.25]
    };
    let mut cells = Vec::new();
    for &loss in losses {
        let pct = (loss * 100.0).round() as u32;
        cells.push(Cell {
            name: format!("loss{pct}%"),
            loss,
            card_failures: vec![],
            straggler: None,
        });
        cells.push(Cell {
            name: format!("loss{pct}%+card1@mid"),
            loss,
            card_failures: vec![(1, 0.5)],
            straggler: None,
        });
        if !quick {
            cells.push(Cell {
                name: format!("loss{pct}%+2cards"),
                loss,
                card_failures: vec![(1, 1.0 / 3.0), (2, 2.0 / 3.0)],
                straggler: None,
            });
        }
    }
    if !quick {
        cells.push(Cell {
            name: "card1@mid+straggler3".to_string(),
            loss: 0.0,
            card_failures: vec![(1, 0.5)],
            straggler: Some((3, 3.0, 20)),
        });
    }
    cells
}

fn spec_of(cell: &Cell, requests: u64) -> ScenarioSpec {
    // Frame loss feeds the MoF leg; the same rate feeds the service leg
    // as per-attempt dispatch loss (a pessimistic "every dispatch rides
    // one unrecovered frame" coupling — the retry ladder absorbs it).
    let mut spec = ScenarioSpec::none()
        .with_frame_loss(cell.loss)
        .with_request_loss(cell.loss);
    for &(card, frac) in &cell.card_failures {
        spec = spec.with_card_failure(card, (requests as f64 * frac) as u64);
    }
    if let Some((card, slowdown, base_us)) = cell.straggler {
        spec = spec.with_straggler(card, slowdown, base_us);
    }
    spec
}

fn request(seed: u64) -> SampleRequest {
    SampleRequest {
        roots: (0..8)
            .map(|r| NodeId((seed * 13 + r) % GRAPH_NODES))
            .collect(),
        hops: 2,
        fanout: 4,
        seed,
    }
}

/// Single-worker degradation-tuned service config: one shard keeps the
/// breaker/retry trajectory a pure function of submission order.
fn cell_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        max_batch: 8,
        batch_deadline: Duration::from_micros(100),
        degrade: DegradeConfig {
            backoff_base: Duration::from_micros(10),
            ..DegradeConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn backend() -> Box<dyn SamplingBackend> {
    let g = generators::power_law(GRAPH_NODES, 8, 31);
    let a = AttributeStore::synthetic(GRAPH_NODES, 8, 31);
    Box::new(CpuBackend::new(&g, &a, PARTITIONS))
}

/// FNV digest over reply content: flat block (roots, hop boundaries,
/// node ids) + the degraded flag. Timing-free — the replayability
/// fingerprint.
fn digest_replies(replies: &[SampleReply]) -> u64 {
    let mut bytes = Vec::new();
    for r in replies {
        bytes.push(u8::from(r.degraded));
        bytes.extend_from_slice(&(r.block.roots.len() as u64).to_le_bytes());
        for n in &r.block.roots {
            bytes.extend_from_slice(&n.0.to_le_bytes());
        }
        bytes.extend_from_slice(&(r.block.hop_offsets.len() as u64).to_le_bytes());
        for o in &r.block.hop_offsets {
            bytes.extend_from_slice(&o.to_le_bytes());
        }
        for n in &r.block.nodes {
            bytes.extend_from_slice(&n.0.to_le_bytes());
        }
    }
    fnv1a(&bytes)
}

/// Serves the fixed request stream through `svc`, waiting for every
/// reply in submission order.
fn serve_stream(svc: &SamplingService, requests: u64) -> Vec<SampleReply> {
    let tickets: Vec<_> = (0..requests).map(|s| svc.submit(request(s))).collect();
    tickets.into_iter().map(|t| t.wait_reply()).collect()
}

/// Everything one cell produced; split into replay-deterministic fields
/// and wall-clock observations.
struct CellResult {
    name: String,
    loss: f64,
    card_failures: Vec<(u32, u64)>,
    plan_digest: u64,
    requests: u64,
    completed: u64,
    degraded: u64,
    mean_recall: f64,
    min_recall: f64,
    results_digest: u64,
    mof_transmissions: u64,
    mof_retransmissions: u64,
    mof_delivered: u64,
    mof_abandoned: bool,
    // -- observed (timing-dependent) --
    p99_us: f64,
    wall_ms: f64,
    faults: u64,
    fallbacks: u64,
    hedges: u64,
    breaker_opens: u64,
    breaker_fastpaths: u64,
    requests_dropped: u64,
    straggler_delays: u64,
}

impl CellResult {
    fn completion_rate(&self) -> f64 {
        self.completed as f64 / self.requests as f64
    }

    fn degraded_success(&self) -> bool {
        !self.card_failures.is_empty() && self.degraded > 0 && self.completed == self.requests
    }

    fn quality_delta(&self) -> f64 {
        1.0 - self.mean_recall
    }
}

/// Runs one cell: the service leg over a chaos-wrapped cluster plus the
/// MoF recovery leg over the same plan's frame-loss stream.
fn run_cell(cell: &Cell, seed: u64, requests: u64, frames: u32) -> CellResult {
    let spec = spec_of(cell, requests);
    let card_failures: Vec<(u32, u64)> =
        spec.card_failures.iter().map(|c| (c.card, c.at)).collect();
    let plan = FaultPlan::build(seed, spec).expect("grid specs are valid");
    let plan_digest = plan.digest();
    let injector = FaultInjector::new(plan.clone());
    let svc = SamplingService::start_faulted(
        Box::new(ChaosBackend::new(backend(), injector.clone())),
        cell_config(),
        None,
        Some(injector.clone()),
    );

    let start = Instant::now();
    let replies = serve_stream(&svc, requests);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = svc.stats();
    svc.shutdown();

    // Quality: recall of each reply against the fault-free exact batch.
    let reference = backend();
    let (mut recall_sum, mut min_recall) = (0.0f64, 1.0f64);
    let mut degraded = 0u64;
    for (s, reply) in replies.iter().enumerate() {
        let exact = reference.sample_neighbors(&request(s as u64));
        let recall = quality::batch_recall(&exact, &reply.block.to_batch());
        recall_sum += recall;
        min_recall = min_recall.min(recall);
        degraded += u64::from(reply.degraded);
    }

    // MoF leg: the plan's frame-loss stream through go-back-N recovery.
    let mut ch = ReliableChannel::new(8);
    for i in 0..frames {
        ch.push(i);
    }
    let mut attempt = 0u64;
    let mof_abandoned = ch
        .run_with_retries(
            |_| {
                attempt += 1;
                plan.drop_frame(0, attempt, attempt)
            },
            10_000,
        )
        .is_err();
    assert!(ch.accounting_balances(), "go-back-N accounting drifted");

    let inj = injector.stats();
    CellResult {
        name: cell.name.clone(),
        loss: cell.loss,
        card_failures,
        plan_digest,
        requests,
        completed: replies.len() as u64,
        degraded,
        mean_recall: recall_sum / requests as f64,
        min_recall,
        results_digest: digest_replies(&replies),
        mof_transmissions: ch.transmissions(),
        mof_retransmissions: ch.retransmissions(),
        mof_delivered: ch.received().len() as u64,
        mof_abandoned,
        p99_us: stats.latency_p99_us(),
        wall_ms,
        faults: stats.faults,
        fallbacks: stats.fallbacks,
        hedges: stats.hedges,
        breaker_opens: stats.breaker_opens,
        breaker_fastpaths: stats.breaker_fastpaths,
        requests_dropped: inj.requests_dropped,
        straggler_delays: inj.straggler_delays,
    }
}

/// The pay-for-what-you-use gate: a zero-fault plan must reproduce the
/// no-injector service byte-for-byte. Returns `(digest, identical)`.
fn zero_fault_gate(seed: u64, requests: u64) -> (u64, bool) {
    let plain = SamplingService::start(backend(), cell_config());
    let baseline = digest_replies(&serve_stream(&plain, requests));
    plain.shutdown();

    let injector = FaultInjector::new(FaultPlan::zero(seed));
    let chaotic = SamplingService::start_faulted(
        Box::new(ChaosBackend::new(backend(), injector.clone())),
        cell_config(),
        None,
        Some(injector),
    );
    let zeroed = digest_replies(&serve_stream(&chaotic, requests));
    chaotic.shutdown();
    (baseline, baseline == zeroed)
}

fn hex(d: u64) -> String {
    format!("{d:#018x}")
}

/// Runs the sweep and writes the artifact to `out`.
pub fn chaos(quick: bool, seed: u64, out: &str) {
    let requests = if quick { QUICK_REQUESTS } else { FULL_REQUESTS };
    let frames = if quick { QUICK_FRAMES } else { FULL_FRAMES };
    let omit_timing = std::env::var("LSDGNN_CHAOS_OMIT_TIMING").is_ok();
    outln!(
        "chaos sweep: seed {seed}, {requests} requests/cell over {PARTITIONS} cards, \
         loss x card-failure grid{}",
        if omit_timing { " (timing omitted)" } else { "" }
    );

    let (baseline_digest, zero_identical) = zero_fault_gate(seed, requests);
    assert!(
        zero_identical,
        "zero-fault plan diverged from the fault-free service: the chaos layer is not pay-for-what-you-use"
    );
    outln!(
        "  zero-fault gate: plan {} replays the injector-free service bit-identically ({})",
        hex(FaultPlan::zero(seed).digest()),
        hex(baseline_digest)
    );

    let cells = grid(quick);
    let results = par_map(cells, |cell| run_cell(&cell, seed, requests, frames));

    let zero = |v: f64| if omit_timing { 0.0 } else { v };
    let table = Table::new(
        &[
            "cell",
            "avail",
            "degraded",
            "recall",
            "q-delta",
            "p99(us)",
            "mof tx/re",
            "digest",
        ],
        &[22, 7, 9, 7, 8, 9, 10, 19],
    );
    for r in &results {
        table.row(&[
            r.name.clone(),
            format!("{:.4}", r.completion_rate()),
            format!("{}", r.degraded),
            format!("{:.3}", r.mean_recall),
            format!("{:.3}", r.quality_delta()),
            format!("{:.0}", zero(r.p99_us)),
            format!("{}/{}", r.mof_transmissions, r.mof_retransmissions),
            hex(r.results_digest),
        ]);
    }
    table.note(
        "avail = completed/submitted (degraded replies count); recall vs fault-free exact batches",
    );

    let any_degraded_success = results.iter().any(CellResult::degraded_success);
    for r in &results {
        assert_eq!(
            r.completed, r.requests,
            "cell {} lost replies — the degradation ladder must answer everything",
            r.name
        );
    }
    assert!(
        any_degraded_success,
        "no card-failure cell produced a degraded-but-successful response"
    );

    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("cell".to_string(), Json::Str(r.name.clone())),
                ("frame_loss".to_string(), Json::Num(r.loss)),
                ("request_loss".to_string(), Json::Num(r.loss)),
                (
                    "card_failures".to_string(),
                    Json::Arr(
                        r.card_failures
                            .iter()
                            .map(|&(c, at)| {
                                Json::Arr(vec![Json::Num(c as f64), Json::Num(at as f64)])
                            })
                            .collect(),
                    ),
                ),
                ("plan_digest".to_string(), Json::Str(hex(r.plan_digest))),
                ("requests".to_string(), Json::Num(r.requests as f64)),
                ("completed".to_string(), Json::Num(r.completed as f64)),
                (
                    "completion_rate".to_string(),
                    Json::Num(r.completion_rate()),
                ),
                ("degraded".to_string(), Json::Num(r.degraded as f64)),
                (
                    "degraded_ratio".to_string(),
                    Json::Num(r.degraded as f64 / r.requests as f64),
                ),
                (
                    "degraded_success".to_string(),
                    Json::Bool(r.degraded_success()),
                ),
                ("mean_recall".to_string(), Json::Num(r.mean_recall)),
                ("min_recall".to_string(), Json::Num(r.min_recall)),
                ("quality_delta".to_string(), Json::Num(r.quality_delta())),
                (
                    "results_digest".to_string(),
                    Json::Str(hex(r.results_digest)),
                ),
                (
                    "mof".to_string(),
                    Json::Obj(vec![
                        ("frames".to_string(), Json::Num(frames as f64)),
                        (
                            "transmissions".to_string(),
                            Json::Num(r.mof_transmissions as f64),
                        ),
                        (
                            "retransmissions".to_string(),
                            Json::Num(r.mof_retransmissions as f64),
                        ),
                        ("delivered".to_string(), Json::Num(r.mof_delivered as f64)),
                        ("abandoned".to_string(), Json::Bool(r.mof_abandoned)),
                    ]),
                ),
                (
                    "observed".to_string(),
                    Json::Obj(vec![
                        ("p99_us".to_string(), Json::Num(zero(r.p99_us))),
                        ("wall_ms".to_string(), Json::Num(zero(r.wall_ms))),
                        ("faults".to_string(), Json::Num(zero(r.faults as f64))),
                        ("fallbacks".to_string(), Json::Num(zero(r.fallbacks as f64))),
                        ("hedges".to_string(), Json::Num(zero(r.hedges as f64))),
                        (
                            "breaker_opens".to_string(),
                            Json::Num(zero(r.breaker_opens as f64)),
                        ),
                        (
                            "breaker_fastpaths".to_string(),
                            Json::Num(zero(r.breaker_fastpaths as f64)),
                        ),
                        (
                            "requests_dropped".to_string(),
                            Json::Num(zero(r.requests_dropped as f64)),
                        ),
                        (
                            "straggler_delays".to_string(),
                            Json::Num(zero(r.straggler_delays as f64)),
                        ),
                    ]),
                ),
            ])
        })
        .collect();

    let doc = Json::Obj(vec![
        ("bench".to_string(), Json::Str("chaos".to_string())),
        ("quick".to_string(), Json::Bool(quick)),
        ("seed".to_string(), Json::Num(seed as f64)),
        ("graph_nodes".to_string(), Json::Num(GRAPH_NODES as f64)),
        ("partitions".to_string(), Json::Num(PARTITIONS as f64)),
        ("requests_per_cell".to_string(), Json::Num(requests as f64)),
        ("timing_omitted".to_string(), Json::Bool(omit_timing)),
        (
            "zero_fault".to_string(),
            Json::Obj(vec![
                (
                    "plan_digest".to_string(),
                    Json::Str(hex(FaultPlan::zero(seed).digest())),
                ),
                (
                    "baseline_digest".to_string(),
                    Json::Str(hex(baseline_digest)),
                ),
                ("identical".to_string(), Json::Bool(zero_identical)),
            ]),
        ),
        (
            "any_degraded_success".to_string(),
            Json::Bool(any_degraded_success),
        ),
        ("cells".to_string(), Json::Arr(rows)),
    ]);
    std::fs::write(out, doc.render()).expect("write chaos bench json");
    outln!("wrote {out}");
}
