//! `bench inference` — end-to-end inference serving: pipelined
//! [`InferenceService`] versus the sequential reference execution.
//!
//! Both arms serve the *same* skewed 2-partition workload as `bench
//! dataplane` (hot head pinned to the worker-local shard, 80% of roots
//! on it) through the same flat-data-plane backend and the same
//! [`SageModel`] — only the execution discipline differs:
//!
//! * **sequential** — [`run_sequential`]: each request runs sample →
//!   gather → compute to completion before the next is submitted. The
//!   sampling service never sees two requests at once, so there is
//!   nothing to coalesce.
//! * **pipelined** — [`InferenceService`]: a sliding window of requests
//!   in flight keeps the sampling stage's batcher fed, so union-frontier
//!   and attribute-gather coalescing across concurrent requests do real
//!   work while older requests gather and compute downstream.
//!
//! Pipelining must change latency, never answers: an untimed pass folds
//! every reply digest on both arms and the run records `digests_match`.
//! A chaos sub-run (mid-stream card failure, single worker on both arms
//! so breaker decisions stay in request order) checks the degradation
//! contract end to end: every reply is complete and digest-identical to
//! the sequential reference, degraded replies carry `recall < 1`.
//!
//! The run also measures the sequential stage breakdown (sampling /
//! gather / compute fractions) — the measured counterpart of
//! `nn::e2e::E2eModel`'s analytical split — and writes everything to
//! `BENCH_inference.json` with end-to-end per-request p50/p99.

use crate::dataplane::{fold, graph, placement, skewed_root, ATTR_LEN, FANOUT, HOPS, PARTITIONS};
use crate::util::outln;
use lsdgnn_core::chaos::{FaultInjector, FaultPlan, ScenarioSpec};
use lsdgnn_core::desim::{Histogram, Time};
use lsdgnn_core::framework::{
    run_sequential, ChaosBackend, CpuBackend, InferenceConfig, InferenceReply, InferenceService,
    SampleRequest, SamplingBackend, SamplingService, ServiceConfig,
};
use lsdgnn_core::graph::{AttributeStore, CsrGraph};
use lsdgnn_core::nn::{Matrix, SageModel, SageScratch};
use lsdgnn_core::telemetry::Json;
use std::time::Instant;

/// GraphSAGE widths served on top of the 64-float attribute rows. Small
/// on purpose: the paper's serving bottleneck is sampling + attribute
/// movement, and the breakdown measurement below confirms the bench
/// reproduces that regime.
const WIDTHS: [usize; 3] = [ATTR_LEN, 16, 8];
const MODEL_SEED: u64 = 61;

/// Roots per inference request. Online inference requests name a handful
/// of entities, not a training mini-batch — which is exactly why the
/// serving layer's cross-request coalescing matters: with small root
/// sets, the overlap lives *between* concurrent requests, and only the
/// pipelined arm ever has concurrent requests.
const ROOTS_PER_REQ: u64 = 16;

const REQUESTS: u64 = 1024;
const QUICK_REQUESTS: u64 = 128;
/// Requests whose reply digests are folded (untimed) on both arms.
const VERIFY_REQUESTS: u64 = 48;
/// Requests for the per-stage breakdown measurement.
const BREAKDOWN_REQUESTS: u64 = 32;
/// Requests in the chaos sub-run; the card dies halfway through.
const CHAOS_REQUESTS: u64 = 32;
/// In-flight window for the pipelined arm: deep enough that the
/// sampling batcher always has a full batch to coalesce.
const WINDOW: u64 = 64;

/// Single sampling worker on both arms: the bench box is one core, and
/// the speedup claim is about pipelining + cross-request coalescing, not
/// thread count.
fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 128,
        max_batch: 32,
        ..ServiceConfig::default()
    }
}

fn backend(g: &CsrGraph, a: &AttributeStore) -> Box<dyn SamplingBackend> {
    Box::new(CpuBackend::from_partitioned(placement(g, a)))
}

fn model() -> SageModel {
    SageModel::new(&WIDTHS, MODEL_SEED)
}

/// A small skewed inference request over the dataplane bench's hot-head
/// root distribution.
fn request(seed: u64, nodes: u64, roots: u64) -> SampleRequest {
    SampleRequest {
        roots: (0..roots).map(|i| skewed_root(seed, i, nodes)).collect(),
        hops: HOPS,
        fanout: FANOUT,
        seed,
    }
}

/// Serves the request stream one at a time through the reference
/// execution. Returns (requests/sec, folded digest, per-request
/// latency).
fn sequential_arm(
    svc: &SamplingService,
    model: &SageModel,
    requests: u64,
    nodes: u64,
) -> (f64, u64, Histogram) {
    // Warm caches, pools and threads outside every measured window.
    run_sequential(
        svc,
        model,
        (0..8).map(|s| request(1 << 32 | s, nodes, ROOTS_PER_REQ)),
    );
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for r in run_sequential(
        svc,
        model,
        (0..VERIFY_REQUESTS.min(requests)).map(|s| request(s, nodes, ROOTS_PER_REQ)),
    ) {
        digest = fold(digest, r.digest());
    }
    // Throughput: one run over the whole stream (shared pool/scratch),
    // best of three.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let replies = run_sequential(
            svc,
            model,
            (0..requests).map(|s| request(s, nodes, ROOTS_PER_REQ)),
        );
        assert_eq!(replies.len(), requests as usize);
        best = best.min(start.elapsed().as_secs_f64());
    }
    // Latency distribution: the same stream timed per request.
    let mut lat = Histogram::default();
    for s in 0..requests {
        let t0 = Instant::now();
        let _ = run_sequential(
            svc,
            model,
            std::iter::once(request(s, nodes, ROOTS_PER_REQ)),
        );
        lat.record(Time::from_micros(t0.elapsed().as_micros() as u64));
    }
    (requests as f64 / best, digest, lat)
}

/// Serves the request stream through the pipelined service with a
/// sliding in-flight window. Returns (requests/sec, folded digest); the
/// service keeps the end-to-end latency histogram.
fn pipelined_arm(pipe: &InferenceService, requests: u64, nodes: u64) -> (f64, u64) {
    for s in 0..8 {
        let r = pipe.infer(request(1 << 32 | s, nodes, ROOTS_PER_REQ));
        pipe.recycle(r);
    }
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let tickets: Vec<_> = (0..VERIFY_REQUESTS.min(requests))
        .map(|s| pipe.submit(request(s, nodes, ROOTS_PER_REQ)))
        .collect();
    for t in tickets {
        let r = t.wait();
        digest = fold(digest, r.digest());
        pipe.recycle(r);
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let mut tickets = std::collections::VecDeque::new();
        let mut submitted = 0u64;
        while submitted < requests.min(WINDOW) {
            tickets.push_back(pipe.submit(request(submitted, nodes, ROOTS_PER_REQ)));
            submitted += 1;
        }
        while let Some(t) = tickets.pop_front() {
            pipe.recycle(t.wait());
            if submitted < requests {
                tickets.push_back(pipe.submit(request(submitted, nodes, ROOTS_PER_REQ)));
                submitted += 1;
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (requests as f64 / best, digest)
}

/// Measures where sequential serving time goes: sampling vs gather vs
/// compute. This is the measured counterpart of `E2eModel`'s analytical
/// split; EXPERIMENTS.md records the calibration delta.
fn stage_breakdown(svc: &SamplingService, model: &SageModel, nodes: u64) -> (f64, f64, f64) {
    let mut scratch = SageScratch::new();
    let (mut t_sample, mut t_gather, mut t_compute) = (0.0f64, 0.0f64, 0.0f64);
    let mut rows = Vec::new();
    let mut slot_of = Vec::new();
    let mut out = Matrix::zeros(1, 1);
    for s in 0..BREAKDOWN_REQUESTS {
        let req = request(s, nodes, ROOTS_PER_REQ);
        let t0 = Instant::now();
        let sreply = svc.sample_reply(req);
        t_sample += t0.elapsed().as_secs_f64();

        let block = &sreply.block;
        let t0 = Instant::now();
        let mut fetch = Vec::with_capacity(block.roots.len() + block.nodes.len());
        fetch.extend_from_slice(&block.roots);
        fetch.extend_from_slice(&block.nodes);
        let attr_len = svc.gather_attr_rows(&fetch, &mut rows, &mut slot_of);
        t_gather += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let feats = Matrix::from_vec(rows.len() / attr_len, attr_len, std::mem::take(&mut rows));
        out.reset(block.roots.len(), model.out_dim());
        let hop_starts = &block.hop_offsets[..block.hop_offsets.len() - 1];
        model.forward_block_into(
            block.roots.len(),
            hop_starts,
            &block.adj_offsets,
            &feats,
            &slot_of,
            &mut scratch,
            &mut out,
        );
        t_compute += t0.elapsed().as_secs_f64();
        rows = feats.into_vec();
        svc.backend().recycle(sreply.block);
    }
    let total = t_sample + t_gather + t_compute;
    (t_sample / total, t_gather / total, t_compute / total)
}

/// The degradation contract, end to end: a mid-stream card failure on
/// both arms (fresh services, identical plans, one worker each so
/// breaker state stays in request order). Returns (digests match,
/// degraded replies, min recall, every reply complete).
fn chaos_run(g: &CsrGraph, a: &AttributeStore, nodes: u64) -> (bool, u64, f64, bool) {
    let plan = FaultPlan::build(
        23,
        ScenarioSpec::none().with_card_failure(1, CHAOS_REQUESTS / 2),
    )
    .expect("chaos plan");
    let faulted = |plan: &FaultPlan| {
        let injector = FaultInjector::new(plan.clone());
        let chaos = ChaosBackend::new(backend(g, a), injector.clone());
        SamplingService::start_faulted(Box::new(chaos), service_cfg(), None, Some(injector))
    };

    let seq = run_sequential(
        &faulted(&plan),
        &model(),
        (0..CHAOS_REQUESTS).map(|s| request(s, nodes, ROOTS_PER_REQ)),
    );

    let pipe = InferenceService::start(faulted(&plan), model(), InferenceConfig::default());
    let tickets: Vec<_> = (0..CHAOS_REQUESTS)
        .map(|s| pipe.submit(request(s, nodes, ROOTS_PER_REQ)))
        .collect();
    let piped: Vec<InferenceReply> = tickets.into_iter().map(|t| t.wait()).collect();

    let out_dim = model().out_dim();
    let mut digests_match = seq.len() == piped.len();
    let mut complete = true;
    let mut degraded = 0u64;
    let mut min_recall = 1.0f64;
    for (p, s) in piped.iter().zip(&seq) {
        digests_match &= p.digest() == s.digest();
        let (rows, cols) = p.embeddings.shape();
        complete &= rows > 0 && cols == out_dim;
        if p.degraded {
            degraded += 1;
            min_recall = min_recall.min(p.recall);
        }
    }
    (digests_match, degraded, min_recall, complete)
}

/// Runs both arms, the breakdown, and the chaos sub-run; writes
/// `BENCH_inference.json`.
pub fn inference(quick: bool) {
    let requests = if quick { QUICK_REQUESTS } else { REQUESTS };
    let (g, a) = graph(quick);
    let nodes = g.num_nodes();
    let widths: Vec<String> = WIDTHS.iter().map(|w| w.to_string()).collect();
    outln!(
        "inference bench: {nodes} nodes, {PARTITIONS} partitions, {requests} requests \
         ({HOPS} hops, fanout {FANOUT}), sage [{}]",
        widths.join("x")
    );

    let seq_svc = SamplingService::start(backend(&g, &a), service_cfg());
    let (seq_rps, seq_digest, seq_lat) = sequential_arm(&seq_svc, &model(), requests, nodes);
    let (seq_p50, seq_p99) = (
        seq_lat.percentile(0.50).as_micros_f64(),
        seq_lat.percentile(0.99).as_micros_f64(),
    );
    let (f_sample, f_gather, f_compute) = stage_breakdown(&seq_svc, &model(), nodes);
    seq_svc.shutdown();

    let gather_batch = std::env::var("LSDGNN_GATHER_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(InferenceConfig::default().gather_batch);
    let pipe = InferenceService::start(
        SamplingService::start(backend(&g, &a), service_cfg()),
        model(),
        InferenceConfig {
            gather_batch,
            ..InferenceConfig::default()
        },
    );
    let (pipe_rps, pipe_digest) = pipelined_arm(&pipe, requests, nodes);
    let stats = pipe.stats();
    let (pipe_p50, pipe_p99) = (stats.latency_p50_us(), stats.latency_p99_us());

    let (chaos_match, chaos_degraded, chaos_min_recall, chaos_complete) = chaos_run(&g, &a, nodes);

    let speedup = pipe_rps / seq_rps;
    let digests_match = seq_digest == pipe_digest && chaos_match;
    // Quick runs smoke the machinery; the >=1.3x claim is made on the
    // full workload.
    let speedup_ok = speedup >= if quick { 1.0 } else { 1.3 };

    outln!("  sequential {seq_rps:>8.1} req/s   p50 {seq_p50:>8.0}us  p99 {seq_p99:>8.0}us");
    outln!("  pipelined  {pipe_rps:>8.1} req/s   p50 {pipe_p50:>8.0}us  p99 {pipe_p99:>8.0}us");
    outln!("  speedup {speedup:.2}x   digests_match {digests_match}");
    outln!(
        "  breakdown: sampling {:.1}%  gather {:.1}%  compute {:.1}%",
        f_sample * 100.0,
        f_gather * 100.0,
        f_compute * 100.0
    );
    outln!(
        "  chaos: degraded {chaos_degraded}/{CHAOS_REQUESTS} replies, all complete \
         {chaos_complete}, min recall {chaos_min_recall:.3}"
    );

    let doc = Json::Obj(vec![
        ("bench".to_string(), Json::Str("inference".to_string())),
        ("quick".to_string(), Json::Bool(quick)),
        ("nodes".to_string(), Json::Num(nodes as f64)),
        ("partitions".to_string(), Json::Num(PARTITIONS as f64)),
        ("requests".to_string(), Json::Num(requests as f64)),
        ("hops".to_string(), Json::Num(HOPS as f64)),
        ("fanout".to_string(), Json::Num(FANOUT as f64)),
        ("attr_len".to_string(), Json::Num(ATTR_LEN as f64)),
        ("model_widths".to_string(), Json::Str(widths.join("x"))),
        (
            "sequential_requests_per_sec".to_string(),
            Json::Num(seq_rps),
        ),
        (
            "pipelined_requests_per_sec".to_string(),
            Json::Num(pipe_rps),
        ),
        ("pipeline_speedup".to_string(), Json::Num(speedup)),
        ("sequential_p50_us".to_string(), Json::Num(seq_p50)),
        ("sequential_p99_us".to_string(), Json::Num(seq_p99)),
        ("pipelined_p50_us".to_string(), Json::Num(pipe_p50)),
        ("pipelined_p99_us".to_string(), Json::Num(pipe_p99)),
        ("sampling_fraction".to_string(), Json::Num(f_sample)),
        ("gather_fraction".to_string(), Json::Num(f_gather)),
        ("compute_fraction".to_string(), Json::Num(f_compute)),
        (
            "chaos_degraded_replies".to_string(),
            Json::Num(chaos_degraded as f64),
        ),
        ("chaos_min_recall".to_string(), Json::Num(chaos_min_recall)),
        ("chaos_all_complete".to_string(), Json::Bool(chaos_complete)),
        ("digests_match".to_string(), Json::Bool(digests_match)),
        ("speedup_ok".to_string(), Json::Bool(speedup_ok)),
    ]);
    std::fs::write("BENCH_inference.json", doc.render()).expect("write inference bench json");
    outln!("wrote BENCH_inference.json");
}
