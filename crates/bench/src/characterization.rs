//! Section 3 characterization experiments: Figure 2(a)–(e) and Figure 3.

use crate::util::{banner, eng, outln, pct, Table, Telemetry};
use lsdgnn_core::framework::{
    CpuBackend, CpuClusterModel, SampleRequest, SamplingService, ServiceConfig,
};
use lsdgnn_core::graph::{FootprintModel, NodeId, PAPER_DATASETS};
use lsdgnn_core::memfabric::{figure_2e_series, LinkModel};
use lsdgnn_core::nn::E2eModel;
use lsdgnn_core::sampler::{traffic, StandardSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Figure 2(a): memory footprint of the six graphs and the minimal
/// servers to carry them.
pub fn fig2a() {
    banner(
        "Fig 2(a)",
        "memory footprint and minimal servers (paper scale)",
    );
    let fm = FootprintModel::default();
    let t = Table::new(
        &[
            "graph",
            "attr bytes",
            "struct bytes",
            "total GiB",
            "servers",
        ],
        &[6, 14, 14, 12, 10],
    );
    for d in &PAPER_DATASETS {
        t.row(&[
            d.name.to_string(),
            eng(d.attribute_bytes() as f64),
            eng(d.structure_bytes() as f64),
            format!("{:.0}", fm.footprint_gib(d)),
            fm.min_servers(d).to_string(),
        ]);
    }
}

/// Figure 2(b): sub-linear performance scaling with server count.
pub fn fig2b(scale_nodes: u64, tel: &mut Telemetry) {
    banner(
        "Fig 2(b)",
        "sampling speedup vs number of servers (CPU baseline)",
    );
    let m = CpuClusterModel::default();
    let counts = [1u64, 5, 15];
    let curve = m.scaling_curve(&counts);
    let t = Table::new(&["servers", "speedup", "per-vCPU rate"], &[8, 14, 16]);
    for (s, x) in counts.iter().zip(curve) {
        t.row(&[
            s.to_string(),
            format!("{x:.2}x"),
            format!("{}/s", eng(m.vcpu_rate(*s))),
        ]);
    }
    t.note("ideal would be 1x / 5x / 15x — communication makes it sub-linear");

    // The cause, executed: the same mini-batch stream served by the real
    // mini-AliGraph cluster through the SamplingService — the remote
    // request share grows with the server count.
    let d = lsdgnn_core::graph::DatasetConfig::by_name("ml").expect("table 2 dataset");
    let (g, attrs) = d.instantiate_scaled(scale_nodes, 1);
    let t = Table::new(
        &["servers", "requests", "samples", "remote share"],
        &[8, 12, 14, 16],
    );
    for partitions in [1u32, 4, 8] {
        let service = SamplingService::start_traced(
            Box::new(CpuBackend::new(&g, &attrs, partitions)),
            ServiceConfig::default(),
            tel.tracer(),
        );
        let tickets: Vec<_> = (0..16u64)
            .map(|b| {
                service.submit(SampleRequest {
                    roots: (0..32)
                        .map(|r| NodeId((b * 32 + r) % g.num_nodes()))
                        .collect(),
                    hops: d.sampling.hops,
                    fanout: d.sampling.fanout as usize,
                    seed: b,
                })
            })
            .collect();
        let samples: usize = tickets.into_iter().map(|t| t.wait().total_sampled()).sum();
        let stats = service.stats();
        t.row(&[
            partitions.to_string(),
            stats.requests.to_string(),
            samples.to_string(),
            pct(stats.backend.remote_fraction()),
        ]);
        tel.registry.register(
            "service/fig2b",
            &[("partitions", &partitions.to_string())],
            Box::new(stats),
        );
        service.shutdown();
    }
}

/// Figure 2(c): share of memory requests that are fine-grained structure
/// accesses.
pub fn fig2c(scale_nodes: u64) {
    banner(
        "Fig 2(c)",
        "fine-grained structure accesses in total memory requests",
    );
    let t = Table::new(
        &["graph", "analytic", "executed", "avg struct bytes"],
        &[6, 12, 16, 18],
    );
    let mut fractions = Vec::new();
    for d in &PAPER_DATASETS {
        let analytic = traffic::analytic_profile(d);
        fractions.push(analytic.structure_request_fraction());
        // Executed instrumentation on the scaled graph.
        let (g, _) = d.instantiate_scaled(scale_nodes, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let roots: Vec<NodeId> = (0..32).map(NodeId).collect();
        let p = traffic::profile_batch(
            &mut rng,
            &g,
            &StandardSampler,
            &roots,
            d.sampling.hops,
            d.sampling.fanout as usize,
            d.attr_len as usize,
        );
        t.row(&[
            d.name.to_string(),
            pct(analytic.structure_request_fraction()),
            pct(p.structure_request_fraction()),
            format!("{:.1}B", p.avg_structure_request_bytes()),
        ]);
    }
    let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
    outln!(
        "average structure-request share: {} (paper: ~48%)",
        pct(avg)
    );
}

/// Figure 2(d): round-trip latency and effective bandwidth versus request
/// size for the three memory paths.
pub fn fig2d() {
    banner(
        "Fig 2(d)",
        "latency / effective bandwidth vs request size (DRAM, PCIe, RDMA)",
    );
    let links = [
        LinkModel::local_dram(1),
        LinkModel::pcie_host_dram(),
        LinkModel::rdma_remote(),
    ];
    let sizes = [8u64, 16, 32, 64, 128, 256, 1024];
    let t = Table::new(&["link", "bytes", "latency", "eff BW"], &[18, 10, 12, 14]);
    for l in &links {
        for &s in &sizes {
            t.row(&[
                l.name.clone(),
                s.to_string(),
                format!("{}", l.round_trip(s)),
                format!("{:.3} GB/s", l.effective_bandwidth_gbps(s)),
            ]);
        }
    }
    let rdma = LinkModel::rdma_remote();
    outln!(
        "RDMA bandwidth collapse 1024B vs 8B: {:.0}x (paper: ~100x)",
        rdma.effective_bandwidth_gbps(1024) / rdma.effective_bandwidth_gbps(8)
    );
}

/// Figure 2(e): outstanding requests needed to fill each link bandwidth.
pub fn fig2e() {
    banner(
        "Fig 2(e)",
        "outstanding requests needed vs latency (64B requests)",
    );
    let latencies = [100u64, 250, 500, 1_000, 2_500, 5_000, 10_000];
    let bandwidths = [16.0, 50.0, 100.0, 200.0];
    let t = Table::new(
        &["latency", "16GB/s", "50GB/s", "100GB/s", "200GB/s"],
        &[12, 10, 10, 10, 10],
    );
    let series: Vec<Vec<(u64, f64)>> = bandwidths
        .iter()
        .map(|&b| figure_2e_series(b, 64, &latencies))
        .collect();
    for (i, &l) in latencies.iter().enumerate() {
        t.row(&[
            format!("{l} ns"),
            format!("{:.0}", series[0][i].1),
            format!("{:.0}", series[1][i].1),
            format!("{:.0}", series[2][i].1),
            format!("{:.0}", series[3][i].1),
        ]);
    }
}

/// Figure 3: end-to-end breakdown and the storage-vs-model observation.
pub fn fig3() {
    banner("Fig 3", "end-to-end LSD-GNN characterization (Table 3 app)");
    let m = E2eModel::default();
    let t = Table::new(
        &[
            "mode",
            "sampling",
            "embedding",
            "gnn",
            "end-model",
            "sampling %",
        ],
        &[12, 12, 12, 10, 12, 14],
    );
    for (label, train) in [("training", true), ("inference", false)] {
        let b = m.breakdown(train);
        t.row(&[
            label.to_string(),
            format!("{:.2}ms", b.sampling_s * 1e3),
            format!("{:.2}ms", b.embedding_s * 1e3),
            format!("{:.2}ms", b.gnn_s * 1e3),
            format!("{:.2}ms", b.end_model_s * 1e3),
            pct(b.sampling_fraction()),
        ]);
    }
    t.note("paper: sampling is 64% of training, 88% of inference");
    let fm = FootprintModel::default();
    let ls = lsdgnn_core::graph::DatasetConfig::by_name("ls").unwrap();
    let ratio = m.storage_to_model_ratio(fm.footprint_bytes(&ls));
    outln!(
        "graph storage vs NN model: {:.1e}x ({} params vs {} GiB) — paper: ~5 orders",
        ratio,
        m.model_params(),
        fm.footprint_gib(&ls) as u64,
    );
}
