//! Micro-architecture experiments: Figure 7, Tables 5–7, Table 11, and
//! the Tech-2/Tech-3 claims.

use crate::util::{banner, outln, pct, Table};
use lsdgnn_core::axe::load_unit;
use lsdgnn_core::axe::{pipeline_batch_latency, LoadUnitConfig, PipelineSpec};
use lsdgnn_core::fpga::{sampler_savings, PocDesign, Vu13p};
use lsdgnn_core::graph::generators;
use lsdgnn_core::mof::{bdi_compress, PackingScheme};
use lsdgnn_core::riscv::{measure_interaction_cost, InteractionStyle};
use lsdgnn_core::sampler::{quality, NeighborSampler, StandardSampler, StreamingSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Figure 7: measured performance (latency) versus pipeline depth.
pub fn fig7() {
    banner("Fig 7", "batch latency vs GetNeighbor pipeline depth");
    let items = 512u64;
    let work = 16u64;
    let t = Table::new(&["depth", "latency (cyc)", "speedup"], &[8, 16, 12]);
    let base = pipeline_batch_latency(&PipelineSpec::new(work, 1, 8), items);
    for depth in [1u32, 2, 4, 8, 16] {
        let l = pipeline_batch_latency(&PipelineSpec::new(work, depth, 8), items);
        t.row(&[
            depth.to_string(),
            l.to_string(),
            format!("{:.2}x", base as f64 / l as f64),
        ]);
    }
    t.note("deeper pipeline -> better performance, as in the paper");
}

/// Table 5: MoF packing versus Gen-Z.
pub fn table5() {
    banner(
        "Table 5",
        "bandwidth utilization vs Gen-Z multi-read packing",
    );
    let t = Table::new(
        &["scheme", "request", "pkgs", "header", "addr", "data (util)"],
        &[10, 14, 10, 10, 10, 14],
    );
    for &size in &[16u64, 64] {
        for (name, scheme) in [
            ("genz", PackingScheme::GenZ),
            ("proposed", PackingScheme::Mof),
        ] {
            let b = scheme.breakdown(128, size);
            let pkgs = match scheme {
                PackingScheme::GenZ => b.request_packages + b.response_packages,
                PackingScheme::Mof => b.request_packages,
            };
            t.row(&[
                name.to_string(),
                format!("128x{size}B"),
                pkgs.to_string(),
                pct(b.header_fraction()),
                pct(b.address_fraction()),
                pct(b.data_fraction()),
            ]);
        }
    }
    t.note("paper: genz 64 pkgs / 32.65% & 65.98% util; proposed 2 pkgs / 78.11% & 94.03%");
}

/// Table 6: BDI compression on a 128 x 8B read package.
pub fn table6() {
    banner("Table 6", "BDI compression on 8B x 128 read package");
    // The batch: 128 reads of 8 B each from one sampling region —
    // addresses stride by the attribute size, data words share high bits.
    let addrs: Vec<u64> = (0..128u64).map(|i| 0x7F00_0000_0000 + i * 288).collect();
    let data: Vec<u64> = (0..128u64).map(|i| 1_000_000 + i * 37).collect();

    let genz = PackingScheme::GenZ.breakdown(128, 8).total_bytes();
    let mof = PackingScheme::Mof.breakdown(128, 8).total_bytes();

    let data_raw = 128 * 8;
    let data_comp = bdi_compress(&data).compressed_bytes();
    let mof_dcomp = mof - data_raw + data_comp;

    // Address compression: the 4B offsets inside request packages compress
    // further with BDI over the offset stream.
    let addr_raw = 2 * (8 + 4 * 64); // offsets in the two request packages
    let addr_comp = bdi_compress(&addrs).compressed_bytes();
    let mof_acomp = mof_dcomp - addr_raw.min(mof_dcomp) + addr_comp.min(addr_raw);

    let t = Table::new(&["configuration", "bytes to send", "saving"], &[26, 14, 10]);
    let mut prev = genz;
    for (name, bytes) in [
        ("GENZ", genz),
        ("MoF", mof),
        ("MoF w/ data comp.", mof_dcomp),
        ("MoF w/ addr comp.", mof_acomp),
    ] {
        let saving = if bytes < prev {
            format!("{:.0}%", 100.0 * (prev - bytes) as f64 / prev as f64)
        } else {
            "-".into()
        };
        t.row(&[name.to_string(), bytes.to_string(), saving]);
        prev = bytes;
    }
    t.note("paper: 6336 -> 1600 -> 864 -> 779 bytes");
}

/// Table 7: QRCH versus MMIO and tightly-coupled ISA extension.
pub fn table7() {
    banner(
        "Table 7",
        "accelerator interaction styles (measured on RV32 interpreter)",
    );
    let t = Table::new(
        &[
            "style",
            "cyc/interaction",
            "programmability",
            "extensibility",
        ],
        &[10, 18, 24, 16],
    );
    for (name, style) in [
        ("MMIO", InteractionStyle::Mmio),
        ("ISA-ext", InteractionStyle::IsaExt),
        ("QRCH", InteractionStyle::Qrch),
    ] {
        let cost = measure_interaction_cost(style, 500);
        t.row(&[
            name.to_string(),
            format!("{cost:.1}"),
            style.programmability().to_string(),
            style.extensibility().to_string(),
        ]);
    }
    t.note("paper: MMIO ~100 cyc, ISA-ext ~1 cyc, QRCH ~10 cyc");
}

/// Tech-2: streaming sampling — cycles, resources, model quality.
pub fn tech2() {
    banner("Tech-2", "streaming step-based sampling vs conventional");
    let (n, k) = (1_000usize, 100usize);
    let t = Table::new(&["sampler", "cycles", "buffer entries"], &[14, 10, 16]);
    t.row(&[
        "conventional".into(),
        StandardSampler.cycles(n, k).to_string(),
        StandardSampler.buffer_entries(n).to_string(),
    ]);
    t.row(&[
        "streaming".into(),
        StreamingSampler.cycles(n, k).to_string(),
        "0".into(),
    ]);
    let (lut, reg) = sampler_savings();
    outln!(
        "sampler resource saving: {} LUTs, {} registers (paper: 91.9% / 23%)",
        pct(lut),
        pct(reg)
    );
    let (g, labels) = generators::two_community(600, 0.08, 0.02, 3);
    let mut rng = SmallRng::seed_from_u64(4);
    let cmp = quality::compare_streaming_vs_standard(&mut rng, &g, &labels, 10);
    outln!(
        "proxy-task accuracy: standard {:.3}, streaming {:.3} (paper PPI: 0.549 vs 0.548)",
        cmp.standard_accuracy,
        cmp.streaming_accuracy
    );
}

/// Tech-3: OoO load unit throughput gain.
pub fn tech3() {
    banner("Tech-3", "OoO massive outstanding requests vs in-order");
    let t = Table::new(&["tags", "throughput", "speedup"], &[12, 16, 12]);
    let base = load_unit::simulate_stream(&LoadUnitConfig::in_order(), 2_000, 1_100, 1_400, 5);
    for tags in [1usize, 8, 16, 32, 64, 128] {
        let r = load_unit::simulate_stream(&LoadUnitConfig::ooo(tags), 2_000, 1_100, 1_400, 5);
        t.row(&[
            tags.to_string(),
            format!("{:.4} req/cyc", r.throughput),
            format!("{:.1}x", r.throughput / base.throughput),
        ]);
    }
    t.note("paper: OoO design improves throughput by ~30x");
}

/// Table 11: VU13P resource utilization of the PoC design.
pub fn table11() {
    banner(
        "Table 11",
        "resource utilization of VU13P (PoC configuration)",
    );
    let u = PocDesign::table10()
        .resources()
        .utilization(&Vu13p::default());
    let t = Table::new(
        &["CLBs", "LUTs", "CLB Reg", "BRAM", "URAM", "DSP"],
        &[10, 10, 10, 10, 10, 10],
    );
    t.row(&[
        format!("{:.2}%", u.clb_pct),
        format!("{:.2}%", u.lut_pct),
        format!("{:.2}%", u.reg_pct),
        format!("{:.2}%", u.bram_pct),
        format!("{:.2}%", u.uram_pct),
        format!("{:.2}%", u.dsp_pct),
    ]);
    t.note("paper: 60.53% / 35.07% / 22.48% / 39.29% / 40.00% / 12.50%");
    let max = PocDesign::table10().max_cores_fitting(&Vu13p::default());
    outln!("scale-up headroom: up to {max} AxE cores fit the device");
}
