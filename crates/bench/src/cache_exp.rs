//! `bench cache` — the sharded two-tier hot-set cache earning its keep
//! on the remote data plane.
//!
//! The sweep is zipf-skew × capacity × {cache-off, attr-only,
//! attr+neigh} over a hash-spread 4-partition cluster whose hot set
//! lives mostly on *remote* partitions — the placement a freshly
//! ingested graph actually has, and the one where every hot lookup pays
//! a channel round trip unless a cache absorbs it. Each arm replays the
//! same seeded request stream: a warm phase (counters snapshotted and
//! subtracted, so the reported numbers describe steady state, not cold
//! start) and a measured phase whose sample digests and gathered
//! attribute rows are folded into one fingerprint per arm.
//!
//! Legs beyond the sweep, all at the reference cell (highest skew,
//! modest capacity):
//!
//! * **timed** — serving throughput, cache-off vs both tiers, best of
//!   three runs; `LSDGNN_CACHE_OMIT_TIMING=1` zeroes the wall-clock
//!   fields so `--jobs` parity can compare artifacts byte-for-byte.
//! * **wire** — the same traffic through [`WireConfig`]-metered arms:
//!   cache hits skip the remote leg *and* its byte accounting, so
//!   sampling-leg response bytes must drop with the neighbor-tier hit
//!   rate.
//! * **observed** — a warm cached backend behind an instrumented
//!   [`SamplingService`]; the tail-blame report must attribute time to
//!   the `cache_hit` stage (the ledger knows where the skipped legs
//!   went).
//!
//! In-binary gates (also in `BENCH_cache.json` for CI): `digests_match`
//! (every cache arm byte-identical to cache-off), `remote_cut_ok`
//! (≥ 2× fewer remote requests at the reference cell), `speedup_ok`
//! (≥ 1.3× serving throughput with both tiers, full mode),
//! `wire_cut_ok` (sampling-leg wire bytes drop with the hit rate), and
//! `cache_hit_blamed`.

use crate::dataplane::fold;
use crate::util::{outln, par_map, Table};
use lsdgnn_core::chaos::plan::fnv1a;
use lsdgnn_core::framework::{
    CacheConfig, CpuBackend, ObsConfig, Observability, RequestStats, SampleRequest,
    SamplingBackend, SamplingService, ServiceConfig, TierSnapshot, WireConfig,
};
use lsdgnn_core::graph::{generators, AttributeStore, NodeId, PartitionedGraph};
use lsdgnn_core::telemetry::ledger::Stage;
use lsdgnn_core::telemetry::Json;
use std::time::{Duration, Instant};

/// Graph size is fixed (not `LSDGNN_SCALE`) so the committed artifact
/// replays identically in any environment.
const GRAPH_NODES: u64 = 40_000;
const PARTITIONS: u32 = 4;
const ATTR_LEN: usize = 32;
/// The hot head starts away from the preferential-attachment hubs: hot
/// nodes have ordinary degrees, so the cacheable working set (hot nodes
/// plus their sampled children) stays small relative to the graph and a
/// *modest* capacity can hold it.
const HOT_BASE: u64 = 5_000;
const HOT_SET: u64 = 128;
const ROOTS_PER_REQ: u64 = 8;
/// One-hop requests: the serving unit is root lists + the final
/// frontier's adjacency + attribute rows — the loop a multi-hop
/// pipeline repeats. Its working set is `hot ∪ N(hot)`, which a modest
/// capacity can actually learn; deeper hops only append an `N²(hot)`
/// tail that no honest capacity holds, diluting every arm equally.
const HOPS: u32 = 1;
const FANOUT: usize = 8;

/// The warm phase must cover the cacheable working set — the hot head
/// plus its *sampled* children, which per-request fanout draws only
/// reveal a few dozen at a time.
const WARM_REQUESTS: u64 = 160;
const QUICK_WARM_REQUESTS: u64 = 64;
const MEASURE_REQUESTS: u64 = 128;
const QUICK_MEASURE_REQUESTS: u64 = 40;
const TIMED_REQUESTS: u64 = 192;
const QUICK_TIMED_REQUESTS: u64 = 48;
/// Timed runs per arm; the minimum survives a noisy box.
const TIMED_RUNS: usize = 3;
const TIMED_CHUNK: usize = 16;
/// Requests through the observed service (after a direct warm phase).
const OBS_REQUESTS: u64 = 48;

/// Reference cell for the gates: the most skewed traffic at a capacity
/// of ~10% of the graph.
const REF_CAPACITY: usize = 4_096;

fn graph() -> (PartitionedGraph, u64) {
    // Uniform degrees: every hot node has a full, diverse neighbor list,
    // so the cacheable working set is `hot × degree` distinct lists —
    // big enough to be a real cache problem, small enough that a modest
    // capacity can learn it. (Preferential-attachment graphs collapse
    // mid-id neighborhoods onto a handful of hubs, which makes *any*
    // cache look perfect.)
    let g = generators::uniform_random(GRAPH_NODES, 12, 77);
    let a = AttributeStore::synthetic(GRAPH_NODES, ATTR_LEN, 77);
    // Hash-spread placement: the hot head lands ~1/PARTITIONS local,
    // the rest remote — nothing is co-located for free.
    let assignment: Vec<u32> = (0..g.num_nodes())
        .map(|v| {
            let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h >> 32) as u32 % PARTITIONS
        })
        .collect();
    let nodes = g.num_nodes();
    (
        PartitionedGraph::with_assignment(g, assignment).with_attributes(a),
        nodes,
    )
}

fn mix(v: u64) -> u64 {
    let mut x = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// `hot_pct` of roots land on the hot head, the rest uniform — the
/// zipf-skew axis of the sweep.
fn root(seed: u64, i: u64, hot_pct: u64) -> NodeId {
    let x = mix(seed.wrapping_mul(0x9e37).wrapping_add(i).wrapping_add(1));
    if x % 100 < hot_pct {
        NodeId(HOT_BASE + (x >> 32) % HOT_SET)
    } else {
        NodeId((x >> 7) % GRAPH_NODES)
    }
}

fn request(seed: u64, hot_pct: u64) -> SampleRequest {
    SampleRequest {
        roots: (0..ROOTS_PER_REQ).map(|i| root(seed, i, hot_pct)).collect(),
        hops: HOPS,
        fanout: FANOUT,
        seed,
    }
}

fn tier_delta(now: Option<TierSnapshot>, then: Option<TierSnapshot>) -> TierSnapshot {
    let (a, b) = (now.unwrap_or_default(), then.unwrap_or_default());
    TierSnapshot {
        hits: a.hits - b.hits,
        misses: a.misses - b.misses,
        admits: a.admits - b.admits,
        evicts: a.evicts - b.evicts,
        rejects: a.rejects - b.rejects,
        partition_saves: a.partition_saves - b.partition_saves,
        // Residency is a point-in-time reading, not a delta.
        bytes: a.bytes,
        entries: a.entries,
    }
}

/// One measured sweep point.
struct Arm {
    label: &'static str,
    digest: u64,
    /// Per-partition dispatches in the measured (post-warm) phase.
    remote: u64,
    stats: RequestStats,
    neigh: Option<TierSnapshot>,
    attr: Option<TierSnapshot>,
}

/// Replays the warm + measured request streams for `hot_pct` traffic
/// through `backend`, returning the measured-phase fingerprint and
/// steady-state counter deltas.
fn run_arm(label: &'static str, backend: &CpuBackend, hot_pct: u64, seed: u64, quick: bool) -> Arm {
    let warm = if quick {
        QUICK_WARM_REQUESTS
    } else {
        WARM_REQUESTS
    };
    let measure = if quick {
        QUICK_MEASURE_REQUESTS
    } else {
        MEASURE_REQUESTS
    };
    let mut fetch = Vec::new();
    let mut rows = Vec::new();
    let mut slots = Vec::new();
    let mut serve = |s: u64, digest: &mut u64| {
        let block = backend.sample_block(&request(seed ^ s, hot_pct));
        *digest = fold(*digest, block.digest());
        fetch.clear();
        block.attr_fetch_into(&mut fetch);
        backend.gather_attr_rows(&fetch, &mut rows, &mut slots);
        let mut bytes = Vec::with_capacity(rows.len() * 4);
        for v in &rows {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        *digest = fold(*digest, fnv1a(&bytes));
        backend.recycle(block);
    };
    let mut sink = 0u64;
    for s in 0..warm {
        serve(s, &mut sink);
    }
    let s0 = backend.stats();
    let c0 = backend.cache_snapshot();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for s in warm..warm + measure {
        serve(s, &mut digest);
    }
    let s1 = backend.stats();
    let c1 = backend.cache_snapshot();
    let (neigh, attr) = match (c0, c1) {
        (Some(a), Some(b)) => (
            a.neigh.map(|_| tier_delta(b.neigh, a.neigh)),
            a.attr.map(|_| tier_delta(b.attr, a.attr)),
        ),
        _ => (None, None),
    };
    Arm {
        label,
        digest,
        remote: s1.remote_requests - s0.remote_requests,
        stats: s1,
        neigh,
        attr,
    }
}

/// Serves `n` requests (sample + attribute gather) to fill both tiers
/// before a leg that grades steady state.
fn warm_backend(backend: &CpuBackend, hot_pct: u64, seed: u64, n: u64) {
    let mut fetch = Vec::new();
    let mut rows = Vec::new();
    let mut slots = Vec::new();
    for s in 0..n {
        let block = backend.sample_block(&request(seed ^ s, hot_pct));
        fetch.clear();
        block.attr_fetch_into(&mut fetch);
        backend.gather_attr_rows(&fetch, &mut rows, &mut slots);
        backend.recycle(block);
    }
}

fn both_tiers(cap: usize) -> CacheConfig {
    CacheConfig {
        neigh_capacity: cap,
        attr_capacity: cap,
        ..CacheConfig::default()
    }
}

struct Cell {
    hot_pct: u64,
    capacity: usize,
    arms: Vec<Arm>,
}

/// Runs one (skew, capacity) cell: cache-off, attr-only, attr+neigh.
fn run_cell(pg: &PartitionedGraph, hot_pct: u64, capacity: usize, seed: u64, quick: bool) -> Cell {
    let off = CpuBackend::from_partitioned(pg.clone());
    let attr_only = CpuBackend::from_partitioned_cached(
        pg.clone(),
        CacheConfig::with_capacity(capacity).attr_only(),
    );
    let both = CpuBackend::from_partitioned_cached(pg.clone(), both_tiers(capacity));
    Cell {
        hot_pct,
        capacity,
        arms: vec![
            run_arm("off", &off, hot_pct, seed, quick),
            run_arm("attr", &attr_only, hot_pct, seed, quick),
            run_arm("attr+neigh", &both, hot_pct, seed, quick),
        ],
    }
}

/// Timed serving pass: `timed` requests in `TIMED_CHUNK`-sized
/// `sample_many` dispatches plus per-block attribute gathers, on an
/// already-warm backend. Returns requests/sec, best of [`TIMED_RUNS`].
fn throughput(backend: &CpuBackend, hot_pct: u64, seed: u64, timed: u64) -> f64 {
    let mut fetch = Vec::new();
    let mut rows = Vec::new();
    let mut slots = Vec::new();
    let mut best = 0.0f64;
    for run in 0..TIMED_RUNS {
        let reqs: Vec<SampleRequest> = (0..timed)
            .map(|s| request(seed ^ 0x5eed ^ (run as u64) << 32 ^ s, hot_pct))
            .collect();
        let t0 = Instant::now();
        for chunk in reqs.chunks(TIMED_CHUNK) {
            let refs: Vec<&SampleRequest> = chunk.iter().collect();
            for block in backend.sample_many(&refs) {
                fetch.clear();
                block.attr_fetch_into(&mut fetch);
                backend.gather_attr_rows(&fetch, &mut rows, &mut slots);
                backend.recycle(block);
            }
        }
        best = best.max(timed as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

/// Wire-metered pair at the reference cell: the cached arm's
/// sampling-leg bytes must drop with the neighbor-tier hit rate, and
/// its digest must still equal the unwired cache-off fingerprint.
struct WireLegResult {
    off_bytes: u64,
    cached_bytes: u64,
    reduction: f64,
    neigh_hit_rate: f64,
    digest: u64,
}

fn wire_leg(pg: &PartitionedGraph, hot_pct: u64, seed: u64, quick: bool) -> WireLegResult {
    let run = |backend: &CpuBackend| -> (u64, Arm) {
        let arm = run_arm("wired", backend, hot_pct, seed, quick);
        let snap = backend.wire_snapshot().unwrap_or_default();
        (snap.sampling_raw_response_bytes, arm)
    };
    let off = CpuBackend::from_partitioned_wired(pg.clone(), WireConfig::default());
    let (off_total, _off_arm) = run(&off);
    let cached = CpuBackend::from_partitioned_wired_cached(
        pg.clone(),
        WireConfig::default(),
        both_tiers(REF_CAPACITY),
    );
    let (cached_total, arm) = run(&cached);
    // Totals cover warm + measured phases — both arms replay the same
    // stream, so the ratio is still the cache's doing.
    let neigh = arm.neigh.unwrap_or_default();
    WireLegResult {
        off_bytes: off_total,
        cached_bytes: cached_total,
        reduction: 1.0 - cached_total as f64 / off_total.max(1) as f64,
        neigh_hit_rate: neigh.hit_rate(),
        digest: arm.digest,
    }
}

/// Observed leg: a warm cached backend behind an instrumented service;
/// returns whether tail blame attributes time to `cache_hit`, plus the
/// stage's share for the report.
fn observed_leg(pg: &PartitionedGraph, hot_pct: u64, seed: u64, quick: bool) -> (bool, f64, u64) {
    let backend = CpuBackend::from_partitioned_cached(pg.clone(), both_tiers(REF_CAPACITY));
    let warm = if quick {
        QUICK_WARM_REQUESTS
    } else {
        WARM_REQUESTS
    };
    warm_backend(&backend, hot_pct, seed, warm);
    let ob = Observability::new(ObsConfig::default());
    let svc = SamplingService::start_observed(
        Box::new(backend),
        ServiceConfig {
            workers: 2,
            max_batch: 4,
            batch_deadline: Duration::from_micros(200),
            ..ServiceConfig::default()
        },
        None,
        None,
        Some(ob.clone()),
    );
    let tickets: Vec<_> = (0..OBS_REQUESTS)
        .map(|s| svc.submit(request(seed ^ s, hot_pct)))
        .collect();
    for t in tickets {
        t.wait_reply();
    }
    let snap = ob.ledger().snapshot();
    svc.shutdown();
    // Quantile 0: the whole population is the tail, so the attribution
    // depends only on which stages ran, not on wall-clock ordering.
    let blame = snap.blame(0.0);
    let hit_stage = blame.stages.iter().find(|s| s.stage == Stage::CacheHit);
    let share = hit_stage.map_or(0.0, |s| s.share);
    let events = hit_stage.map_or(0, |s| s.events);
    (hit_stage.is_some(), share, events)
}

fn hex(d: u64) -> String {
    format!("{d:#018x}")
}

fn tier_json(t: &Option<TierSnapshot>) -> Json {
    match t {
        None => Json::Null,
        Some(t) => Json::Obj(vec![
            ("hits".to_string(), Json::Num(t.hits as f64)),
            ("misses".to_string(), Json::Num(t.misses as f64)),
            ("hit_rate".to_string(), Json::Num(t.hit_rate())),
            ("admits".to_string(), Json::Num(t.admits as f64)),
            ("evicts".to_string(), Json::Num(t.evicts as f64)),
            ("rejects".to_string(), Json::Num(t.rejects as f64)),
            ("entries".to_string(), Json::Num(t.entries as f64)),
            ("bytes".to_string(), Json::Num(t.bytes as f64)),
        ]),
    }
}

fn arm_json(a: &Arm) -> Json {
    Json::Obj(vec![
        ("arm".to_string(), Json::Str(a.label.to_string())),
        ("digest".to_string(), Json::Str(hex(a.digest))),
        ("remote_requests".to_string(), Json::Num(a.remote as f64)),
        (
            "local_requests".to_string(),
            Json::Num(a.stats.local_requests as f64),
        ),
        ("neigh".to_string(), tier_json(&a.neigh)),
        ("attr".to_string(), tier_json(&a.attr)),
    ])
}

/// Runs the sweep and writes the artifact to `out`.
pub fn cache(quick: bool, seed: u64, out: &str) {
    let omit_timing = std::env::var("LSDGNN_CACHE_OMIT_TIMING").is_ok();
    let skews: &[u64] = if quick { &[60, 98] } else { &[60, 85, 98] };
    let caps: &[usize] = if quick {
        &[256, REF_CAPACITY]
    } else {
        &[256, 1_024, REF_CAPACITY]
    };
    let ref_skew = *skews.last().unwrap();
    outln!(
        "cache sweep: seed {seed}, skew {skews:?} x capacity {caps:?} x \
         {{off, attr, attr+neigh}} on {GRAPH_NODES} nodes / {PARTITIONS} partitions \
         (hash-spread placement){}",
        if omit_timing { " (timing omitted)" } else { "" }
    );
    let (pg, _) = graph();

    let mut inputs = Vec::new();
    for &s in skews {
        for &c in caps {
            inputs.push((s, c));
        }
    }
    let cells = par_map(inputs, |(s, c)| run_cell(&pg, s, c, seed, quick));

    let table = Table::new(
        &[
            "cell", "arm", "remote", "n-hit", "a-hit", "admits", "evicts", "saves",
        ],
        &[16, 12, 8, 7, 7, 8, 8, 6],
    );
    for cell in &cells {
        for a in &cell.arms {
            let n = a.neigh.unwrap_or_default();
            let t = a.attr.unwrap_or_default();
            table.row(&[
                format!("hot{}%/cap{}", cell.hot_pct, cell.capacity),
                a.label.to_string(),
                format!("{}", a.remote),
                format!("{:.2}", n.hit_rate()),
                format!("{:.2}", t.hit_rate()),
                format!("{}", n.admits + t.admits),
                format!("{}", n.evicts + t.evicts),
                format!("{}", n.partition_saves + t.partition_saves),
            ]);
        }
    }
    table.note("remote = per-partition dispatches in the measured (post-warm) phase");

    // -- gate: every cache arm reproduces the cache-off fingerprint.
    let digests_match = cells.iter().all(|c| {
        let off = c.arms[0].digest;
        c.arms.iter().all(|a| a.digest == off)
    });
    assert!(
        digests_match,
        "a cache arm diverged from the cache-off fingerprint: the cache changed an answer"
    );

    // -- gate: ≥ 2× fewer remote dispatches at the reference cell.
    let ref_cell = cells
        .iter()
        .find(|c| c.hot_pct == ref_skew && c.capacity == REF_CAPACITY)
        .expect("reference cell swept");
    let (ref_off, ref_both) = (ref_cell.arms[0].remote, ref_cell.arms[2].remote);
    let remote_cut = ref_off as f64 / ref_both.max(1) as f64;
    let remote_cut_ok = remote_cut >= 2.0;
    assert!(
        remote_cut_ok,
        "remote dispatches only cut {remote_cut:.2}x at the reference cell \
         ({ref_off} -> {ref_both}); the gate demands 2x"
    );

    // -- timed leg at the reference cell.
    let timed = if quick {
        QUICK_TIMED_REQUESTS
    } else {
        TIMED_REQUESTS
    };
    let (rps_off, rps_both, speedup) = if omit_timing {
        (0.0, 0.0, 0.0)
    } else {
        let off = CpuBackend::from_partitioned(pg.clone());
        let both = CpuBackend::from_partitioned_cached(pg.clone(), both_tiers(REF_CAPACITY));
        // Warm the cached arm before timing it — the sweep grades
        // steady state, and so does the throughput claim.
        let warm = if quick {
            QUICK_WARM_REQUESTS
        } else {
            WARM_REQUESTS
        };
        warm_backend(&both, ref_skew, seed, warm);
        let rps_off = throughput(&off, ref_skew, seed, timed);
        let rps_both = throughput(&both, ref_skew, seed, timed);
        (rps_off, rps_both, rps_both / rps_off)
    };
    let speedup_floor = if quick { 1.0 } else { 1.3 };
    let speedup_ok = omit_timing || speedup >= speedup_floor;
    assert!(
        speedup_ok,
        "both-tier serving only reached {speedup:.2}x over cache-off; \
         the gate demands {speedup_floor}x"
    );

    // -- wire leg at the reference cell.
    let wire = wire_leg(&pg, ref_skew, seed, quick);
    let wire_cut_ok = wire.digest == ref_cell.arms[0].digest
        && wire.reduction > 0.0
        && wire.reduction >= 0.5 * wire.neigh_hit_rate;
    assert!(
        wire_cut_ok,
        "sampling-leg wire bytes fell {:.1}% against a {:.1}% neighbor hit rate \
         (off {} B, cached {} B): hits must skip the wire accounting",
        wire.reduction * 100.0,
        wire.neigh_hit_rate * 100.0,
        wire.off_bytes,
        wire.cached_bytes
    );

    // -- observed leg: blame knows about the cache. The boolean is
    // stable; the share and event count ride on wall-clock batching, so
    // they zero with the rest of the timing fields.
    let (cache_hit_blamed, blame_share, blame_traces) = observed_leg(&pg, ref_skew, seed, quick);
    let (blame_share, blame_traces) = if omit_timing {
        (0.0, 0)
    } else {
        (blame_share, blame_traces)
    };
    assert!(
        cache_hit_blamed,
        "the tail-blame report never attributed time to cache_hit on a warm cache"
    );

    outln!(
        "  reference cell hot{ref_skew}%/cap{REF_CAPACITY}: remote cut {remote_cut:.2}x, \
         wire bytes -{:.1}% (neigh hit {:.2}), cache_hit blamed over {blame_traces} events",
        wire.reduction * 100.0,
        wire.neigh_hit_rate
    );
    if !omit_timing {
        outln!(
            "  throughput: off {rps_off:.0} req/s, attr+neigh {rps_both:.0} req/s \
             ({speedup:.2}x)"
        );
    }
    outln!(
        "  gates: digests_match {digests_match}, remote_cut_ok {remote_cut_ok}, \
         speedup_ok {speedup_ok}, wire_cut_ok {wire_cut_ok}, cache_hit_blamed {cache_hit_blamed}"
    );

    // -- artifact.
    let cell_rows: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("hot_pct".to_string(), Json::Num(c.hot_pct as f64)),
                ("capacity".to_string(), Json::Num(c.capacity as f64)),
                (
                    "arms".to_string(),
                    Json::Arr(c.arms.iter().map(arm_json).collect()),
                ),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("bench".to_string(), Json::Str("cache".to_string())),
        ("quick".to_string(), Json::Bool(quick)),
        ("seed".to_string(), Json::Num(seed as f64)),
        ("graph_nodes".to_string(), Json::Num(GRAPH_NODES as f64)),
        ("partitions".to_string(), Json::Num(PARTITIONS as f64)),
        ("attr_len".to_string(), Json::Num(ATTR_LEN as f64)),
        ("timing_omitted".to_string(), Json::Bool(omit_timing)),
        ("cells".to_string(), Json::Arr(cell_rows)),
        (
            "reference".to_string(),
            Json::Obj(vec![
                ("hot_pct".to_string(), Json::Num(ref_skew as f64)),
                ("capacity".to_string(), Json::Num(REF_CAPACITY as f64)),
                ("remote_cut".to_string(), Json::Num(remote_cut)),
                ("rps_off".to_string(), Json::Num(rps_off)),
                ("rps_both".to_string(), Json::Num(rps_both)),
                ("speedup".to_string(), Json::Num(speedup)),
            ]),
        ),
        (
            "wire".to_string(),
            Json::Obj(vec![
                (
                    "off_sampling_raw_bytes".to_string(),
                    Json::Num(wire.off_bytes as f64),
                ),
                (
                    "cached_sampling_raw_bytes".to_string(),
                    Json::Num(wire.cached_bytes as f64),
                ),
                ("reduction".to_string(), Json::Num(wire.reduction)),
                ("neigh_hit_rate".to_string(), Json::Num(wire.neigh_hit_rate)),
            ]),
        ),
        (
            "observed".to_string(),
            Json::Obj(vec![
                ("blame_share".to_string(), Json::Num(blame_share)),
                ("blame_traces".to_string(), Json::Num(blame_traces as f64)),
            ]),
        ),
        (
            "gates".to_string(),
            Json::Obj(vec![
                ("digests_match".to_string(), Json::Bool(digests_match)),
                ("remote_cut_ok".to_string(), Json::Bool(remote_cut_ok)),
                ("speedup_ok".to_string(), Json::Bool(speedup_ok)),
                ("wire_cut_ok".to_string(), Json::Bool(wire_cut_ok)),
                ("cache_hit_blamed".to_string(), Json::Bool(cache_hit_blamed)),
            ]),
        ),
    ]);
    std::fs::write(out, doc.render()).expect("write cache bench json");
    outln!("wrote {out}");
}
