//! `bench traffic` — overload-robust serving under bursty open-loop
//! traffic: the burstiness × tenant-mix × policy sweep plus a live
//! shaped-service leg.
//!
//! **Simulation leg** — every cell generates a seeded [`TrafficTrace`]
//! (diurnal envelope × b-model burst cascade × a multi-tenant request
//! mix) calibrated to ~90% of a 4-card fleet's modeled capacity, then
//! replays it through three policy arms of the virtual-time simulator:
//!
//! 1. `fixed/no-admission` — today's service shape: one merged FIFO, a
//!    fixed batch growth timer, a static fleet;
//! 2. `slack+admission` — per-tenant token buckets, bounded priority
//!    lanes with best-effort brownout shedding, slack-driven batch close,
//!    same static fleet;
//! 3. `+autoscaler` — arm 2 with the hysteresis card autoscaler, scored
//!    by [`CostModel`] as cost per million SLO-met requests.
//!
//! **Live leg** — two runs over a real [`SamplingService`] on a CPU
//! cluster backend: (a) the no-shaping gate, a [`ShapedService`] with an
//! unlimited admission config whose reply digest must equal the plain
//! service's byte-for-byte (overload control is pay-for-what-you-use);
//! (b) an open-loop trace replay through bucket-limited admission, whose
//! verdict counts are a pure function of the trace's virtual arrival
//! times and therefore replay identically at any `--jobs` count.
//!
//! Wall-clock observations live in `observed` blocks;
//! `LSDGNN_TRAFFIC_OMIT_TIMING=1` zeroes them so determinism tests can
//! compare whole artifacts byte-for-byte.
//!
//! In-binary gates (also in the artifact for CI): `digests_match`,
//! `slo_met_improved` (strictly better interactive SLO attainment with
//! refusals confined to best-effort), `no_unbounded_queue`,
//! `autoscaler_cost_ok`.

use crate::util::{outln, par_map, Table};
use lsdgnn_core::chaos::plan::fnv1a;
use lsdgnn_core::chaos::ChaosRng;
use lsdgnn_core::faas::autoscaler::{
    simulate, AutoscalerConfig, BatchSim, PolicyReport, Scaling, SimConfig, SimPolicy,
};
use lsdgnn_core::faas::CostModel;
use lsdgnn_core::framework::{
    AdmissionConfig, BatchPolicy, BrownoutConfig, BucketConfig, CpuBackend, Priority, SampleReply,
    SampleRequest, SamplingBackend, SamplingService, ServiceConfig, ShapedRequest, ShapedService,
    SubmitVerdict, TenantConfig, TenantSpec, TrafficConfig, TrafficTrace, CLASSES,
};
use lsdgnn_core::graph::{generators, AttributeStore, DatasetConfig, NodeId};
use std::time::{Duration, Instant};

/// Graph size for the live leg — fixed (not `LSDGNN_SCALE`) so the
/// committed artifact replays identically in any environment.
const GRAPH_NODES: u64 = 600;
/// Cluster partitions.
const PARTITIONS: u32 = 4;
/// Requests in the no-shaping digest gate.
const FULL_REQUESTS: u64 = 300;
const QUICK_REQUESTS: u64 = 80;
/// Static fleet size for the simulation arms.
const SIM_CARDS: u32 = 4;

// ---------------------------------------------------------------- sim leg

/// A named tenant mix for the simulation sweep.
struct Mix {
    name: &'static str,
    tenants: Vec<TenantSpec>,
}

fn tenant(
    name: &str,
    archetype: &str,
    class: Priority,
    weight: f64,
    deadline_us: u64,
    roots: usize,
) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        archetype: archetype.to_string(),
        class,
        weight,
        deadline_us,
        roots,
        hops: 2,
        fanout: 8,
    }
}

fn mixes(quick: bool) -> Vec<Mix> {
    let mut m = vec![
        Mix {
            name: "interactive-heavy",
            tenants: vec![
                tenant("chat", "mem-opt.tc", Priority::Interactive, 4.0, 40_000, 4),
                tenant("feed", "comm-opt.tc", Priority::Batch, 1.0, 300_000, 8),
                tenant(
                    "crawl",
                    "base.decp",
                    Priority::BestEffort,
                    1.0,
                    1_000_000,
                    8,
                ),
            ],
        },
        Mix {
            name: "mixed",
            tenants: vec![
                tenant("chat", "mem-opt.tc", Priority::Interactive, 2.0, 40_000, 4),
                tenant(
                    "rank",
                    "comm-opt.decp",
                    Priority::Interactive,
                    1.0,
                    60_000,
                    6,
                ),
                tenant("etl", "cost-opt.tc", Priority::Batch, 2.0, 300_000, 8),
                tenant(
                    "crawl",
                    "base.decp",
                    Priority::BestEffort,
                    1.0,
                    1_000_000,
                    8,
                ),
            ],
        },
    ];
    if !quick {
        m.push(Mix {
            name: "batch-heavy",
            tenants: vec![
                tenant("chat", "mem-opt.tc", Priority::Interactive, 1.0, 40_000, 4),
                tenant("etl", "cost-opt.tc", Priority::Batch, 4.0, 300_000, 8),
                tenant(
                    "crawl",
                    "base.decp",
                    Priority::BestEffort,
                    2.0,
                    1_000_000,
                    8,
                ),
            ],
        });
    }
    m
}

/// Mean modeled work (samples) of one request under the mix's weights.
fn mean_work(tenants: &[TenantSpec]) -> f64 {
    let wsum: f64 = tenants.iter().map(|t| t.weight).sum();
    tenants
        .iter()
        .map(|t| {
            let mut frontier = 1.0;
            let mut per_root = 0.0;
            for _ in 0..t.hops {
                frontier *= t.fanout as f64;
                per_root += frontier;
            }
            t.roots as f64 * per_root * t.weight / wsum
        })
        .sum()
}

/// Admission for the shaped arms: generous buckets for interactive and
/// batch tenants (the gate demands their refusals stay at zero), a tight
/// bucket on the best-effort tenant, bounded lanes, brownout shedding.
fn sim_admission(tenants: &[TenantSpec], mean_rps: f64) -> AdmissionConfig {
    let wsum: f64 = tenants.iter().map(|t| t.weight).sum();
    AdmissionConfig {
        tenants: tenants
            .iter()
            .map(|t| {
                let share = mean_rps * t.weight / wsum;
                let bucket = if t.class == Priority::BestEffort {
                    // Half this tenant's mean share: bursts hit the
                    // bucket, so rate-limit rejections land here.
                    BucketConfig {
                        rate_per_sec: share * 0.5,
                        burst: (share * 0.05).max(8.0),
                    }
                } else {
                    BucketConfig::unlimited()
                };
                TenantConfig {
                    name: t.name.clone(),
                    bucket,
                }
            })
            .collect(),
        queue_bounds: [4096, 4096, 64],
        brownout: Some(BrownoutConfig::default()),
    }
}

struct SimCell {
    name: String,
    burstiness: f64,
    mix: &'static str,
    trace_digest: u64,
    arrivals: u64,
    peak_to_mean: f64,
    baseline: PolicyReport,
    shaped: PolicyReport,
    auto: PolicyReport,
}

fn run_sim_cell(seed: u64, quick: bool, burstiness: f64, mix: &Mix) -> SimCell {
    let sim = SimConfig::new(DatasetConfig::by_name("ll").expect("table-2 dataset"));
    let mean_rps = sim.calibrated_rps(SIM_CARDS, mean_work(&mix.tenants), 0.9);
    let trace = TrafficTrace::generate(&TrafficConfig {
        seed: seed ^ fnv1a(mix.name.as_bytes()) ^ (burstiness * 100.0) as u64,
        duration_us: if quick { 1_000_000 } else { 2_000_000 },
        mean_rps,
        diurnal_depth: 0.8,
        diurnal_cycles: 1.0,
        burstiness,
        cascade_depth: 8,
        tenants: mix.tenants.clone(),
    });
    let admission = sim_admission(&mix.tenants, mean_rps);
    let wait_us = 5_000;
    let cost = CostModel::default_fitted();
    let arm = |name: &str, admission, batch, scaling| SimPolicy {
        name: name.to_string(),
        admission,
        batch,
        scaling,
    };
    let baseline = simulate(
        &trace,
        &arm(
            "fixed/no-admission",
            None,
            BatchSim::Fixed { wait_us },
            Scaling::Static { cards: SIM_CARDS },
        ),
        &sim,
        &cost,
    );
    let shaped = simulate(
        &trace,
        &arm(
            "slack+admission",
            Some(admission.clone()),
            BatchSim::Slack { wait_us },
            Scaling::Static { cards: SIM_CARDS },
        ),
        &sim,
        &cost,
    );
    let auto = simulate(
        &trace,
        &arm(
            "slack+admission+autoscaler",
            Some(admission),
            BatchSim::Slack { wait_us },
            Scaling::Auto(AutoscalerConfig {
                min_cards: 1,
                max_cards: SIM_CARDS,
                ..AutoscalerConfig::default()
            }),
        ),
        &sim,
        &cost,
    );
    SimCell {
        name: format!("b{burstiness:.2}/{}", mix.name),
        burstiness,
        mix: mix.name,
        trace_digest: trace.digest(),
        arrivals: trace.len() as u64,
        peak_to_mean: trace.peak_rps(100_000) / trace.mean_rps().max(1e-9),
        baseline,
        shaped,
        auto,
    }
}

// --------------------------------------------------------------- live leg

fn backend() -> Box<dyn SamplingBackend> {
    let g = generators::power_law(GRAPH_NODES, 8, 31);
    let a = AttributeStore::synthetic(GRAPH_NODES, 8, 31);
    Box::new(CpuBackend::new(&g, &a, PARTITIONS))
}

fn live_config(batch: BatchPolicy) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        max_batch: 8,
        batch_deadline: Duration::from_micros(200),
        batch,
        ..ServiceConfig::default()
    }
}

fn request(seed: u64) -> SampleRequest {
    SampleRequest {
        roots: (0..8)
            .map(|r| NodeId((seed * 13 + r) % GRAPH_NODES))
            .collect(),
        hops: 2,
        fanout: 4,
        seed,
    }
}

/// FNV digest over reply content (roots, hop boundaries, node ids,
/// degraded flag) — timing-free, the replayability fingerprint.
fn digest_replies(replies: &[SampleReply]) -> u64 {
    let mut bytes = Vec::new();
    for r in replies {
        bytes.push(u8::from(r.degraded));
        bytes.extend_from_slice(&(r.block.roots.len() as u64).to_le_bytes());
        for n in &r.block.roots {
            bytes.extend_from_slice(&n.0.to_le_bytes());
        }
        bytes.extend_from_slice(&(r.block.hop_offsets.len() as u64).to_le_bytes());
        for o in &r.block.hop_offsets {
            bytes.extend_from_slice(&o.to_le_bytes());
        }
        for n in &r.block.nodes {
            bytes.extend_from_slice(&n.0.to_le_bytes());
        }
    }
    fnv1a(&bytes)
}

/// The no-shaping gate: a [`ShapedService`] with an unlimited admission
/// config must reproduce the plain service's replies byte-for-byte.
fn no_shaping_gate(requests: u64) -> (u64, u64, bool) {
    let plain = SamplingService::start(backend(), live_config(BatchPolicy::FixedDeadline));
    let tickets: Vec<_> = (0..requests).map(|s| plain.submit(request(s))).collect();
    let plain_replies: Vec<_> = tickets.into_iter().map(|t| t.wait_reply()).collect();
    let plain_digest = digest_replies(&plain_replies);
    plain.shutdown();

    let shaped = ShapedService::start(
        backend(),
        live_config(BatchPolicy::FixedDeadline),
        AdmissionConfig::unlimited(1),
        None,
    );
    let tickets: Vec<_> = (0..requests)
        .map(|s| {
            match shaped.submit(
                ShapedRequest {
                    req: request(s),
                    tenant: 0,
                    class: Priority::Interactive,
                    deadline: Duration::from_millis(100),
                },
                s * 100,
            ) {
                SubmitVerdict::Admitted(t) => t,
                v => panic!("unlimited admission refused request {s}: {v:?}"),
            }
        })
        .collect();
    let shaped_replies: Vec<_> = tickets.into_iter().map(|t| t.wait_reply()).collect();
    let shaped_digest = digest_replies(&shaped_replies);
    shaped.shutdown();
    (plain_digest, shaped_digest, plain_digest == shaped_digest)
}

fn live_mix() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "chat".to_string(),
            archetype: "mem-opt.tc".to_string(),
            class: Priority::Interactive,
            weight: 2.0,
            deadline_us: 50_000,
            roots: 6,
            hops: 2,
            fanout: 4,
        },
        TenantSpec {
            name: "etl".to_string(),
            archetype: "comm-opt.tc".to_string(),
            class: Priority::Batch,
            weight: 1.0,
            deadline_us: 200_000,
            roots: 6,
            hops: 2,
            fanout: 4,
        },
        TenantSpec {
            name: "crawl".to_string(),
            archetype: "base.decp".to_string(),
            class: Priority::BestEffort,
            weight: 1.0,
            deadline_us: 500_000,
            roots: 6,
            hops: 2,
            fanout: 4,
        },
    ]
}

struct OpenLoopResult {
    arrivals: u64,
    accepted: [u64; CLASSES],
    rejected: [u64; CLASSES],
    shed: [u64; CLASSES],
    replies_digest: u64,
    degraded: u64,
    wall_ms: f64,
}

/// Replays a seeded trace through a bucket-limited [`ShapedService`] at
/// full speed in virtual time (`now_us` = arrival timestamp): open-loop
/// — submission never waits on replies — and every verdict a pure
/// function of the trace, so counts and digest replay at any job count.
/// Lane bounds stay unbounded and brownout off here because both depend
/// on wall-clock state; the simulation leg and the unit suite cover
/// them.
fn open_loop_leg(seed: u64, quick: bool) -> OpenLoopResult {
    let tenants = live_mix();
    let trace = TrafficTrace::generate(&TrafficConfig {
        seed: seed ^ 0x4f70_656e,
        duration_us: if quick { 400_000 } else { 1_000_000 },
        mean_rps: 3_000.0,
        diurnal_depth: 0.5,
        diurnal_cycles: 1.0,
        burstiness: 0.8,
        cascade_depth: 6,
        tenants: tenants.clone(),
    });
    let admission = AdmissionConfig {
        tenants: tenants
            .iter()
            .map(|t| TenantConfig {
                name: t.name.clone(),
                bucket: if t.class == Priority::BestEffort {
                    BucketConfig {
                        rate_per_sec: 300.0,
                        burst: 30.0,
                    }
                } else {
                    BucketConfig::unlimited()
                },
            })
            .collect(),
        queue_bounds: [usize::MAX; CLASSES],
        brownout: None,
    };
    let shaped = ShapedService::start(
        backend(),
        live_config(BatchPolicy::SlackDriven {
            est_service: Duration::from_micros(500),
        }),
        admission,
        None,
    );
    let rng = ChaosRng::new(trace.seed);
    let start = Instant::now();
    let mut accepted = [0u64; CLASSES];
    let mut rejected = [0u64; CLASSES];
    let mut shed = [0u64; CLASSES];
    let mut tickets = Vec::new();
    for a in &trace.arrivals {
        let verdict = shaped.submit(
            ShapedRequest {
                req: a.request(&rng, GRAPH_NODES),
                tenant: a.tenant as usize,
                class: a.class,
                deadline: Duration::from_micros(a.deadline_us),
            },
            a.at_us,
        );
        match verdict {
            SubmitVerdict::Admitted(t) => {
                accepted[a.class.index()] += 1;
                tickets.push(t);
            }
            SubmitVerdict::Rejected { .. } => rejected[a.class.index()] += 1,
            SubmitVerdict::Shed => shed[a.class.index()] += 1,
        }
    }
    let replies: Vec<_> = tickets.into_iter().map(|t| t.wait_reply()).collect();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = shaped.admission_stats();
    shaped.shutdown();
    assert!(
        stats.bounds_respected(),
        "live lane occupancy exceeded its configured bounds"
    );
    OpenLoopResult {
        arrivals: trace.len() as u64,
        accepted,
        rejected,
        shed,
        replies_digest: digest_replies(&replies),
        degraded: replies.iter().filter(|r| r.degraded).count() as u64,
        wall_ms,
    }
}

// --------------------------------------------------------------- reporting

fn hex(d: u64) -> String {
    format!("{d:#018x}")
}

fn class_json(counts: &[u64; CLASSES]) -> Json {
    Json::Obj(
        Priority::ALL
            .iter()
            .map(|p| (p.name().to_string(), Json::Num(counts[p.index()] as f64)))
            .collect(),
    )
}

use lsdgnn_core::telemetry::Json;

fn report_json(r: &PolicyReport) -> Json {
    let classes: Vec<Json> = Priority::ALL
        .iter()
        .map(|p| {
            let c = &r.classes[p.index()];
            Json::Obj(vec![
                ("class".to_string(), Json::Str(p.name().to_string())),
                ("submitted".to_string(), Json::Num(c.submitted as f64)),
                ("admitted".to_string(), Json::Num(c.admitted as f64)),
                ("rejected".to_string(), Json::Num(c.rejected as f64)),
                ("shed".to_string(), Json::Num(c.shed as f64)),
                ("completed".to_string(), Json::Num(c.completed as f64)),
                ("slo_met".to_string(), Json::Num(c.slo_met as f64)),
                ("degraded".to_string(), Json::Num(c.degraded as f64)),
                ("slo_rate".to_string(), Json::Num(r.slo_rate(*p))),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("policy".to_string(), Json::Str(r.policy.clone())),
        ("steps".to_string(), Json::Num(r.steps as f64)),
        ("cards_mean".to_string(), Json::Num(r.cards_mean)),
        ("cards_max".to_string(), Json::Num(r.cards_max as f64)),
        ("scale_ups".to_string(), Json::Num(r.scale_ups as f64)),
        ("scale_downs".to_string(), Json::Num(r.scale_downs as f64)),
        (
            "max_queue".to_string(),
            Json::Arr(r.max_queue.iter().map(|&q| Json::Num(q as f64)).collect()),
        ),
        (
            "bounds_respected".to_string(),
            Json::Bool(r.bounds_respected),
        ),
        ("cost".to_string(), Json::Num(r.cost)),
        (
            "cost_per_million_slo_met".to_string(),
            Json::Num(r.cost_per_million_slo_met),
        ),
        ("classes".to_string(), Json::Arr(classes)),
    ])
}

/// Runs the sweep and writes the artifact to `out`.
pub fn traffic(quick: bool, seed: u64, out: &str) {
    let requests = if quick { QUICK_REQUESTS } else { FULL_REQUESTS };
    let omit_timing = std::env::var("LSDGNN_TRAFFIC_OMIT_TIMING").is_ok();
    outln!(
        "traffic sweep: seed {seed}, burstiness x tenant-mix x policy over a \
         {SIM_CARDS}-card modeled fleet, live legs on {GRAPH_NODES} nodes / {PARTITIONS} \
         partitions{}",
        if omit_timing { " (timing omitted)" } else { "" }
    );

    // -- live leg 1: the no-shaping digest gate.
    let (plain_digest, shaped_digest, digests_match) = no_shaping_gate(requests);
    assert!(
        digests_match,
        "unlimited ShapedService diverged from the plain service: overload control is not opt-in"
    );
    outln!(
        "  no-shaping gate: unlimited admission replays the plain service bit-identically ({})",
        hex(plain_digest)
    );

    // -- live leg 2: bucket-limited open-loop replay.
    let live = open_loop_leg(seed, quick);
    let refused_outside_best_effort: u64 = Priority::ALL
        .iter()
        .filter(|p| **p != Priority::BestEffort)
        .map(|p| live.rejected[p.index()] + live.shed[p.index()])
        .sum();
    assert_eq!(
        refused_outside_best_effort, 0,
        "live leg refused interactive or batch traffic"
    );
    assert!(
        live.rejected[Priority::BestEffort.index()] > 0,
        "live leg's best-effort bucket never rejected — the shaping arm is unloaded"
    );
    outln!(
        "  open-loop leg: {} arrivals, {} admitted / {} rejected (best-effort bucket), digest {}",
        live.arrivals,
        live.accepted.iter().sum::<u64>(),
        live.rejected.iter().sum::<u64>(),
        hex(live.replies_digest)
    );

    // -- simulation leg.
    let burst_points: &[f64] = if quick {
        &[0.6, 0.85]
    } else {
        &[0.55, 0.7, 0.85]
    };
    let mix_list = mixes(quick);
    let mut cell_inputs = Vec::new();
    for &b in burst_points {
        for m in &mix_list {
            cell_inputs.push((b, m));
        }
    }
    let cells = par_map(cell_inputs, |(b, m)| run_sim_cell(seed, quick, b, m));

    let table = Table::new(
        &[
            "cell",
            "peak/mean",
            "arm",
            "int-slo",
            "refused",
            "maxq",
            "cards",
            "$/M-met",
        ],
        &[24, 10, 26, 8, 8, 7, 6, 10],
    );
    for c in &cells {
        for r in [&c.baseline, &c.shaped, &c.auto] {
            let refused: u64 = r.classes.iter().map(|o| o.rejected + o.shed).sum();
            table.row(&[
                c.name.clone(),
                format!("{:.1}", c.peak_to_mean),
                r.policy.clone(),
                format!("{:.3}", r.slo_rate(Priority::Interactive)),
                format!("{refused}"),
                format!("{}", r.max_queue.iter().max().unwrap()),
                format!("{:.1}", r.cards_mean),
                format!("{:.1}", r.cost_per_million_slo_met),
            ]);
        }
    }
    table.note("int-slo = interactive requests meeting their deadline / offered");

    // -- gates.
    let slo_met_improved = cells.iter().all(|c| {
        c.shaped.slo_rate(Priority::Interactive) > c.baseline.slo_rate(Priority::Interactive)
            && c.shaped.refusals_outside(Priority::BestEffort) == 0
    }) && cells.iter().all(|c| {
        let be = &c.shaped.classes[Priority::BestEffort.index()];
        be.rejected + be.shed > 0
    });
    assert!(
        slo_met_improved,
        "shaping must strictly improve interactive SLO attainment with refusals confined to best-effort"
    );
    let no_unbounded_queue = cells.iter().all(|c| {
        c.baseline.max_queue[0] > *c.shaped.max_queue.iter().max().unwrap()
            && c.shaped.bounds_respected
            && c.auto.bounds_respected
    });
    assert!(
        no_unbounded_queue,
        "shaped lanes must stay bounded and below the unshaped backlog"
    );
    let autoscaler_cost_ok = cells
        .iter()
        .all(|c| c.auto.cost_per_million_slo_met <= c.shaped.cost_per_million_slo_met);
    assert!(
        autoscaler_cost_ok,
        "the autoscaler must not pay more per SLO-met request than the static fleet"
    );
    outln!(
        "  gates: digests_match {digests_match}, slo_met_improved {slo_met_improved}, \
         no_unbounded_queue {no_unbounded_queue}, autoscaler_cost_ok {autoscaler_cost_ok}"
    );

    // -- artifact.
    let zero = |v: f64| if omit_timing { 0.0 } else { v };
    let cell_rows: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("cell".to_string(), Json::Str(c.name.clone())),
                ("burstiness".to_string(), Json::Num(c.burstiness)),
                ("mix".to_string(), Json::Str(c.mix.to_string())),
                ("trace_digest".to_string(), Json::Str(hex(c.trace_digest))),
                ("arrivals".to_string(), Json::Num(c.arrivals as f64)),
                ("peak_to_mean".to_string(), Json::Num(c.peak_to_mean)),
                (
                    "arms".to_string(),
                    Json::Arr(vec![
                        report_json(&c.baseline),
                        report_json(&c.shaped),
                        report_json(&c.auto),
                    ]),
                ),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("bench".to_string(), Json::Str("traffic".to_string())),
        ("quick".to_string(), Json::Bool(quick)),
        ("seed".to_string(), Json::Num(seed as f64)),
        ("graph_nodes".to_string(), Json::Num(GRAPH_NODES as f64)),
        ("partitions".to_string(), Json::Num(PARTITIONS as f64)),
        ("sim_cards".to_string(), Json::Num(SIM_CARDS as f64)),
        ("timing_omitted".to_string(), Json::Bool(omit_timing)),
        (
            "no_shaping".to_string(),
            Json::Obj(vec![
                ("requests".to_string(), Json::Num(requests as f64)),
                ("plain_digest".to_string(), Json::Str(hex(plain_digest))),
                ("shaped_digest".to_string(), Json::Str(hex(shaped_digest))),
                ("digests_match".to_string(), Json::Bool(digests_match)),
            ]),
        ),
        (
            "open_loop".to_string(),
            Json::Obj(vec![
                ("arrivals".to_string(), Json::Num(live.arrivals as f64)),
                ("accepted".to_string(), class_json(&live.accepted)),
                ("rejected".to_string(), class_json(&live.rejected)),
                ("shed".to_string(), class_json(&live.shed)),
                (
                    "replies_digest".to_string(),
                    Json::Str(hex(live.replies_digest)),
                ),
                ("degraded".to_string(), Json::Num(live.degraded as f64)),
                (
                    "observed".to_string(),
                    Json::Obj(vec![("wall_ms".to_string(), Json::Num(zero(live.wall_ms)))]),
                ),
            ]),
        ),
        ("cells".to_string(), Json::Arr(cell_rows)),
        (
            "gates".to_string(),
            Json::Obj(vec![
                ("digests_match".to_string(), Json::Bool(digests_match)),
                ("slo_met_improved".to_string(), Json::Bool(slo_met_improved)),
                (
                    "no_unbounded_queue".to_string(),
                    Json::Bool(no_unbounded_queue),
                ),
                (
                    "autoscaler_cost_ok".to_string(),
                    Json::Bool(autoscaler_cost_ok),
                ),
            ]),
        ),
    ]);
    std::fs::write(out, doc.render()).expect("write traffic bench json");
    outln!("wrote {out}");
}
