//! `bench trace-report` — offline per-stage summary of a Chrome trace.
//!
//! Reads the trace-event JSON that `--trace-out` writes (the
//! `traceEvents` wrapper produced by `Tracer::to_chrome_json`) and
//! prints one row per span name: how often it ran, how much wall time
//! it covered, and its mean/max durations — a terminal-friendly answer
//! to "where did the time go" without opening Perfetto.
//!
//! Complete (`ph == "X"`) events aggregate by `(cat, name)`; instants
//! and counters are tallied but carry no duration.

use crate::util::{outln, Table};
use lsdgnn_core::telemetry::Json;

/// One span name's aggregate across the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Event category (`service`, `axe`, `mof`, ...).
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Complete events aggregated.
    pub count: u64,
    /// Sum of durations, µs.
    pub total_us: f64,
    /// Largest single duration, µs.
    pub max_us: f64,
}

/// Aggregates the parsed trace document into per-stage rows (complete
/// events only), longest total first, plus (instants, counters) tallies.
pub fn summarize(doc: &Json) -> (Vec<StageRow>, u64, u64) {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_default();
    let mut rows: Vec<StageRow> = Vec::new();
    let (mut instants, mut counters) = (0u64, 0u64);
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        match ph {
            "i" => instants += 1,
            "C" => counters += 1,
            "X" => {
                let cat = e
                    .get("cat")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let name = e
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                let dur = e.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
                match rows.iter_mut().find(|r| r.cat == cat && r.name == name) {
                    Some(r) => {
                        r.count += 1;
                        r.total_us += dur;
                        r.max_us = r.max_us.max(dur);
                    }
                    None => rows.push(StageRow {
                        cat,
                        name,
                        count: 1,
                        total_us: dur,
                        max_us: dur,
                    }),
                }
            }
            _ => {}
        }
    }
    rows.sort_by(|x, y| {
        y.total_us
            .partial_cmp(&x.total_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.name.cmp(&y.name))
    });
    (rows, instants, counters)
}

/// Reads `path`, prints the per-stage duration table, and exits
/// non-zero on unreadable or malformed input.
pub fn trace_report(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace-report: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("trace-report: {path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let (rows, instants, counters) = summarize(&doc);
    outln!("trace report: {path}");
    if rows.is_empty() {
        outln!("  no complete (ph=X) span events");
    } else {
        let table = Table::new(
            &["cat", "span", "count", "total_ms", "mean_us", "max_us"],
            &[9, 22, 8, 10, 10, 10],
        );
        for r in &rows {
            table.row(&[
                r.cat.clone(),
                r.name.clone(),
                r.count.to_string(),
                format!("{:.3}", r.total_us / 1e3),
                format!("{:.1}", r.total_us / r.count as f64),
                format!("{:.1}", r.max_us),
            ]);
        }
    }
    outln!("  ({instants} instants, {counters} counter samples)");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        Json::parse(text).expect("test fixture parses")
    }

    #[test]
    fn aggregates_complete_events_by_name_longest_first() {
        let d = doc(r#"{"traceEvents":[
                {"name":"dispatch","ph":"X","ts":0,"pid":4,"tid":0,"cat":"service","dur":10.0},
                {"name":"dispatch","ph":"X","ts":20,"pid":4,"tid":0,"cat":"service","dur":30.0},
                {"name":"request","ph":"X","ts":0,"pid":4,"tid":1,"cat":"service","dur":100.0},
                {"name":"submit","ph":"i","ts":1,"pid":4,"tid":0,"cat":"service","s":"t"},
                {"name":"depth","ph":"C","ts":2,"pid":1,"tid":0,"args":{"depth":3}}
            ]}"#);
        let (rows, instants, counters) = summarize(&d);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "request");
        assert_eq!(rows[0].total_us, 100.0);
        assert_eq!(rows[1].name, "dispatch");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_us, 40.0);
        assert_eq!(rows[1].max_us, 30.0);
        assert_eq!(instants, 1);
        assert_eq!(counters, 1);
    }

    #[test]
    fn tolerates_missing_wrapper_and_empty_traces() {
        let (rows, i, c) = summarize(&doc(r#"{"traceEvents":[]}"#));
        assert!(rows.is_empty() && i == 0 && c == 0);
        let (rows, _, _) = summarize(&doc(r#"{"other":1}"#));
        assert!(rows.is_empty());
    }

    #[test]
    fn report_round_trips_a_real_tracer_file() {
        use lsdgnn_core::telemetry::{pids, Tracer};
        let t = Tracer::new();
        t.span("service", "dispatch", pids::SERVICE, 0, 5.0, 40.0);
        t.span("service", "dispatch", pids::SERVICE, 0, 50.0, 10.0);
        t.instant("service", "submit", pids::SERVICE, 0, 1.0);
        let dir = std::env::temp_dir().join(format!("lsdgnn_trace_report_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trace.json");
        t.write_json(&path).expect("write trace");
        let text = std::fs::read_to_string(&path).expect("read back");
        let (rows, instants, _) = summarize(&Json::parse(&text).expect("tracer output parses"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_us, 50.0);
        assert_eq!(instants, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
