//! `bench kernel` / `bench harness` — the event-kernel throughput
//! microbenchmark and the `--jobs` wall-clock scaling benchmark.
//!
//! `kernel` drives three workloads through both event kernels — the
//! calendar-queue [`Simulation`] and the heap-based
//! [`ReferenceSimulation`] baseline — and writes the measured events/sec
//! plus speedups to `BENCH_desim_kernel.json`:
//!
//! * `schedule_heavy` — thousands of self-rescheduling chains keep a
//!   deep pending pool; every fire schedules again (the O(log n) heap
//!   worst case, the O(1) wheel best case).
//! * `cancel_heavy` — rounds of schedule / cancel-half / drain exercise
//!   the tombstone path and the arena freelist.
//! * `fig14_shaped` — per-core pipeline ticks issuing bimodal
//!   local/remote memory-latency events, shaped like the AxE engine
//!   runs behind Figure 14.
//!
//! `harness` re-executes this binary as `all --jobs {1,2,4}` on a
//! scaled-up workload, records wall-clock times to `BENCH_harness.json`
//! and reports the parallel speedup.

use crate::util::outln;
use lsdgnn_core::desim::{ReferenceSimulation, Simulation, Time};
use lsdgnn_core::telemetry::Json;
use std::time::Instant;

/// Events per workload per kernel (full mode).
const FULL_EVENTS: u64 = 2_000_000;
/// Events per workload per kernel (`--quick`, the CI smoke size).
const QUICK_EVENTS: u64 = 100_000;

/// Self-rescheduling chains kept pending in `schedule_heavy`.
const CHAINS: u64 = 16_384;

fn lcg(s: u64) -> u64 {
    s.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// Spreads delays over the low wheel levels with ~1/16 far events that
/// exercise the high levels and the overflow heap.
fn chain_delay(s: u64) -> u64 {
    let near = (s >> 33) & ((1 << 18) - 1);
    if s >> 60 == 0 {
        near | 1 << 34
    } else {
        near
    }
}

/// Generates the three workloads for one kernel type. Both kernels
/// expose the same surface (`schedule`/`cancel`/`run`/`run_bounded`), so
/// the bodies are textually identical — the macro keeps them so.
macro_rules! kernel_workloads {
    ($mod_name:ident, $sim:ty) => {
        mod $mod_name {
            use super::*;

            fn tick(sim: &mut $sim, state: u64) {
                let state = lcg(state);
                sim.schedule(
                    Time::from_ticks(chain_delay(state)),
                    move |sim: &mut $sim| tick(sim, state),
                );
            }

            /// Deep pending pool, one schedule per fire. Returns events/sec.
            pub fn schedule_heavy(events: u64) -> f64 {
                let mut sim = <$sim>::new();
                for c in 0..CHAINS {
                    tick(&mut sim, c);
                }
                let start = Instant::now();
                let fired = sim.run_bounded(events);
                fired as f64 / start.elapsed().as_secs_f64()
            }

            /// Rounds of schedule 1024 / cancel 512 / drain 512. Returns
            /// operations (schedules + cancels + fires) per second.
            pub fn cancel_heavy(events: u64) -> f64 {
                let mut sim = <$sim>::new();
                let mut state = 1u64;
                let mut ops = 0u64;
                let start = Instant::now();
                while ops < events {
                    let handles: Vec<_> = (0..1024)
                        .map(|_| {
                            state = lcg(state);
                            sim.schedule(Time::from_ticks((state >> 40) & 0xfffff), |_| {})
                        })
                        .collect();
                    for h in handles.iter().step_by(2) {
                        assert!(sim.cancel(*h), "fresh handles cancel");
                    }
                    sim.run();
                    ops += 1024 + 512 + 512;
                }
                ops as f64 / start.elapsed().as_secs_f64()
            }

            fn pipeline(sim: &mut $sim, core: u64, state: u64) {
                let state = lcg(state);
                // 250 MHz pipeline tick; each issues one memory access:
                // ~100 ns local or ~1.3 us remote (the Fig. 14 MoF mix).
                let latency = if state % 100 < 60 { 100_000 } else { 1_300_000 };
                sim.schedule(Time::from_ticks(latency), |_| {});
                sim.schedule(Time::from_ticks(4_000), move |sim: &mut $sim| {
                    pipeline(sim, core, state)
                });
            }

            /// Multi-core engine-shaped event mix. Returns events/sec.
            pub fn fig14_shaped(events: u64) -> f64 {
                let mut sim = <$sim>::new();
                for core in 0..4 {
                    pipeline(&mut sim, core, core * 77);
                }
                let start = Instant::now();
                let fired = sim.run_bounded(events);
                fired as f64 / start.elapsed().as_secs_f64()
            }
        }
    };
}

kernel_workloads!(calendar, Simulation);
kernel_workloads!(reference, ReferenceSimulation);

/// One workload driver: takes the event budget, returns events/sec.
type WorkloadFn = fn(u64) -> f64;

/// Runs the microbenchmark and writes `BENCH_desim_kernel.json`.
pub fn kernel(quick: bool) {
    let events = if quick { QUICK_EVENTS } else { FULL_EVENTS };
    outln!(
        "event-kernel microbenchmark: {events} events/workload, calendar queue vs reference heap"
    );
    let workloads: [(&str, WorkloadFn, WorkloadFn); 3] = [
        (
            "schedule_heavy",
            calendar::schedule_heavy,
            reference::schedule_heavy,
        ),
        (
            "cancel_heavy",
            calendar::cancel_heavy,
            reference::cancel_heavy,
        ),
        (
            "fig14_shaped",
            calendar::fig14_shaped,
            reference::fig14_shaped,
        ),
    ];
    let mut rows = Vec::new();
    for (name, cal, reference) in workloads {
        // Interleave and keep the best of two runs per kernel so one
        // scheduler hiccup doesn't skew the ratio.
        let cal_eps = cal(events).max(cal(events));
        let ref_eps = reference(events).max(reference(events));
        let speedup = cal_eps / ref_eps;
        outln!(
            "  {name:<16} reference {:>12.0} ev/s   calendar {:>12.0} ev/s   speedup {speedup:.2}x",
            ref_eps,
            cal_eps
        );
        rows.push(Json::Obj(vec![
            ("workload".to_string(), Json::Str(name.to_string())),
            ("events".to_string(), Json::Num(events as f64)),
            ("reference_events_per_sec".to_string(), Json::Num(ref_eps)),
            ("calendar_events_per_sec".to_string(), Json::Num(cal_eps)),
            ("speedup".to_string(), Json::Num(speedup)),
        ]));
    }
    let doc = Json::Obj(vec![
        ("bench".to_string(), Json::Str("desim_kernel".to_string())),
        ("quick".to_string(), Json::Bool(quick)),
        ("workloads".to_string(), Json::Arr(rows)),
    ]);
    std::fs::write("BENCH_desim_kernel.json", doc.render()).expect("write kernel bench json");
    outln!("wrote BENCH_desim_kernel.json");
}

/// Wall-clock for one child `all --jobs N` run (best of `reps`).
fn time_all(jobs: usize, scale: u64, batches: u64, reps: u32) -> f64 {
    let exe = std::env::current_exe().expect("current exe path");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let status = std::process::Command::new(&exe)
            .args(["all", "--jobs", &jobs.to_string()])
            .env("LSDGNN_SCALE", scale.to_string())
            .env("LSDGNN_BATCHES", batches.to_string())
            .stdout(std::process::Stdio::null())
            .status()
            .expect("spawn child tables run");
        assert!(status.success(), "child `all --jobs {jobs}` failed");
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Times `all` at 1/2/4 jobs and writes `BENCH_harness.json`.
pub fn harness() {
    // A heavier-than-default workload so the parallel section dominates
    // process startup; both knobs stay overridable from the environment.
    let scale = crate::env_u64("LSDGNN_SCALE", 60_000);
    let batches = crate::env_u64("LSDGNN_BATCHES", 6);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    outln!(
        "harness scaling benchmark: `all` at LSDGNN_SCALE={scale} LSDGNN_BATCHES={batches}, best of 2 ({host_cores} host cores)"
    );
    if host_cores < 2 {
        outln!("  note: single-core host — parallel jobs can only tie the serial run");
    }
    let mut rows = Vec::new();
    let mut serial = 0.0;
    for jobs in [1usize, 2, 4] {
        let secs = time_all(jobs, scale, batches, 2);
        if jobs == 1 {
            serial = secs;
        }
        let speedup = serial / secs;
        outln!("  --jobs {jobs}: {secs:.2}s  ({speedup:.2}x vs serial)");
        rows.push(Json::Obj(vec![
            ("jobs".to_string(), Json::Num(jobs as f64)),
            ("seconds".to_string(), Json::Num(secs)),
            ("speedup".to_string(), Json::Num(speedup)),
        ]));
    }
    let doc = Json::Obj(vec![
        ("bench".to_string(), Json::Str("harness".to_string())),
        ("host_cores".to_string(), Json::Num(host_cores as f64)),
        ("scale".to_string(), Json::Num(scale as f64)),
        ("batches".to_string(), Json::Num(batches as f64)),
        ("runs".to_string(), Json::Arr(rows)),
    ]);
    std::fs::write("BENCH_harness.json", doc.render()).expect("write harness bench json");
    outln!("wrote BENCH_harness.json");
}
