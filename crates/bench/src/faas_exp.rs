//! FaaS DSE experiments: Figures 16–21.

use crate::util::{banner, eng, outln, par_map, Table};
use lsdgnn_core::faas::dse::{min_cost_table, run_dse, DseResult};
use lsdgnn_core::faas::{Architecture, CostModel, InstanceSize, QuoteSet};
use lsdgnn_core::framework::CpuClusterModel;
use lsdgnn_core::graph::PAPER_DATASETS;
use std::sync::OnceLock;

/// The DSE grid feeding Figures 17/18/19/21 and the CSV export —
/// computed once and shared (also across `--jobs` workers, which would
/// otherwise each redo the full grid).
fn dse() -> &'static DseResult {
    static DSE: OnceLock<DseResult> = OnceLock::new();
    DSE.get_or_init(|| run_dse(&CpuClusterModel::default(), &CostModel::default_fitted()))
}

/// Figure 16: cost-model validation against the synthetic price quotes.
pub fn fig16() {
    banner("Fig 16", "linear cost model vs instance quotes");
    let quotes = QuoteSet::alibaba_like();
    let model = CostModel::fit(&quotes);
    let t = Table::new(
        &["instance", "quoted $/h", "model $/h", "error"],
        &[12, 12, 12, 10],
    );
    for (spec, price) in &quotes.quotes {
        let pred = model.predict(spec);
        t.row(&[
            spec.name.clone(),
            format!("{price:.3}"),
            format!("{pred:.3}"),
            format!("{:.1}%", 100.0 * (pred - price).abs() / price),
        ]);
    }
    outln!(
        "fit: $/h = {:.3} + {:.4}*vCPU + {:.5}*GB + {:.3}*FPGA + {:.3}*GPU",
        model.coefficients[0],
        model.coefficients[1],
        model.coefficients[2],
        model.coefficients[3],
        model.coefficients[4]
    );
    t.note("paper: accurate except the 906GB ecs-ram-e premium instance");
}

/// Figure 17: sampling performance per instance for the full grid.
pub fn fig17() {
    banner(
        "Fig 17",
        "GNN sampling performance/instance: 8 architectures x 6 graphs x 3 sizes",
    );
    let r = dse();
    let mut header = vec!["arch", "size"];
    header.extend(PAPER_DATASETS.iter().map(|d| d.name));
    let t = Table::new(&header, &[14, 8, 9, 9, 9, 9, 9, 9]);
    for a in Architecture::ALL {
        for size in InstanceSize::ALL {
            let mut cells = vec![a.name(), size.name().to_string()];
            for d in &PAPER_DATASETS {
                let cell = r
                    .faas
                    .iter()
                    .find(|c| c.arch == a.name() && c.size == size && c.dataset == d.name)
                    .expect("grid complete");
                cells.push(format!("{}/s", eng(cell.samples_per_sec)));
            }
            t.row(&cells);
        }
    }
}

/// Figure 18: perf/$ normalized to the CPU baseline, full grid.
pub fn fig18() {
    banner(
        "Fig 18",
        "normalized performance/dollar: 8 architectures x 6 graphs x 3 sizes",
    );
    let r = dse();
    let mut header = vec!["arch", "size"];
    header.extend(PAPER_DATASETS.iter().map(|d| d.name));
    let t = Table::new(&header, &[14, 8, 8, 8, 8, 8, 8, 8]);
    for a in Architecture::ALL {
        for size in InstanceSize::ALL {
            let mut cells = vec![a.name(), size.name().to_string()];
            for d in &PAPER_DATASETS {
                let cell = r
                    .faas
                    .iter()
                    .find(|c| c.arch == a.name() && c.size == size && c.dataset == d.name)
                    .expect("grid complete");
                cells.push(format!("{:.2}x", r.normalized_perf_per_dollar(cell)));
            }
            t.row(&cells);
        }
    }
}

/// Figure 19: geomean sampling performance per architecture and size.
pub fn fig19() {
    banner(
        "Fig 19",
        "average sampling performance/instance (geomean over graphs)",
    );
    let r = dse();
    let t = Table::new(&["arch", "small", "medium", "large"], &[14, 14, 14, 14]);
    for a in Architecture::ALL {
        t.row(&[
            a.name(),
            format!(
                "{}/s",
                eng(r.arch_performance(&a.name(), InstanceSize::Small))
            ),
            format!(
                "{}/s",
                eng(r.arch_performance(&a.name(), InstanceSize::Medium))
            ),
            format!(
                "{}/s",
                eng(r.arch_performance(&a.name(), InstanceSize::Large))
            ),
        ]);
    }
    let m = |s: &str| r.arch_performance(s, InstanceSize::Medium);
    outln!(
        "medium-size scaling vs small: {:.1}x, large vs small: {:.1}x (base.decp; paper: 2.4x / 14x)",
        m("base.decp") / r.arch_performance("base.decp", InstanceSize::Small),
        r.arch_performance("base.decp", InstanceSize::Large)
            / r.arch_performance("base.decp", InstanceSize::Small),
    );
}

/// Figure 20: minimum service cost, CPU fleet vs FaaS.base fleet.
pub fn fig20() {
    banner(
        "Fig 20",
        "minimal service cost to carry each graph (CPU vs FaaS.base)",
    );
    let rows = min_cost_table(&CostModel::default_fitted());
    let t = Table::new(
        &["graph", "size", "instances", "CPU $/h", "FaaS $/h"],
        &[6, 8, 11, 12, 12],
    );
    for r in rows {
        t.row(&[
            r.dataset.to_string(),
            r.size.name().to_string(),
            r.instances.to_string(),
            format!("{:.2}", r.cpu_cost),
            format!("{:.2}", r.faas_cost),
        ]);
    }
}

/// Figure 21: geomean normalized perf/$ per architecture — the headline
/// numbers.
pub fn fig21() {
    banner(
        "Fig 21",
        "average normalized performance/dollar per architecture",
    );
    let r = dse();
    let t = Table::new(&["arch", "perf/$ vs CPU"], &[14, 12]);
    for a in Architecture::ALL {
        t.row(&[
            a.name(),
            format!("{:.2}x", r.arch_perf_per_dollar(&a.name())),
        ]);
    }
    t.note("paper headline: base.decp 2.47x, base.tc 4.11x, comm-opt 7.78x, mem-opt.tc 12.58x");
    outln!(
        "tc-over-decp gap: cost-opt {:.1}x, comm-opt {:.1}x, mem-opt {:.1}x (paper: 1.9x / 3.5x / 16.6x)",
        r.speedup("cost-opt.tc", "cost-opt.decp"),
        r.speedup("comm-opt.tc", "comm-opt.decp"),
        r.speedup("mem-opt.tc", "mem-opt.decp"),
    );
}

/// §7.3 Limitation-2: sensitivity of perf/$ to the GPU-per-throughput
/// assumption.
pub fn limit2() {
    banner(
        "Limitation-2",
        "perf/$ sensitivity to GPUs required per 12 GB/s sampling output",
    );
    use lsdgnn_core::faas::dse::run_dse_with_gpu_factor;
    let cpu = CpuClusterModel::default();
    let cost = CostModel::default_fitted();
    let t = Table::new(&["GPU factor", "base.decp", "mem-opt.tc"], &[12, 14, 14]);
    let results = par_map(vec![1.0f64, 2.0, 5.0, 10.0], |factor| {
        (factor, run_dse_with_gpu_factor(&cpu, &cost, factor))
    });
    for (factor, r) in results {
        t.row(&[
            format!("{factor}x"),
            format!("{:.2}x", r.arch_perf_per_dollar("base.decp")),
            format!("{:.2}x", r.arch_perf_per_dollar("mem-opt.tc")),
        ]);
    }
    t.note("paper: at 10 GPUs per 12 GB/s, mem-opt.tc falls from 12.58x to 1.48x");
}

/// §9 discussion: Grace-like CPU/GPU, DPU, ASIC and the CXL outlook.
pub fn discussion() {
    banner("Section 9", "alternatives beyond FPGA, quantified");
    use lsdgnn_core::faas::discussion::{
        asic_samples_per_sec, cxl_variant_rates, DpuNode, GraceLikeNode,
    };
    let cpu = CpuClusterModel::default();
    let d = lsdgnn_core::graph::DatasetConfig::by_name("ll").unwrap();
    let attr_bytes = d.attr_len as f64 * 4.0;

    let grace = GraceLikeNode::grace().samples_per_sec(&cpu, 4);
    let dpu = DpuNode::bluefield().samples_per_sec(&cpu, 4, attr_bytes);
    let fpga_device = 55e6;
    let asic = asic_samples_per_sec(fpga_device, 10.0, 16.0, attr_bytes);
    let t = Table::new(&["platform", "samples/s"], &[26, 16]);
    t.row(&[
        "Grace-like 144-core CPU".into(),
        format!("{}/s", eng(grace)),
    ]);
    t.row(&[
        "BlueField-like 300-core DPU".into(),
        format!("{}/s", eng(dpu)),
    ]);
    t.row(&["10x ASIC behind PCIe".into(), format!("{}/s", eng(asic))]);
    t.row(&[
        "AxE FPGA (PoC, PCIe-bound)".into(),
        format!("{}/s", eng(fpga_device)),
    ]);
    let (mof, cxl) = cxl_variant_rates(&d);
    outln!(
        "CXL outlook (comm-opt.tc on ll/medium): custom MoF {}/s vs standard CXL {}/s",
        eng(mof),
        eng(cxl)
    );
    t.note("paper §9: CPU/DPU under-utilize; ASIC hits the same output wall; CXL bridges the fabric gap");
}

/// The deployment planner: cheapest (architecture, size, fleet) per
/// throughput target.
pub fn planner() {
    banner(
        "Planner",
        "cheapest deployment per sampling-throughput target (graph ll)",
    );
    use lsdgnn_core::faas::{plan_sweep, CostModel};
    let d = lsdgnn_core::graph::DatasetConfig::by_name("ll").unwrap();
    let cost = CostModel::default_fitted();
    let targets = [1e6, 10e6, 50e6, 200e6, 1e9];
    let t = Table::new(
        &["target", "arch", "size", "fleet", "throughput", "$/h"],
        &[14, 16, 8, 10, 16, 10],
    );
    for (tgt, plan) in plan_sweep(&d, &targets, &cost) {
        match plan {
            Some(p) => t.row(&[
                format!("{}/s", eng(tgt)),
                p.arch.name(),
                p.size.name().to_string(),
                p.instances.to_string(),
                format!("{}/s", eng(p.throughput)),
                format!("{:.2}", p.dollars_per_hour),
            ]),
            None => t.row(&[
                format!("{}/s", eng(tgt)),
                "unreachable".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t.note("the Figure 20 analysis generalized with a throughput target");
}

/// Writes the full DSE grid to `results/dse.csv` for external plotting.
pub fn export_csv() {
    banner("Export", "DSE grid -> results/dse.csv");
    let r = dse();
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/dse.csv", r.to_csv()).expect("write csv");
    outln!(
        "wrote results/dse.csv ({} rows)",
        r.faas.len() + r.cpu.len()
    );
}
