//! `bench wire` — earn the MoF wire: locality-aware reordering ×
//! measured BDI compression/packing on the remote serving leg.
//!
//! The sweep starts from the dataplane placement, *scrambles* the node
//! ids with a seeded random permutation (the pessimal layout a freshly
//! ingested graph arrives in), then measures every reorder policy —
//! identity (the scramble itself), degree sort, BFS, Gorder — with BDI
//! response compression off and on, all over MoF-packed request
//! streams. A plain (unwired) arm runs the same traffic through today's
//! path; every arm's samples are mapped back to the pre-scramble
//! labeling and digest-folded, so `digests_equivalent` pins that
//! neither relabeling nor wire accounting changed a single sample.
//!
//! Per arm the run reports layout-sensitive locality (frontier
//! line-hit and attribute page-hit rates — the exact-id coalesce rates
//! are permutation-invariant and stay flat by design), measured wire
//! bytes (packed/unpacked requests, raw/BDI-compressed responses),
//! packing occupancy, the link model's simulated wire time, and served
//! requests/sec. `LSDGNN_WIRE_OMIT_TIMING=1` zeroes the wall-clock
//! throughput fields so `--jobs` parity can compare artifacts
//! byte-for-byte; everything else — bytes, ratios, digests — is
//! deterministic at a fixed seed.

use crate::dataplane::{fold, graph, placement, request, ROOTS_PER_REQ};
use crate::util::outln;
use lsdgnn_core::framework::{
    CpuBackend, RequestStats, SampleRequest, SamplingBackend, WireConfig, WireSnapshot,
};
use lsdgnn_core::graph::{NodeId, PartitionedGraph, Permutation, ReorderPolicy};
use lsdgnn_core::sampler::SampleBlock;
use lsdgnn_core::telemetry::Json;
use std::time::Instant;

/// Requests in the deterministic measurement pass (digests, locality
/// counters, wire bytes).
const VERIFY_REQUESTS: u64 = 48;
const QUICK_VERIFY_REQUESTS: u64 = 16;
/// Requests in the timed serving pass.
const TIMED_REQUESTS: u64 = 256;
const QUICK_TIMED_REQUESTS: u64 = 32;
/// Gorder sliding-window width (§ reorder module docs).
const GORDER_WINDOW: usize = 5;
/// Requests fused per `sample_many` dispatch in the timed pass.
const TIMED_CHUNK: usize = 32;

/// One measured sweep point.
struct Arm {
    label: String,
    policy: String,
    wired: bool,
    compression: bool,
    digest: u64,
    stats: RequestStats,
    snap: Option<WireSnapshot>,
    requests_per_sec: f64,
}

/// Maps a logical-space request into the arm's label space.
fn map_request(req: &SampleRequest, to_arm: &dyn Fn(NodeId) -> NodeId) -> SampleRequest {
    SampleRequest {
        roots: req.roots.iter().map(|&v| to_arm(v)).collect(),
        ..req.clone()
    }
}

/// Digest of a block with every id mapped back to logical space — the
/// cross-arm fingerprint relabeling must preserve.
fn logical_digest(block: &SampleBlock, to_logical: &dyn Fn(NodeId) -> NodeId) -> u64 {
    let back = SampleBlock {
        roots: block.roots.iter().map(|&v| to_logical(v)).collect(),
        hop_offsets: block.hop_offsets.clone(),
        nodes: block.nodes.iter().map(|&v| to_logical(v)).collect(),
        adj_offsets: Vec::new(),
    };
    back.digest()
}

/// Runs one arm: a deterministic measurement pass (sample + attribute
/// gather per request, digest-folded in logical space, stats and wire
/// counters snapshotted at the end), then an optional timed serving
/// pass over the same traffic shape.
#[allow(clippy::too_many_arguments)]
fn run_arm(
    label: &str,
    policy: &str,
    pg: PartitionedGraph,
    wire: Option<WireConfig>,
    to_arm: &dyn Fn(NodeId) -> NodeId,
    to_logical: &dyn Fn(NodeId) -> NodeId,
    reqs: &[SampleRequest],
    timed: u64,
    omit_timing: bool,
) -> Arm {
    let (wired, compression) = match &wire {
        Some(cfg) => (true, cfg.compression),
        None => (false, false),
    };
    let backend = match wire {
        Some(cfg) => CpuBackend::from_partitioned_wired(pg, cfg),
        None => CpuBackend::from_partitioned(pg),
    };
    let nodes = backend.cluster().graph().graph().num_nodes();

    // Deterministic measurement pass: fixed requests through the
    // batch-coalesced plane, attributes gathered per block exactly as
    // the inference service would.
    let mapped: Vec<SampleRequest> = reqs.iter().map(|r| map_request(r, to_arm)).collect();
    let refs: Vec<&SampleRequest> = mapped.iter().collect();
    let blocks = backend.sample_many(&refs);
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut fetch = Vec::new();
    let mut rows = Vec::new();
    let mut slots = Vec::new();
    for block in &blocks {
        digest = fold(digest, logical_digest(block, to_logical));
        block.attr_fetch_into(&mut fetch);
        backend.gather_attr_rows(&fetch, &mut rows, &mut slots);
    }
    for block in blocks {
        backend.recycle(block);
    }
    let stats = backend.stats();
    let snap = backend.wire_snapshot();

    // Timed serving pass: throughput is reported, never asserted, and
    // zeroed under LSDGNN_WIRE_OMIT_TIMING for artifact parity.
    let requests_per_sec = if omit_timing {
        0.0
    } else {
        let t0 = Instant::now();
        let timed_reqs: Vec<SampleRequest> = (0..timed)
            .map(|s| map_request(&request(s ^ 0x5eed, nodes, ROOTS_PER_REQ), to_arm))
            .collect();
        for chunk in timed_reqs.chunks(TIMED_CHUNK) {
            let refs: Vec<&SampleRequest> = chunk.iter().collect();
            for block in backend.sample_many(&refs) {
                block.attr_fetch_into(&mut fetch);
                backend.gather_attr_rows(&fetch, &mut rows, &mut slots);
                backend.recycle(block);
            }
        }
        timed as f64 / t0.elapsed().as_secs_f64()
    };

    Arm {
        label: label.to_string(),
        policy: policy.to_string(),
        wired,
        compression,
        digest,
        stats,
        snap,
        requests_per_sec,
    }
}

fn arm_json(a: &Arm) -> Json {
    let snap = a.snap.unwrap_or_default();
    Json::Obj(vec![
        ("label".to_string(), Json::Str(a.label.clone())),
        ("policy".to_string(), Json::Str(a.policy.clone())),
        ("wired".to_string(), Json::Bool(a.wired)),
        ("compression".to_string(), Json::Bool(a.compression)),
        (
            "digest".to_string(),
            Json::Str(format!("{:016x}", a.digest)),
        ),
        (
            "requests_per_sec".to_string(),
            Json::Num(a.requests_per_sec),
        ),
        (
            "coalesce_hit_rate".to_string(),
            Json::Num(a.stats.coalesce_hit_rate()),
        ),
        (
            "attr_coalesce_hit_rate".to_string(),
            Json::Num(a.stats.attr_coalesce_hit_rate()),
        ),
        (
            "frontier_line_hit_rate".to_string(),
            Json::Num(a.stats.frontier_line_hit_rate()),
        ),
        (
            "attr_page_hit_rate".to_string(),
            Json::Num(a.stats.attr_page_hit_rate()),
        ),
        (
            "remote_legs".to_string(),
            Json::Num(snap.remote_legs as f64),
        ),
        (
            "request_packages".to_string(),
            Json::Num(snap.request_packages as f64),
        ),
        (
            "overflow_splits".to_string(),
            Json::Num(snap.overflow_splits as f64),
        ),
        (
            "raw_request_bytes".to_string(),
            Json::Num(snap.raw_request_bytes as f64),
        ),
        (
            "wire_request_bytes".to_string(),
            Json::Num(snap.wire_request_bytes as f64),
        ),
        (
            "raw_response_bytes".to_string(),
            Json::Num(snap.raw_response_bytes as f64),
        ),
        (
            "wire_response_bytes".to_string(),
            Json::Num(snap.wire_response_bytes as f64),
        ),
        (
            "compression_ratio".to_string(),
            Json::Num(snap.compression_ratio()),
        ),
        (
            "sampling_compression_ratio".to_string(),
            Json::Num(snap.sampling_compression_ratio()),
        ),
        (
            "attr_compression_ratio".to_string(),
            Json::Num(snap.attr_compression_ratio()),
        ),
        (
            "request_packing_ratio".to_string(),
            Json::Num(snap.request_packing_ratio()),
        ),
        (
            "packing_occupancy".to_string(),
            Json::Num(snap.packing_occupancy()),
        ),
        (
            "simulated_wire_ms".to_string(),
            Json::Num(snap.simulated_wire_ns as f64 / 1e6),
        ),
    ])
}

/// Runs the reorder × compression sweep and writes the artifact.
pub fn wire(quick: bool, seed: u64, out_path: &str) {
    let omit_timing = std::env::var("LSDGNN_WIRE_OMIT_TIMING").is_ok();
    let (verify, timed) = if quick {
        (QUICK_VERIFY_REQUESTS, QUICK_TIMED_REQUESTS)
    } else {
        (VERIFY_REQUESTS, TIMED_REQUESTS)
    };
    let (g, a) = graph(quick);
    let nodes = g.num_nodes();
    let pg0 = placement(&g, &a);
    // The arrival layout every policy starts from: the dataplane
    // placement with its ids scrambled. Ownership rides through the
    // permutation, so the local/remote split is identical in every arm.
    let (pg_b, s_perm) = pg0.reorder(ReorderPolicy::Random { seed });
    outln!(
        "wire bench: {nodes} nodes, seed {seed}, {verify} measured + {timed} timed requests \
         x {ROOTS_PER_REQ} roots, scrambled baseline -> reorder x compression sweep"
    );

    // Logical-space traffic, shared by every arm.
    let reqs: Vec<SampleRequest> = (0..verify)
        .map(|s| request(s, nodes, ROOTS_PER_REQ))
        .collect();

    let mut arms: Vec<Arm> = Vec::new();

    // Today's path: the scrambled graph, unwired — the parity anchor.
    let s_for = s_perm.clone();
    let s_back = s_perm.clone();
    arms.push(run_arm(
        "plain",
        "identity",
        pg_b.clone(),
        None,
        &move |v| s_for.to_new(v),
        &move |v| s_back.to_old(v),
        &reqs,
        timed,
        omit_timing,
    ));

    let policies = [
        ReorderPolicy::Identity,
        ReorderPolicy::DegreeSort,
        ReorderPolicy::Bfs,
        ReorderPolicy::Gorder {
            window: GORDER_WINDOW,
        },
    ];
    for policy in policies {
        let (pg_q, q_perm) = pg_b.reorder(policy);
        for compression in [false, true] {
            let label = format!("{policy}/{}", if compression { "bdi" } else { "rawresp" });
            let s: Permutation = s_perm.clone();
            let q: Permutation = q_perm.clone();
            let to_arm = move |v: NodeId| q.to_new(s.to_new(v));
            let s: Permutation = s_perm.clone();
            let q: Permutation = q_perm.clone();
            let to_logical = move |v: NodeId| s.to_old(q.to_old(v));
            arms.push(run_arm(
                &label,
                &format!("{policy}"),
                pg_q.clone(),
                Some(WireConfig {
                    compression,
                    ..WireConfig::default()
                }),
                &to_arm,
                &to_logical,
                &reqs,
                timed,
                omit_timing,
            ));
        }
    }

    // Gates. Digest parity: relabeling and wire accounting change no
    // sample. Compression: BDI on real sampled remote traffic. Layout:
    // at least one traversal policy must strictly beat both the
    // scrambled-identity arm and the historical exact-id floors.
    let digests_equivalent = arms.iter().all(|a| a.digest == arms[0].digest);
    // The headline BDI claim is about sampled remote traffic (node-id
    // payloads); the all-legs ratio is reported per arm but float rows
    // drag it toward 1 by design.
    let compression_ratio = arms
        .iter()
        .filter(|a| a.compression)
        .map(|a| a.snap.unwrap_or_default().sampling_compression_ratio())
        .fold(0.0f64, f64::max);
    let compression_ratio_ok = compression_ratio > if quick { 1.0 } else { 1.3 };
    let identity = arms
        .iter()
        .find(|a| a.wired && a.policy == "identity")
        .expect("identity arm present");
    let id_frontier = identity.stats.frontier_line_hit_rate();
    let id_attr = identity.stats.attr_page_hit_rate();
    let coalesce_ok = arms.iter().any(|a| {
        a.wired
            && a.policy != "identity"
            && a.stats.frontier_line_hit_rate() > 0.30
            && a.stats.frontier_line_hit_rate() >= id_frontier
            && a.stats.attr_page_hit_rate() > 0.62
            && a.stats.attr_page_hit_rate() >= id_attr
    });

    for a in &arms {
        let snap = a.snap.unwrap_or_default();
        outln!(
            "  {:<18} digest {:016x}  line {:.3}  page {:.3}  ratio {:.2}x  occ {:.2}  \
             wire {:>9} B  {:>8.1} req/s",
            a.label,
            a.digest,
            a.stats.frontier_line_hit_rate(),
            a.stats.attr_page_hit_rate(),
            snap.sampling_compression_ratio(),
            snap.packing_occupancy(),
            snap.wire_bytes(),
            a.requests_per_sec,
        );
    }
    outln!(
        "  digests_equivalent {digests_equivalent}   compression_ratio {compression_ratio:.2}x \
         (ok {compression_ratio_ok})   coalesce_ok {coalesce_ok}"
    );

    let doc = Json::Obj(vec![
        ("bench".to_string(), Json::Str("wire".to_string())),
        ("quick".to_string(), Json::Bool(quick)),
        ("seed".to_string(), Json::Num(seed as f64)),
        ("nodes".to_string(), Json::Num(nodes as f64)),
        ("measured_requests".to_string(), Json::Num(verify as f64)),
        ("timed_requests".to_string(), Json::Num(timed as f64)),
        (
            "roots_per_request".to_string(),
            Json::Num(ROOTS_PER_REQ as f64),
        ),
        ("omit_timing".to_string(), Json::Bool(omit_timing)),
        (
            "arms".to_string(),
            Json::Arr(arms.iter().map(arm_json).collect()),
        ),
        (
            "identity_frontier_line_hit_rate".to_string(),
            Json::Num(id_frontier),
        ),
        (
            "identity_attr_page_hit_rate".to_string(),
            Json::Num(id_attr),
        ),
        (
            "compression_ratio".to_string(),
            Json::Num(compression_ratio),
        ),
        (
            "digests_equivalent".to_string(),
            Json::Bool(digests_equivalent),
        ),
        (
            "compression_ratio_ok".to_string(),
            Json::Bool(compression_ratio_ok),
        ),
        ("coalesce_ok".to_string(), Json::Bool(coalesce_ok)),
    ]);
    std::fs::write(out_path, doc.render()).expect("write wire bench json");
    outln!("wrote {out_path}");
}
