//! `tables` — regenerates every table and figure of the paper's
//! evaluation from the reproduction library.
//!
//! ```text
//! cargo run -p lsdgnn-bench --release -- all
//! cargo run -p lsdgnn-bench --release -- fig14 fig21
//! cargo run -p lsdgnn-bench --release -- fig14 \
//!     --metrics-out results/metrics.json --trace-out results/trace.json
//! ```
//!
//! Flags:
//! * `--metrics-out <path.json>` — write the telemetry registry snapshot
//!   (every metric the selected experiments registered) as JSON
//! * `--trace-out <path.json>`   — record spans during the simulated runs
//!   and write Chrome trace-event JSON (open in Perfetto)
//!
//! Environment:
//! * `LSDGNN_SCALE`   — max nodes for scaled-down graphs (default 4000)
//! * `LSDGNN_BATCHES` — mini-batches per DES measurement (default 3)

mod ablations;
mod characterization;
mod faas_exp;
mod microarch;
mod poc;
mod util;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_u64("LSDGNN_SCALE", 4_000);
    let batches = env_u64("LSDGNN_BATCHES", 3) as u32;

    let mut metrics_out = None;
    let mut trace_out = None;
    let mut args = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if let Some(v) = a.strip_prefix("--metrics-out=") {
            metrics_out = Some(v.to_string());
        } else if a == "--metrics-out" {
            metrics_out = Some(raw.next().expect("--metrics-out needs a path"));
        } else if let Some(v) = a.strip_prefix("--trace-out=") {
            trace_out = Some(v.to_string());
        } else if a == "--trace-out" {
            trace_out = Some(raw.next().expect("--trace-out needs a path"));
        } else {
            args.push(a);
        }
    }
    let mut tel = util::Telemetry::new(metrics_out, trace_out);

    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig2a",
            "fig2b",
            "fig2c",
            "fig2d",
            "fig2e",
            "fig3",
            "fig7",
            "table5",
            "table6",
            "table7",
            "tech2",
            "tech3",
            "table11",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "fig20",
            "fig21",
            "ablations",
            "limit2",
            "discussion",
            "planner",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    for exp in selected {
        match exp {
            "fig2a" => characterization::fig2a(),
            "fig2b" => characterization::fig2b(scale, &mut tel),
            "fig2c" => characterization::fig2c(scale),
            "fig2d" => characterization::fig2d(),
            "fig2e" => characterization::fig2e(),
            "fig3" => characterization::fig3(),
            "fig7" => microarch::fig7(),
            "table5" => microarch::table5(),
            "table6" => microarch::table6(),
            "table7" => microarch::table7(),
            "tech2" => microarch::tech2(),
            "tech3" => microarch::tech3(),
            "table11" => microarch::table11(),
            "fig14" => poc::fig14(scale, batches, &mut tel),
            "fig15" => poc::fig15(scale, batches),
            "fig16" => faas_exp::fig16(),
            "fig17" => faas_exp::fig17(),
            "fig18" => faas_exp::fig18(),
            "fig19" => faas_exp::fig19(),
            "fig20" => faas_exp::fig20(),
            "fig21" => faas_exp::fig21(),
            "ablations" => ablations::all(scale, batches, &mut tel),
            "limit2" => faas_exp::limit2(),
            "discussion" => faas_exp::discussion(),
            "planner" => faas_exp::planner(),
            "export-csv" => faas_exp::export_csv(),
            "ablation-cache" => ablations::cache_sweep(scale, batches, &mut tel),
            "ablation-cores" => ablations::core_sweep(scale, batches),
            "ablation-packing" => ablations::packing_sweep(),
            "ablation-outstanding" => ablations::outstanding_sweep(scale, batches),
            "ablation-serving" => ablations::serving_sweep(scale, batches),
            other => {
                eprintln!("unknown experiment `{other}`; see DESIGN.md for the experiment index");
                std::process::exit(2);
            }
        }
    }
    tel.finish();
}
