//! `tables` — regenerates every table and figure of the paper's
//! evaluation from the reproduction library.
//!
//! ```text
//! cargo run -p lsdgnn-bench --release -- all
//! cargo run -p lsdgnn-bench --release -- fig14 fig21
//! cargo run -p lsdgnn-bench --release -- all --jobs 4
//! cargo run -p lsdgnn-bench --release -- fig14 \
//!     --metrics-out results/metrics.json --trace-out results/trace.json
//! cargo run -p lsdgnn-bench --release -- kernel          # event-kernel microbench
//! cargo run -p lsdgnn-bench --release -- harness         # --jobs scaling bench
//! ```
//!
//! Flags:
//! * `--jobs N` — run the selected experiments (and the sweep points
//!   inside them) on up to N worker threads. Output order, table values
//!   and the `--metrics-out` snapshot are identical to the serial run:
//!   workers capture their output and the scheduler prints/merges in
//!   selection order.
//! * `--metrics-out <path.json>` — write the telemetry registry snapshot
//!   (every metric the selected experiments registered) as JSON
//! * `--trace-out <path.json>`   — record spans during the simulated runs
//!   and write Chrome trace-event JSON (open in Perfetto)
//! * `--quick` — (with `kernel`) a fast smoke-sized run for CI
//!
//! Environment:
//! * `LSDGNN_SCALE`   — max nodes for scaled-down graphs (default 4000)
//! * `LSDGNN_BATCHES` — mini-batches per DES measurement (default 3)
//! * `LSDGNN_JOBS`    — default worker count when `--jobs` is absent

mod ablations;
mod cache_exp;
mod chaos_exp;
mod characterization;
mod dataplane;
mod faas_exp;
mod inference;
mod kernel_bench;
mod microarch;
mod obs_exp;
mod poc;
mod trace_report;
mod traffic_exp;
mod util;
mod wire;

use std::sync::atomic::{AtomicUsize, Ordering};
use util::{capture, Telemetry, TelemetrySink};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Per-invocation experiment inputs shared by every entry point.
struct Ctx {
    scale: u64,
    batches: u32,
}

type ExpFn = fn(&Ctx, &mut Telemetry);

/// Every experiment, in `all` order. Names must be unique — the
/// selection validator rejects duplicates against this table.
const EXPERIMENTS: &[(&str, ExpFn)] = &[
    ("fig2a", |_, _| characterization::fig2a()),
    ("fig2b", |c, t| characterization::fig2b(c.scale, t)),
    ("fig2c", |c, _| characterization::fig2c(c.scale)),
    ("fig2d", |_, _| characterization::fig2d()),
    ("fig2e", |_, _| characterization::fig2e()),
    ("fig3", |_, _| characterization::fig3()),
    ("fig7", |_, _| microarch::fig7()),
    ("table5", |_, _| microarch::table5()),
    ("table6", |_, _| microarch::table6()),
    ("table7", |_, _| microarch::table7()),
    ("tech2", |_, _| microarch::tech2()),
    ("tech3", |_, _| microarch::tech3()),
    ("table11", |_, _| microarch::table11()),
    ("fig14", |c, t| poc::fig14(c.scale, c.batches, t)),
    ("fig15", |c, _| poc::fig15(c.scale, c.batches)),
    ("fig16", |_, _| faas_exp::fig16()),
    ("fig17", |_, _| faas_exp::fig17()),
    ("fig18", |_, _| faas_exp::fig18()),
    ("fig19", |_, _| faas_exp::fig19()),
    ("fig20", |_, _| faas_exp::fig20()),
    ("fig21", |_, _| faas_exp::fig21()),
    ("ablations", |c, t| ablations::all(c.scale, c.batches, t)),
    ("limit2", |_, _| faas_exp::limit2()),
    ("discussion", |_, _| faas_exp::discussion()),
    ("planner", |_, _| faas_exp::planner()),
];

/// Subcommands valid on the command line but excluded from `all` (they
/// write files or sweep what `all` already covers).
const EXTRA: &[(&str, ExpFn)] = &[
    ("export-csv", |_, _| faas_exp::export_csv()),
    ("ablation-cache", |c, t| {
        ablations::cache_sweep(c.scale, c.batches, t)
    }),
    ("ablation-cores", |c, _| {
        ablations::core_sweep(c.scale, c.batches)
    }),
    ("ablation-packing", |_, _| ablations::packing_sweep()),
    ("ablation-outstanding", |c, _| {
        ablations::outstanding_sweep(c.scale, c.batches)
    }),
    ("ablation-serving", |c, _| {
        ablations::serving_sweep(c.scale, c.batches)
    }),
];

fn lookup(name: &str) -> Option<ExpFn> {
    EXPERIMENTS
        .iter()
        .chain(EXTRA)
        .find(|(n, _)| *n == name)
        .map(|(_, f)| *f)
}

fn usage_and_exit(unknown: &str) -> ! {
    eprintln!("unknown experiment `{unknown}`; available:");
    let names: Vec<&str> = EXPERIMENTS.iter().chain(EXTRA).map(|(n, _)| *n).collect();
    eprintln!("  all {}", names.join(" "));
    eprintln!("  kernel [--quick]   event-kernel throughput microbenchmark");
    eprintln!("  harness            --jobs wall-clock scaling benchmark");
    eprintln!("  chaos [--quick] [--seed N] [--out path]   fault-injection sweep");
    eprintln!("  dataplane [--quick]   flat-buffer vs legacy serving-path benchmark");
    eprintln!(
        "  wire [--quick] [--seed N] [--out path]   reorder x BDI-compression wire-byte sweep"
    );
    eprintln!("  inference [--quick]   pipelined vs sequential end-to-end inference benchmark");
    eprintln!(
        "  obs [--quick] [--seed N] [--out path]   observability overhead + tail-blame benchmark"
    );
    eprintln!(
        "  traffic [--quick] [--seed N] [--out path]   overload-control + autoscaler policy sweep"
    );
    eprintln!(
        "  cache [--quick] [--seed N] [--out path]   hot-set cache skew x capacity x tier sweep"
    );
    eprintln!("  trace-report <trace.json>   per-stage summary of a --trace-out Chrome trace");
    eprintln!("(see DESIGN.md for the experiment index)");
    std::process::exit(2);
}

fn main() {
    let scale = env_u64("LSDGNN_SCALE", 4_000);
    let batches = env_u64("LSDGNN_BATCHES", 3) as u32;

    let mut metrics_out = None;
    let mut trace_out = None;
    let mut jobs = env_u64("LSDGNN_JOBS", 1).max(1) as usize;
    let mut quick = false;
    let mut seed = 42u64;
    let mut out = None;
    let mut args = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if let Some(v) = a.strip_prefix("--metrics-out=") {
            metrics_out = Some(v.to_string());
        } else if a == "--metrics-out" {
            metrics_out = Some(raw.next().expect("--metrics-out needs a path"));
        } else if let Some(v) = a.strip_prefix("--trace-out=") {
            trace_out = Some(v.to_string());
        } else if a == "--trace-out" {
            trace_out = Some(raw.next().expect("--trace-out needs a path"));
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = v.parse::<usize>().expect("--jobs needs a number").max(1);
        } else if a == "--jobs" {
            jobs = raw
                .next()
                .expect("--jobs needs a number")
                .parse::<usize>()
                .expect("--jobs needs a number")
                .max(1);
        } else if a == "--quick" {
            quick = true;
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed needs a number");
        } else if a == "--seed" {
            seed = raw
                .next()
                .expect("--seed needs a number")
                .parse()
                .expect("--seed needs a number");
        } else if let Some(v) = a.strip_prefix("--out=") {
            out = Some(v.to_string());
        } else if a == "--out" {
            out = Some(raw.next().expect("--out needs a path"));
        } else {
            args.push(a);
        }
    }
    util::set_jobs(jobs);

    // The benchmark subcommands run outside the experiment scheduler:
    // they time the binary itself.
    if args.iter().any(|a| a == "kernel") {
        kernel_bench::kernel(quick);
        return;
    }
    if args.iter().any(|a| a == "harness") {
        kernel_bench::harness();
        return;
    }
    if args.iter().any(|a| a == "chaos") {
        chaos_exp::chaos(quick, seed, out.as_deref().unwrap_or("BENCH_chaos.json"));
        return;
    }
    if args.iter().any(|a| a == "dataplane") {
        dataplane::dataplane(quick);
        return;
    }
    if args.iter().any(|a| a == "wire") {
        wire::wire(quick, seed, out.as_deref().unwrap_or("BENCH_wire.json"));
        return;
    }
    if args.iter().any(|a| a == "inference") {
        inference::inference(quick);
        return;
    }
    if args.iter().any(|a| a == "obs") {
        obs_exp::obs(quick, seed, out.as_deref().unwrap_or("BENCH_obs.json"));
        return;
    }
    if args.iter().any(|a| a == "cache") {
        cache_exp::cache(quick, seed, out.as_deref().unwrap_or("BENCH_cache.json"));
        return;
    }
    if args.iter().any(|a| a == "traffic") {
        traffic_exp::traffic(quick, seed, out.as_deref().unwrap_or("BENCH_traffic.json"));
        return;
    }
    if args.iter().any(|a| a == "trace-report") {
        let path = args.iter().find(|a| *a != "trace-report").cloned().or(out);
        match path {
            Some(p) => trace_report::trace_report(&p),
            None => {
                eprintln!("trace-report needs a trace file: bench trace-report <trace.json>");
                std::process::exit(2);
            }
        }
        return;
    }

    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for (i, name) in selected.iter().enumerate() {
        if lookup(name).is_none() {
            usage_and_exit(name);
        }
        if selected[..i].contains(name) {
            eprintln!("duplicate experiment `{name}`: each experiment registers its metrics once; pass each name once");
            std::process::exit(2);
        }
    }

    let ctx = Ctx { scale, batches };
    let mut sink = TelemetrySink::new(metrics_out, trace_out);
    run_selected(&selected, &ctx, &mut sink, jobs);
    sink.finish();
}

/// Runs the selected experiments on up to `jobs` worker threads. Every
/// experiment executes with a private [`Telemetry`] and a captured
/// output buffer; the main thread streams buffers to stdout in selection
/// order as soon as each contiguous prefix completes, and merges the
/// telemetry in that same order — so results are byte-identical for any
/// job count.
fn run_selected(selected: &[&str], ctx: &Ctx, sink: &mut TelemetrySink, jobs: usize) {
    let tracing = sink.tracing();
    let workers = jobs.min(selected.len()).max(1);
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel();
    let mut parts = Vec::new();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let ctx = &ctx;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= selected.len() {
                    break;
                }
                let f = lookup(selected[i]).expect("selection validated");
                let mut tel = Telemetry::worker(tracing);
                let ((), out) = capture(|| f(ctx, &mut tel));
                let (snap, events) = tel.into_parts();
                if tx.send((i, out, snap, events)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Stream outputs in selection order as they complete.
        let mut done: Vec<Option<(String, _, _)>> = (0..selected.len()).map(|_| None).collect();
        let mut cursor = 0;
        for (i, out, snap, events) in rx {
            done[i] = Some((out, snap, events));
            while cursor < selected.len() {
                match done[cursor].take() {
                    Some((out, snap, events)) => {
                        print!("{out}");
                        parts.push((snap, events));
                        cursor += 1;
                    }
                    None => break,
                }
            }
        }
    });
    for (snap, events) in parts {
        sink.absorb(snap, events);
    }
}
