//! PoC measurement experiments: Figure 14 (FPGA vs per-vCPU sampling
//! rate) and Figure 15 (analytical model validation against the DES).

use crate::util::{banner, eng, metric_cell, outln, par_map, Table, Telemetry};
use lsdgnn_core::axe::{AccessEngine, AxeConfig};
use lsdgnn_core::faas::perf::{bottleneck_rates, PerfInputs};
use lsdgnn_core::framework::CpuClusterModel;
use lsdgnn_core::framework::{
    AxeBackend, CpuBackend, SampleRequest, SamplingBackend, SamplingService, ServiceConfig,
};
use lsdgnn_core::graph::{FootprintModel, NodeId, PAPER_DATASETS};
use lsdgnn_core::memfabric::{MemoryTier, TierConfig};
use std::sync::Arc;

/// Figure 14: simulated PoC FPGA sampling rate versus the per-vCPU CPU
/// baseline, per dataset. The acceptance experiment for the telemetry
/// layer: its engine run is traced (desim/axe/mof spans), its serving
/// run is traced (service spans), and every measurement lands in the
/// registry for `--metrics-out`.
pub fn fig14(scale_nodes: u64, batches: u32, tel: &mut Telemetry) {
    banner(
        "Fig 14",
        "PoC sampling rate vs CPU software baseline (per vCPU)",
    );
    let cpu = CpuClusterModel::default();
    let fm = FootprintModel::default();
    let t = Table::new(
        &["graph", "FPGA samples/s", "vCPU samples/s", "vCPU-equiv"],
        &[6, 16, 16, 14],
    );
    let mut log_sum = 0.0;
    for (i, d) in PAPER_DATASETS.iter().enumerate() {
        let (g, _) = d.instantiate_scaled(scale_nodes, 10);
        let cfg = AxeConfig::poc().with_batch_size(64);
        // Trace one representative engine run (the first dataset) so the
        // Chrome trace stays a single readable set of pid/tid tracks.
        let tracer = if i == 0 { tel.tracer() } else { None };
        let m = AccessEngine::new(cfg).run_traced(&g, d.attr_len as usize, batches, tracer);
        tel.registry
            .register("axe", &[("graph", d.name)], Box::new(m));
        let vcpu = cpu.vcpu_rate_for(d, &fm);
        let equiv = m.samples_per_sec / vcpu;
        log_sum += equiv.ln();
        t.row(&[
            d.name.to_string(),
            format!("{}/s", eng(m.samples_per_sec)),
            format!("{}/s", eng(vcpu)),
            format!("{equiv:.0}"),
        ]);
    }
    let geomean = (log_sum / PAPER_DATASETS.len() as f64).exp();
    outln!("geomean vCPU equivalence: {geomean:.0} (paper: one FPGA ~ 894 vCPUs)");

    // The same workload served functionally through the serving stack:
    // the backend constructor is the single line that changes between
    // the two rows of the comparison.
    let d = lsdgnn_core::graph::DatasetConfig::by_name("ss").expect("table 2 dataset");
    let (g, attrs) = d.instantiate_scaled(scale_nodes, 10);
    let backends: [(&str, Box<dyn SamplingBackend>); 2] = [
        ("cpu", Box::new(CpuBackend::new(&g, &attrs, 4))),
        (
            "axe",
            Box::new(AxeBackend::new(
                Arc::new(g.clone()),
                Arc::new(attrs.clone()),
            )),
        ),
    ];
    let mut sample_counts = Vec::new();
    for (name, backend) in backends {
        let service =
            SamplingService::start_traced(backend, ServiceConfig::default(), tel.tracer());
        let tickets: Vec<_> = (0..u64::from(batches) * 4)
            .map(|b| {
                service.submit(SampleRequest {
                    roots: (0..64)
                        .map(|r| NodeId((b * 64 + r) % g.num_nodes()))
                        .collect(),
                    hops: d.sampling.hops,
                    fanout: d.sampling.fanout as usize,
                    seed: b,
                })
            })
            .collect();
        let samples: usize = tickets.into_iter().map(|t| t.wait().total_sampled()).sum();
        sample_counts.push((name, samples));
        tel.registry
            .register("service", &[("backend", name)], Box::new(service.stats()));
        service.shutdown();
    }
    // The serving table reads back from the registry snapshot — the
    // printed numbers are exactly what `--metrics-out` exports.
    let snap = tel.registry.snapshot();
    let t = Table::new(
        &["backend", "requests", "samples", "latency (us)", "p99 (us)"],
        &[8, 12, 12, 22, 12],
    );
    for (name, samples) in sample_counts {
        let labels = [("backend", name)];
        let get = |metric: &str| {
            snap.get_labeled(metric, &labels)
                .map(metric_cell)
                .unwrap_or_else(|| "-".into())
        };
        let p99 = snap
            .get_labeled("service/latency_us", &labels)
            .and_then(|v| v.as_histogram())
            .map(|h| format!("{:.0}", h.p99))
            .unwrap_or_else(|| "-".into());
        t.row(&[
            name.to_string(),
            get("service/requests"),
            samples.to_string(),
            get("service/latency_us"),
            p99,
        ]);
    }
    t.note("identical sample counts: the backend swap is invisible in results");
}

/// One Figure 15 sweep point.
fn poc_tier(fpga_channels: Option<u32>) -> TierConfig {
    TierConfig {
        local: match fpga_channels {
            None => MemoryTier::PcieHostDram,
            Some(c) => MemoryTier::FpgaLocalDram { channels: c },
        },
        remote: MemoryTier::Mof { links: 3 },
        output: MemoryTier::PciePeerToPeer,
    }
}

/// Figure 15: validating the analytical performance model against the
/// AxE discrete-event simulation across the PoC sweep
/// (1/2/4 cores x PCIe/1/2/4-channel x 1-node/4-node), plus the modelled
/// "w/o PCIe output limitation" series.
pub fn fig15(scale_nodes: u64, batches: u32) {
    banner("Fig 15", "analytical model vs DES measurement (PoC sweeps)");
    let d = lsdgnn_core::graph::DatasetConfig::by_name("ss").unwrap();
    let (g, _) = d.instantiate_scaled(scale_nodes, 11);
    let avg_deg = g.avg_degree();
    let attr_bytes = d.attr_len as f64 * 4.0;

    let t = Table::new(
        &[
            "cores",
            "mem",
            "nodes",
            "DES samples/s",
            "model samples/s",
            "err",
            "model w/o PCIe",
        ],
        &[8, 8, 8, 16, 16, 10, 18],
    );
    let mem_configs: [(&str, Option<u32>); 4] = [
        ("PCIe", None),
        ("1-chn", Some(1)),
        ("2-chn", Some(2)),
        ("4-chn", Some(4)),
    ];
    // The 24-point sweep is the costliest DES work in `all` — compute
    // the grid in parallel, then print the ordered results serially.
    let mut grid = Vec::new();
    for nodes in [1u32, 4] {
        for (mem_name, chans) in mem_configs {
            for cores in [1usize, 2, 4] {
                grid.push((nodes, mem_name, chans, cores));
            }
        }
    }
    let results = par_map(grid, |(nodes, mem_name, chans, cores)| {
        let tier = poc_tier(chans);
        let cfg = AxeConfig::poc()
            .with_cores(cores)
            .with_tier(tier)
            .with_partitions(nodes)
            .with_batch_size(48);
        let des = AccessEngine::new(cfg).run(&g, d.attr_len as usize, batches);
        let inputs = PerfInputs {
            local: tier.local.link_model(),
            remote: tier.remote.link_model(),
            output: Some(tier.output.link_model()),
            output_shares_remote: false,
            cores: cores as u32,
            tags_per_core: 64,
            clock_hz: 250e6,
            avg_degree: avg_deg,
            fanout: 10.0,
            attr_bytes,
            remote_fraction: 1.0 - 1.0 / nodes as f64,
        };
        let model = bottleneck_rates(&inputs).samples_per_sec();
        let no_pcie = bottleneck_rates(&PerfInputs {
            output: None,
            ..inputs
        })
        .samples_per_sec();
        (nodes, mem_name, cores, des.samples_per_sec, model, no_pcie)
    });
    let mut errs = Vec::new();
    for (nodes, mem_name, cores, des_rate, model, no_pcie) in results {
        let err = (model - des_rate).abs() / des_rate;
        errs.push(err);
        t.row(&[
            cores.to_string(),
            mem_name.to_string(),
            format!("{nodes}n"),
            format!("{}/s", eng(des_rate)),
            format!("{}/s", eng(model)),
            format!("{:.0}%", err * 100.0),
            format!("{}/s", eng(no_pcie)),
        ]);
    }
    let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
    outln!(
        "mean |model - DES| error: {:.1}% over {} configurations (paper reports ~1% against its PoC)",
        mean_err * 100.0,
        errs.len()
    );
}
