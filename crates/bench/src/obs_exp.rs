//! `bench obs` — observability overhead + tail-blame benchmark.
//!
//! Three healthy arms serve the same pipelined inference workload as
//! `bench inference` (skewed 2-partition dataplane graph, GraphSAGE on
//! top) and differ only in how much of the request ledger is wired in:
//!
//! * **baseline** — the plain constructors; the observability code is
//!   compiled in but no ledger exists and no scope is ever entered.
//! * **disabled** — the fully-instrumented entry point
//!   ([`SamplingService::start_observed`]) with no [`Observability`]
//!   installed: every instrumentation site is reached and must decide,
//!   from one thread-local read, to do nothing.
//! * **instrumented** — a live [`Observability`]: every request gets a
//!   trace id and the full causal event chain (enqueue → admission →
//!   per-hop sampling → remote legs → coalesced gather → per-layer
//!   compute → done) lands in the ledger.
//!
//! The run asserts the observability contract: all three arms fold the
//! same reply digest (recording may never touch results), and the
//! instrumented arm's throughput stays within 5% of baseline. The
//! instrumented ledger then yields the tail [`BlameReport`] and SLO
//! burn summary.
//!
//! Three chaos arms (request loss, card failure, queue stall) re-run
//! the workload under a [`FaultPlan`] and check blame attribution end
//! to end: the tail report's `top_fault` must name the injected fault
//! layer, and degraded requests must produce flight dumps carrying the
//! plan's seed + digest for byte-exact replay.
//!
//! `LSDGNN_OBS_OMIT_TIMING=1` zeroes every wall-clock-derived field
//! (stdout and artifact) so two runs — at any `--jobs` — are
//! byte-identical; `tests/jobs_parity.rs` pins that. The deterministic
//! ledger-merge check (synthetic timestamps, 1 vs 4 recorder threads)
//! runs in both modes: canonical event ordering makes the snapshot
//! digest independent of recorder interleaving.
//!
//! [`BlameReport`]: lsdgnn_core::telemetry::ledger::BlameReport
//! [`FaultPlan`]: lsdgnn_core::chaos::FaultPlan

use crate::dataplane::{fold, graph, placement, skewed_root, ATTR_LEN, FANOUT, HOPS, PARTITIONS};
use crate::util::{outln, Table};
use lsdgnn_core::chaos::{FaultInjector, FaultPlan, ScenarioSpec};
use lsdgnn_core::framework::{
    ChaosBackend, CpuBackend, DegradeConfig, InferenceConfig, InferenceService, ObsConfig,
    Observability, SampleRequest, SamplingBackend, SamplingService, ServiceConfig,
};
use lsdgnn_core::graph::{AttributeStore, CsrGraph};
use lsdgnn_core::nn::SageModel;
use lsdgnn_core::telemetry::ledger::{LedgerConfig, RequestLedger, Stage, NO_SHARD};
use lsdgnn_core::telemetry::Json;
use std::time::{Duration, Instant};

/// Same GraphSAGE as `bench inference`: the overhead claim is made on
/// the workload the pipeline bench already measures.
const WIDTHS: [usize; 3] = [ATTR_LEN, 16, 8];
const MODEL_SEED: u64 = 61;
const ROOTS_PER_REQ: u64 = 16;

const REQUESTS: u64 = 512;
const QUICK_REQUESTS: u64 = 128;
/// Requests whose reply digests are folded (untimed) on every arm.
const VERIFY_REQUESTS: u64 = 48;
/// In-flight window for the timed runs.
const WINDOW: u64 = 64;
/// Timed rounds. Each round times every arm back to back and yields
/// one *paired* overhead ratio; the median across rounds is the claim.
/// Pairing plus the median is what survives a noisy single-core box:
/// machine-wide slowdowns hit both sides of a round's ratio, and
/// outlier rounds (scheduler stalls) fall out of the median. Rounds
/// rotate the arm order (multiple of 3 so each arm takes each slot
/// equally often) — with a fixed order, whatever drift accumulates
/// *within* a round lands on the same arm every time and shows up as a
/// phantom overhead even between identical configurations.
const TIMED_RUNS: usize = 15;
const QUICK_TIMED_RUNS: usize = 9;
/// Instrumented throughput must stay within this fraction of baseline.
const OVERHEAD_BUDGET: f64 = 0.05;

/// Requests per chaos arm; the card-failure arm kills a card halfway.
const CHAOS_REQUESTS: u64 = 32;

/// Synthetic traces in the deterministic merge-parity check.
const MERGE_TRACES: u64 = 64;

fn hex(d: u64) -> String {
    format!("{d:#018x}")
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 128,
        max_batch: 32,
        ..ServiceConfig::default()
    }
}

/// Chaos-arm cell: single worker (breaker decisions stay in request
/// order), small batches, fast backoff.
fn chaos_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        max_batch: 8,
        batch_deadline: Duration::from_micros(100),
        degrade: DegradeConfig {
            backoff_base: Duration::from_micros(10),
            ..DegradeConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn backend(g: &CsrGraph, a: &AttributeStore) -> Box<dyn SamplingBackend> {
    Box::new(CpuBackend::from_partitioned(placement(g, a)))
}

fn model() -> SageModel {
    SageModel::new(&WIDTHS, MODEL_SEED)
}

fn request(seed: u64, nodes: u64, roots: u64) -> SampleRequest {
    SampleRequest {
        roots: (0..roots).map(|i| skewed_root(seed, i, nodes)).collect(),
        hops: HOPS,
        fanout: FANOUT,
        seed,
    }
}

/// Warms the pipeline and folds the verification digest (untimed).
fn warm_and_digest(pipe: &InferenceService, requests: u64, nodes: u64) -> u64 {
    for s in 0..8 {
        let r = pipe.infer(request(1 << 32 | s, nodes, ROOTS_PER_REQ));
        pipe.recycle(r);
    }
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let tickets: Vec<_> = (0..VERIFY_REQUESTS.min(requests))
        .map(|s| pipe.submit(request(s, nodes, ROOTS_PER_REQ)))
        .collect();
    for t in tickets {
        let r = t.wait();
        digest = fold(digest, r.digest());
        pipe.recycle(r);
    }
    digest
}

/// One timed windowed pass over the request stream.
fn timed_pass(pipe: &InferenceService, requests: u64, nodes: u64) -> f64 {
    let start = Instant::now();
    let mut tickets = std::collections::VecDeque::new();
    let mut submitted = 0u64;
    while submitted < requests.min(WINDOW) {
        tickets.push_back(pipe.submit(request(submitted, nodes, ROOTS_PER_REQ)));
        submitted += 1;
    }
    while let Some(t) = tickets.pop_front() {
        pipe.recycle(t.wait());
        if submitted < requests {
            tickets.push_back(pipe.submit(request(submitted, nodes, ROOTS_PER_REQ)));
            submitted += 1;
        }
    }
    start.elapsed().as_secs_f64()
}

/// One chaos arm's outcome; everything here is deterministic for a
/// fixed plan seed (fault decisions are pure functions of request
/// coordinates, never wall clocks).
struct ChaosArm {
    scenario: &'static str,
    plan_digest: u64,
    expect: &'static str,
    top_fault: Option<&'static str>,
    degraded: u64,
    dumps: u64,
    dumps_correlated: bool,
}

/// Serves the chaos workload under `spec` with a live ledger and reads
/// the blame report back. Requests go through one at a time so retry /
/// breaker state advances in request order on every run.
fn chaos_arm(
    g: &CsrGraph,
    a: &AttributeStore,
    nodes: u64,
    seed: u64,
    scenario: &'static str,
    spec: ScenarioSpec,
    expect: &'static str,
) -> ChaosArm {
    let plan = FaultPlan::build(seed, spec).expect("chaos plan");
    let injector = FaultInjector::new(plan.clone());
    let chaos = ChaosBackend::new(backend(g, a), injector.clone());
    let ob = Observability::new(ObsConfig::default());
    let svc = SamplingService::start_observed(
        Box::new(chaos),
        chaos_cfg(),
        None,
        Some(injector),
        Some(ob.clone()),
    );
    let pipe = InferenceService::start(svc, model(), InferenceConfig::default());

    let mut degraded = 0u64;
    for s in 0..CHAOS_REQUESTS {
        let r = pipe.infer(request(s, nodes, ROOTS_PER_REQ));
        degraded += u64::from(r.degraded);
        pipe.recycle(r);
    }

    let snap = ob.ledger().snapshot();
    // Quantile 0: the whole population is the "tail" — fault tallies
    // then depend only on the plan, not on wall-clock ordering.
    let blame = snap.blame(0.0);
    let dumps_correlated = snap
        .dumps
        .iter()
        .all(|d| d.chaos_seed == Some(plan.seed()) && d.plan_digest == Some(plan.digest()));
    ChaosArm {
        scenario,
        plan_digest: plan.digest(),
        expect,
        top_fault: blame.top_fault(),
        degraded,
        dumps: snap.dumps.len() as u64,
        dumps_correlated,
    }
}

/// Records `MERGE_TRACES` synthetic requests from `threads` recorder
/// threads (explicit timestamps, interleaving-free trace assignment)
/// and digests the merged snapshot. Canonical ordering must make the
/// digest independent of `threads`.
fn merge_digest(threads: u64) -> u64 {
    let ledger = RequestLedger::new(LedgerConfig::default());
    std::thread::scope(|sc| {
        for w in 0..threads {
            let ledger = &ledger;
            sc.spawn(move || {
                let mut h = ledger.handle();
                let mut t = w;
                while t < MERGE_TRACES {
                    let trace = t + 1;
                    let base = (t * 97) as f64;
                    h.record_at(base, trace, Stage::Enqueue, NO_SHARD, 0.0, 0.0, 0);
                    h.record_at(
                        base + 3.0,
                        trace,
                        Stage::Admission,
                        (t % 4) as u32,
                        3.0,
                        0.0,
                        1,
                    );
                    h.record_at(base + 10.0, trace, Stage::Sampling, NO_SHARD, 0.0, 7.0, t);
                    h.record_at(base + 20.0, trace, Stage::Done, NO_SHARD, 0.0, 20.0, 0);
                    t += threads;
                }
            });
        }
    });
    ledger.snapshot().digest()
}

/// Runs every arm and writes `BENCH_obs.json`.
pub fn obs(quick: bool, seed: u64, out: &str) {
    let omit_timing = std::env::var("LSDGNN_OBS_OMIT_TIMING").is_ok();
    let zero = |v: f64| if omit_timing { 0.0 } else { v };
    let requests = if quick { QUICK_REQUESTS } else { REQUESTS };
    let (g, a) = graph(quick);
    let nodes = g.num_nodes();
    let widths: Vec<String> = WIDTHS.iter().map(|w| w.to_string()).collect();
    outln!(
        "obs bench: {nodes} nodes, {PARTITIONS} partitions, {requests} requests, sage [{}]{}",
        widths.join("x"),
        if omit_timing { " (timing omitted)" } else { "" }
    );

    // --- healthy arms -------------------------------------------------
    // All three pipelines live side by side and the timed passes
    // interleave round-robin, so clock drift and cache state perturb
    // every arm equally — the overhead claim is a ratio of minima and
    // must not inherit run-order bias.
    let baseline = InferenceService::start(
        SamplingService::start(backend(&g, &a), service_cfg()),
        model(),
        InferenceConfig::default(),
    );
    let disabled = InferenceService::start(
        SamplingService::start_observed(backend(&g, &a), service_cfg(), None, None, None),
        model(),
        InferenceConfig::default(),
    );
    let ob = Observability::new(ObsConfig::default());
    let instrumented = InferenceService::start(
        SamplingService::start_observed(
            backend(&g, &a),
            service_cfg(),
            None,
            None,
            Some(ob.clone()),
        ),
        model(),
        InferenceConfig::default(),
    );
    let base_digest = warm_and_digest(&baseline, requests, nodes);
    let dis_digest = warm_and_digest(&disabled, requests, nodes);
    let inst_digest = warm_and_digest(&instrumented, requests, nodes);
    let rounds = if quick { QUICK_TIMED_RUNS } else { TIMED_RUNS };
    let arms = [&baseline, &disabled, &instrumented];
    let mut best = [f64::INFINITY; 3];
    let mut dis_ratios = Vec::with_capacity(rounds);
    let mut inst_ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let mut secs = [0.0f64; 3];
        for slot in 0..3 {
            let which = (round + slot) % 3;
            secs[which] = timed_pass(arms[which], requests, nodes);
        }
        for (b, s) in best.iter_mut().zip(secs) {
            *b = b.min(s);
        }
        dis_ratios.push(secs[1] / secs[0]);
        inst_ratios.push(secs[2] / secs[0]);
    }
    let [base_secs, dis_secs, inst_secs] = best;
    drop(baseline);
    drop(disabled);
    drop(instrumented);
    let median = |rs: &mut Vec<f64>| {
        rs.sort_by(|x, y| x.partial_cmp(y).expect("finite ratios"));
        rs[rs.len() / 2]
    };
    // Two estimators, keep the cleaner (lower) one: scheduler stalls
    // only ever *add* time, so between the median paired ratio and the
    // ratio of per-arm minima, the smaller is the less contaminated.
    let dis_ratio = median(&mut dis_ratios).min(dis_secs / base_secs);
    let inst_ratio = median(&mut inst_ratios).min(inst_secs / base_secs);

    let digest_identical = base_digest == dis_digest && base_digest == inst_digest;
    assert!(
        digest_identical,
        "recording must never change answers: baseline {base_digest:#x} \
         disabled {dis_digest:#x} instrumented {inst_digest:#x}"
    );
    let overhead = zero(inst_ratio - 1.0);
    let disabled_overhead = zero(dis_ratio - 1.0);
    let overhead_ok = overhead < OVERHEAD_BUDGET;

    outln!(
        "  baseline     {:>8.1} req/s",
        zero(requests as f64 / base_secs)
    );
    outln!(
        "  disabled     {:>8.1} req/s   overhead {:+.2}%",
        zero(requests as f64 / dis_secs),
        disabled_overhead * 100.0
    );
    outln!(
        "  instrumented {:>8.1} req/s   overhead {:+.2}% (budget {:.0}%, ok {overhead_ok})",
        zero(requests as f64 / inst_secs),
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    outln!(
        "  digest_identical {digest_identical} ({})",
        hex(base_digest)
    );

    // --- instrumented ledger: SLO + tail blame ------------------------
    let snap = ob.ledger().snapshot();
    let e2e = ob.e2e_slo();
    outln!(
        "  slo e2e: target p99 {:.0}us  achieved {:.0}us  violations {}/{}  burn {:.2}",
        e2e.target_p99_us(),
        zero(e2e.achieved_p99_us()),
        if omit_timing { 0 } else { e2e.violations() },
        e2e.total(),
        zero(e2e.burn_rate())
    );
    // With timing omitted the p99 cut is meaningless; blame the whole
    // population instead so the stage *set* is workload-deterministic.
    let blame_q = if omit_timing { 0.0 } else { 0.99 };
    let mut blame = snap.blame(blame_q);
    if omit_timing {
        blame.stages.sort_by_key(|s| s.stage.rank());
    }
    outln!(
        "  blame (q={blame_q}): {} tail traces of {}",
        blame.tail_traces,
        blame.traces
    );
    let table = Table::new(
        &["stage", "events", "queue_ms", "service_ms", "share%"],
        &[13, 8, 10, 11, 7],
    );
    for s in &blame.stages {
        table.row(&[
            s.stage.name().to_string(),
            if omit_timing {
                "-".to_string()
            } else {
                s.events.to_string()
            },
            format!("{:.2}", zero(s.queue_us) / 1e3),
            format!("{:.2}", zero(s.service_us) / 1e3),
            format!("{:.1}", zero(s.share) * 100.0),
        ]);
    }
    assert!(
        !blame.stages.is_empty(),
        "instrumented run must attribute tail time to at least one stage"
    );

    // --- chaos arms: blame must name the injected fault ---------------
    let half = CHAOS_REQUESTS / 2;
    let arms = [
        chaos_arm(
            &g,
            &a,
            nodes,
            seed ^ 1,
            "request_loss",
            ScenarioSpec::none().with_request_loss(0.4),
            "request_loss",
        ),
        chaos_arm(
            &g,
            &a,
            nodes,
            seed ^ 2,
            "card_down",
            ScenarioSpec::none().with_card_failure(1, half),
            "card_down",
        ),
        chaos_arm(
            &g,
            &a,
            nodes,
            seed ^ 3,
            "queue_stall",
            ScenarioSpec::none().with_queue_stall(0, 1, 2_000),
            "queue_stall",
        ),
    ];
    for arm in &arms {
        let named = arm.top_fault == Some(arm.expect);
        outln!(
            "  chaos {:<13} top_fault {:<13} named {named}  degraded {}/{CHAOS_REQUESTS}  \
             dumps {} correlated {}",
            arm.scenario,
            arm.top_fault.unwrap_or("-"),
            arm.degraded,
            arm.dumps,
            arm.dumps_correlated
        );
        assert!(
            named,
            "{}: tail blame must name the injected fault (got {:?})",
            arm.scenario, arm.top_fault
        );
        assert!(
            arm.dumps_correlated,
            "{}: flight dumps must carry the fault-plan seed + digest",
            arm.scenario
        );
    }
    let card = &arms[1];
    assert!(
        card.degraded > 0 && card.dumps > 0,
        "card failure must degrade requests and capture flight dumps"
    );

    // --- deterministic merge parity -----------------------------------
    let merge_serial = merge_digest(1);
    let merge_parallel = merge_digest(4);
    let merge_parity = merge_serial == merge_parallel;
    outln!(
        "  ledger merge digest {} (1 vs 4 recorder threads identical: {merge_parity})",
        hex(merge_serial)
    );
    assert!(
        merge_parity,
        "canonical event ordering must make the snapshot digest \
         independent of recorder interleaving"
    );

    let opt_str = |v: Option<&'static str>| match v {
        Some(s) if !omit_timing => Json::Str(s.to_string()),
        _ => Json::Bool(false),
    };
    let doc = Json::Obj(vec![
        ("bench".to_string(), Json::Str("obs".to_string())),
        ("quick".to_string(), Json::Bool(quick)),
        ("timing_omitted".to_string(), Json::Bool(omit_timing)),
        ("nodes".to_string(), Json::Num(nodes as f64)),
        ("partitions".to_string(), Json::Num(PARTITIONS as f64)),
        ("requests".to_string(), Json::Num(requests as f64)),
        ("model_widths".to_string(), Json::Str(widths.join("x"))),
        (
            "baseline_requests_per_sec".to_string(),
            Json::Num(zero(requests as f64 / base_secs)),
        ),
        (
            "disabled_requests_per_sec".to_string(),
            Json::Num(zero(requests as f64 / dis_secs)),
        ),
        (
            "instrumented_requests_per_sec".to_string(),
            Json::Num(zero(requests as f64 / inst_secs)),
        ),
        ("overhead_frac".to_string(), Json::Num(overhead)),
        (
            "disabled_overhead_frac".to_string(),
            Json::Num(disabled_overhead),
        ),
        ("overhead_budget".to_string(), Json::Num(OVERHEAD_BUDGET)),
        ("overhead_ok".to_string(), Json::Bool(overhead_ok)),
        ("digest_identical".to_string(), Json::Bool(digest_identical)),
        ("reply_digest".to_string(), Json::Str(hex(base_digest))),
        (
            "ledger_finished".to_string(),
            Json::Num(snap.finished as f64),
        ),
        (
            "ledger_events".to_string(),
            Json::Num(zero(snap.events.len() as f64)),
        ),
        (
            "e2e_target_p99_us".to_string(),
            Json::Num(e2e.target_p99_us()),
        ),
        (
            "e2e_achieved_p99_us".to_string(),
            Json::Num(zero(e2e.achieved_p99_us())),
        ),
        (
            "e2e_violation_rate".to_string(),
            Json::Num(zero(e2e.violation_rate())),
        ),
        (
            "e2e_burn_rate".to_string(),
            Json::Num(zero(e2e.burn_rate())),
        ),
        (
            "e2e_budget_exhausted".to_string(),
            Json::Bool(if omit_timing {
                false
            } else {
                e2e.budget_exhausted()
            }),
        ),
        ("blame_quantile".to_string(), Json::Num(blame_q)),
        (
            "blame_stages".to_string(),
            Json::Num(blame.stages.len() as f64),
        ),
        ("blame_top_stage".to_string(), opt_str(blame.top_stage())),
        (
            "chaos_arms".to_string(),
            Json::Arr(
                arms.iter()
                    .map(|arm| {
                        Json::Obj(vec![
                            ("scenario".to_string(), Json::Str(arm.scenario.to_string())),
                            ("plan_digest".to_string(), Json::Str(hex(arm.plan_digest))),
                            ("expect".to_string(), Json::Str(arm.expect.to_string())),
                            (
                                "top_fault".to_string(),
                                match arm.top_fault {
                                    Some(f) => Json::Str(f.to_string()),
                                    None => Json::Bool(false),
                                },
                            ),
                            (
                                "blame_names_fault".to_string(),
                                Json::Bool(arm.top_fault == Some(arm.expect)),
                            ),
                            ("degraded".to_string(), Json::Num(arm.degraded as f64)),
                            ("flight_dumps".to_string(), Json::Num(arm.dumps as f64)),
                            (
                                "dumps_correlated".to_string(),
                                Json::Bool(arm.dumps_correlated),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "ledger_merge_digest".to_string(),
            Json::Str(hex(merge_serial)),
        ),
        ("merge_jobs_parity".to_string(), Json::Bool(merge_parity)),
    ]);
    std::fs::write(out, doc.render()).expect("write obs bench json");
    outln!("wrote {out}");
}
