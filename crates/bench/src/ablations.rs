//! Ablation studies for the design choices DESIGN.md calls out:
//! coalescing-cache size (Tech-4), AxE core count vs Equation 3, MoF
//! packing factor (Tech-1), and the outstanding-request budget (Tech-3).

use crate::util::{banner, eng, outln, par_map, pct, Table, Telemetry};
use lsdgnn_core::axe::{AccessEngine, AxeConfig};
use lsdgnn_core::graph::DatasetConfig;
use lsdgnn_core::memfabric::{outstanding_for_mix, AccessPattern, MemoryTier, TierConfig};
use lsdgnn_core::mof::packing::ByteBreakdown;

/// Tech-4 ablation: coalescing-cache capacity sweep. The paper argues
/// 8 KB captures all the spatial reuse there is; bigger caches buy
/// nothing because temporal reuse is absent at LSD-GNN scale.
pub fn cache_sweep(scale_nodes: u64, batches: u32, tel: &mut Telemetry) {
    banner(
        "Ablation: cache",
        "coalescing-cache size vs hit rate and throughput",
    );
    let d = DatasetConfig::by_name("ss").unwrap();
    let (g, _) = d.instantiate_scaled(scale_nodes, 31);
    let t = Table::new(
        &["cache", "hit rate", "samples/s", "mem bytes"],
        &[10, 12, 16, 14],
    );
    let sizes = vec![1usize, 2, 4, 8, 16, 32, 64];
    let measured = par_map(sizes, |kb| {
        let mut cfg = AxeConfig::poc().with_batch_size(48);
        cfg.cache_bytes = kb * 1024;
        (
            kb,
            AccessEngine::new(cfg).run(&g, d.attr_len as usize, batches),
        )
    });
    for (kb, m) in measured {
        tel.registry.register(
            "axe/ablation/cache",
            &[("cache_kb", &kb.to_string())],
            Box::new(m),
        );
        t.row(&[
            format!("{kb}KB"),
            pct(m.cache_hit_rate),
            format!("{}/s", eng(m.samples_per_sec)),
            eng((m.local_bytes + m.remote_bytes) as f64),
        ]);
    }
    t.note("paper Tech-4: 8KB suffices — spatial coalescing only, no temporal reuse to find");
}

/// Core-count sweep vs the Equation 3 demand. Throughput should rise
/// until the Eq.3-sized core count saturates the dominant link.
pub fn core_sweep(scale_nodes: u64, batches: u32) {
    banner(
        "Ablation: cores",
        "AxE core count vs throughput (PoC tiers)",
    );
    let d = DatasetConfig::by_name("ss").unwrap();
    let (g, _) = d.instantiate_scaled(scale_nodes, 32);
    let tier = TierConfig {
        local: MemoryTier::FpgaLocalDram { channels: 4 },
        remote: MemoryTier::Mof { links: 3 },
        output: MemoryTier::PciePeerToPeer,
    };
    let mix = [
        AccessPattern::new(8, 0.48),
        AccessPattern::new(d.attr_len as u64 * 4, 0.52),
    ];
    let demand = outstanding_for_mix(&tier.remote.link_model(), &mix);
    outln!(
        "Eq.3 outstanding demand on the remote path: {:.0} requests (= {:.1} cores at 64 tags)",
        demand,
        demand / 64.0
    );
    let t = Table::new(&["cores", "samples/s", "avg outstanding"], &[8, 16, 16]);
    let measured = par_map(vec![1usize, 2, 4, 8, 16], |cores| {
        let cfg = AxeConfig::poc()
            .with_cores(cores)
            .with_tier(tier)
            .with_batch_size(48)
            .with_output_limit(false)
            .with_max_outstanding(64);
        (
            cores,
            AccessEngine::new(cfg).run(&g, d.attr_len as usize, batches),
        )
    });
    // Saturation detection compares neighbours, so it stays a serial
    // pass over the ordered results.
    let mut prev = 0.0;
    for (cores, m) in measured {
        let note = if prev > 0.0 && m.samples_per_sec < prev * 1.15 {
            " (saturated)"
        } else {
            ""
        };
        t.row(&[
            format!("{cores}{note}"),
            format!("{}/s", eng(m.samples_per_sec)),
            format!("{:.1}", m.avg_outstanding),
        ]);
        prev = m.samples_per_sec;
    }
}

/// Tech-1 ablation: requests-per-package factor. Utilization climbs
/// steeply from 1 to 64 requests per package for fine-grained reads.
pub fn packing_sweep() {
    banner(
        "Ablation: packing",
        "requests per package vs wire utilization (16B reads)",
    );
    let t = Table::new(&["req/package", "pkgs", "data util"], &[14, 10, 12]);
    for per in [1u64, 4, 16, 64] {
        // Generalized MoF accounting: header 12B per package each way,
        // 8B base + 4B offsets on requests.
        let n = 128u64;
        let pkgs = n.div_ceil(per);
        let b = ByteBreakdown {
            request_packages: pkgs,
            response_packages: pkgs,
            header_bytes: 12 * 2 * pkgs,
            address_bytes: (8 + 4 * per) * (n / per)
                + if !n.is_multiple_of(per) {
                    8 + 4 * (n % per)
                } else {
                    0
                },
            data_bytes: n * 16,
        };
        t.row(&[per.to_string(), pkgs.to_string(), pct(b.data_fraction())]);
    }
    t.note("Gen-Z-style 4-req packing is the paper's comparison point; MoF uses 64");
}

/// Tech-3 ablation at system level: the per-core outstanding budget on
/// the full engine (not just the isolated load unit).
pub fn outstanding_sweep(scale_nodes: u64, batches: u32) {
    banner(
        "Ablation: outstanding",
        "per-core tag budget vs engine throughput (remote-heavy config)",
    );
    let d = DatasetConfig::by_name("ll").unwrap();
    let (g, _) = d.instantiate_scaled(scale_nodes, 33);
    let t = Table::new(&["tags", "samples/s", "speedup"], &[8, 16, 16]);
    let measured = par_map(vec![1usize, 4, 16, 64, 128], |tags| {
        let cfg = AxeConfig::poc()
            .with_batch_size(32)
            .with_max_outstanding(tags)
            .with_output_limit(false);
        (
            tags,
            AccessEngine::new(cfg).run(&g, d.attr_len as usize, batches),
        )
    });
    let mut base = 0.0;
    for (tags, m) in measured {
        if base == 0.0 {
            base = m.samples_per_sec;
        }
        t.row(&[
            tags.to_string(),
            format!("{}/s", eng(m.samples_per_sec)),
            format!("{:.1}x", m.samples_per_sec / base),
        ]);
    }
    t.note("the engine-level view of the Tech-3 '30x' claim");
}

/// Runs every ablation.
pub fn all(scale_nodes: u64, batches: u32, tel: &mut Telemetry) {
    cache_sweep(scale_nodes, batches, tel);
    core_sweep(scale_nodes, batches);
    packing_sweep();
    outstanding_sweep(scale_nodes, batches);
    serving_sweep(scale_nodes, batches);
}

/// Symmetric-serving ablation: what the per-card rate looks like when the
/// node also serves its peers' fetches from local memory.
pub fn serving_sweep(scale_nodes: u64, batches: u32) {
    banner(
        "Ablation: serving",
        "modeling the symmetric serving load on local memory",
    );
    let d = DatasetConfig::by_name("ll").unwrap();
    let (g, _) = d.instantiate_scaled(scale_nodes, 34);
    let t = Table::new(&["config", "samples/s", "local bytes"], &[22, 16, 16]);
    // A single local DDR channel makes the serving load visible (with
    // the PoC's 4 channels the MoF fabric binds first and serving is
    // absorbed).
    let tier = TierConfig {
        local: MemoryTier::FpgaLocalDram { channels: 1 },
        remote: MemoryTier::Mof { links: 3 },
        output: MemoryTier::PciePeerToPeer,
    };
    let configs = vec![("issue-only (PoC)", false), ("issue + serve peers", true)];
    let measured = par_map(configs, |(name, serving)| {
        let cfg = AxeConfig::poc()
            .with_batch_size(32)
            .with_tier(tier)
            .with_output_limit(false)
            .with_symmetric_serving(serving);
        (
            name,
            AccessEngine::new(cfg).run(&g, d.attr_len as usize, batches),
        )
    });
    for (name, m) in measured {
        t.row(&[
            name.to_string(),
            format!("{}/s", eng(m.samples_per_sec)),
            eng(m.local_bytes as f64),
        ]);
    }
    t.note("all-to-all fabric symmetry: every byte fetched remotely is served by a peer");
}
