//! Parallel-harness parity: `--jobs 4` must produce byte-identical
//! stdout and metrics output to `--jobs 1` for the same experiment
//! selection. The harness promises parity by construction (private
//! per-worker registries merged in selection order, captured output
//! streamed in selection order), and this test pins that promise.
//!
//! The selection is restricted to pure-DES experiments: the wall-clock
//! serving experiments (fig2b, fig14) measure real thread latencies and
//! differ even between two identical serial runs.

use std::path::PathBuf;
use std::process::Command;

/// DES-only ablation experiments — deterministic at fixed scale.
const SELECTION: [&str; 3] = ["ablation-cache", "ablation-outstanding", "ablation-packing"];

fn run(jobs: &str, metrics_out: &PathBuf) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_lsdgnn-bench"))
        .args(SELECTION)
        .args(["--jobs", jobs, "--metrics-out"])
        .arg(metrics_out)
        .env("LSDGNN_SCALE", "600")
        .env("LSDGNN_BATCHES", "1")
        .output()
        .expect("spawn bench binary");
    assert!(
        out.status.success(),
        "bench --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn jobs4_output_is_byte_identical_to_serial() {
    let dir = std::env::temp_dir().join(format!("lsdgnn_jobs_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let serial_metrics = dir.join("serial.json");
    let parallel_metrics = dir.join("parallel.json");

    let serial_stdout = run("1", &serial_metrics);
    let parallel_stdout = run("4", &parallel_metrics);

    // The final `wrote N metrics to <path>` line necessarily names the
    // per-run output file — mask the path, keep the metric count.
    let normalize = |stdout: &[u8], path: &PathBuf| {
        String::from_utf8_lossy(stdout).replace(&path.display().to_string(), "<metrics-out>")
    };
    assert_eq!(
        normalize(&serial_stdout, &serial_metrics),
        normalize(&parallel_stdout, &parallel_metrics),
        "stdout must not depend on --jobs"
    );
    let serial = std::fs::read(&serial_metrics).expect("serial metrics written");
    let parallel = std::fs::read(&parallel_metrics).expect("parallel metrics written");
    assert!(!serial.is_empty(), "metrics export is non-empty");
    assert_eq!(
        String::from_utf8_lossy(&serial),
        String::from_utf8_lossy(&parallel),
        "metrics export must not depend on --jobs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs `chaos --quick` with timing fields zeroed, returning stdout and
/// the artifact bytes.
fn run_chaos(jobs: &str, seed: &str, out: &PathBuf) -> (String, Vec<u8>) {
    let cmd = Command::new(env!("CARGO_BIN_EXE_lsdgnn-bench"))
        .args(["chaos", "--quick", "--jobs", jobs, "--seed", seed, "--out"])
        .arg(out)
        .env("LSDGNN_CHAOS_OMIT_TIMING", "1")
        .output()
        .expect("spawn bench binary");
    assert!(
        cmd.status.success(),
        "chaos --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&cmd.stderr)
    );
    let stdout = String::from_utf8_lossy(&cmd.stdout).replace(&out.display().to_string(), "<out>");
    let artifact = std::fs::read(out).expect("chaos artifact written");
    (stdout, artifact)
}

/// Same chaos seed + scenario grid → byte-identical fault-plan digests,
/// sample-result digests and artifact across `--jobs 1` and `--jobs 4`
/// (wall-clock observations are zeroed via `LSDGNN_CHAOS_OMIT_TIMING`
/// since attempt counts under load are inherently timing-dependent).
#[test]
fn chaos_sweep_is_byte_identical_across_jobs() {
    let dir = std::env::temp_dir().join(format!("lsdgnn_chaos_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");

    let (out1, art1) = run_chaos("1", "42", &dir.join("j1.json"));
    let (out4, art4) = run_chaos("4", "42", &dir.join("j4.json"));
    assert_eq!(out1, out4, "chaos stdout must not depend on --jobs");
    assert!(!art1.is_empty(), "chaos artifact is non-empty");
    assert_eq!(
        String::from_utf8_lossy(&art1),
        String::from_utf8_lossy(&art4),
        "chaos artifact must not depend on --jobs"
    );
    assert!(
        String::from_utf8_lossy(&art1).contains("\"plan_digest\""),
        "artifact carries the fault-plan fingerprints"
    );

    // A different seed must change the stochastic decisions (and thus
    // the plan digests in the artifact) — the seed is the identity.
    let (_, other) = run_chaos("1", "43", &dir.join("seed43.json"));
    assert_ne!(
        String::from_utf8_lossy(&art1),
        String::from_utf8_lossy(&other),
        "seed must be part of the replay identity"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs `obs --quick` with timing fields zeroed, returning stdout and
/// the artifact bytes.
fn run_obs(jobs: &str, out: &PathBuf) -> (String, Vec<u8>) {
    let cmd = Command::new(env!("CARGO_BIN_EXE_lsdgnn-bench"))
        .args(["obs", "--quick", "--jobs", jobs, "--seed", "42", "--out"])
        .arg(out)
        .env("LSDGNN_OBS_OMIT_TIMING", "1")
        .output()
        .expect("spawn bench binary");
    assert!(
        cmd.status.success(),
        "obs --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&cmd.stderr)
    );
    let stdout = String::from_utf8_lossy(&cmd.stdout).replace(&out.display().to_string(), "<out>");
    let artifact = std::fs::read(out).expect("obs artifact written");
    (stdout, artifact)
}

/// Runs `wire --quick` with timing fields zeroed, returning stdout and
/// the artifact bytes.
fn run_wire(jobs: &str, seed: &str, out: &PathBuf) -> (String, Vec<u8>) {
    let cmd = Command::new(env!("CARGO_BIN_EXE_lsdgnn-bench"))
        .args(["wire", "--quick", "--jobs", jobs, "--seed", seed, "--out"])
        .arg(out)
        .env("LSDGNN_WIRE_OMIT_TIMING", "1")
        .output()
        .expect("spawn bench binary");
    assert!(
        cmd.status.success(),
        "wire --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&cmd.stderr)
    );
    let stdout = String::from_utf8_lossy(&cmd.stdout).replace(&out.display().to_string(), "<out>");
    let artifact = std::fs::read(out).expect("wire artifact written");
    (stdout, artifact)
}

/// The wire sweep is deterministic at a fixed seed: permutations, wire
/// bytes, locality rates and back-mapped digests are all functions of
/// the graph and the request stream; `LSDGNN_WIRE_OMIT_TIMING` zeroes
/// the only wall-clock field (requests/sec).
#[test]
fn wire_artifact_is_byte_identical_across_jobs() {
    let dir = std::env::temp_dir().join(format!("lsdgnn_wire_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");

    let (out1, art1) = run_wire("1", "42", &dir.join("j1.json"));
    let (out4, art4) = run_wire("4", "42", &dir.join("j4.json"));
    assert_eq!(out1, out4, "wire stdout must not depend on --jobs");
    assert!(!art1.is_empty(), "wire artifact is non-empty");
    assert_eq!(
        String::from_utf8_lossy(&art1),
        String::from_utf8_lossy(&art4),
        "wire artifact must not depend on --jobs"
    );
    let text = String::from_utf8_lossy(&art1);
    assert!(
        text.contains("\"digests_equivalent\":true"),
        "every reorder/compression arm must back-map to identical samples"
    );
    assert!(
        text.contains("\"compression_ratio_ok\":true"),
        "BDI must shrink the sampled remote traffic"
    );

    // A different scramble seed changes the layout under measurement
    // (and thus the locality rates in the artifact) but not the
    // logical samples.
    let (_, other) = run_wire("1", "43", &dir.join("seed43.json"));
    assert_ne!(
        String::from_utf8_lossy(&art1),
        String::from_utf8_lossy(&other),
        "the scramble seed must be part of the measurement identity"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs `traffic --quick` with timing fields zeroed, returning stdout
/// and the artifact bytes.
fn run_traffic(jobs: &str, seed: &str, out: &PathBuf) -> (String, Vec<u8>) {
    let cmd = Command::new(env!("CARGO_BIN_EXE_lsdgnn-bench"))
        .args([
            "traffic", "--quick", "--jobs", jobs, "--seed", seed, "--out",
        ])
        .arg(out)
        .env("LSDGNN_TRAFFIC_OMIT_TIMING", "1")
        .output()
        .expect("spawn bench binary");
    assert!(
        cmd.status.success(),
        "traffic --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&cmd.stderr)
    );
    let stdout = String::from_utf8_lossy(&cmd.stdout).replace(&out.display().to_string(), "<out>");
    let artifact = std::fs::read(out).expect("traffic artifact written");
    (stdout, artifact)
}

/// The traffic sweep is deterministic at a fixed seed: traces, admission
/// verdicts (virtual-time bucket arithmetic), simulation outcomes and
/// reply digests are all pure functions of `(seed, config)`;
/// `LSDGNN_TRAFFIC_OMIT_TIMING` zeroes the only wall-clock field.
#[test]
fn traffic_artifact_is_byte_identical_across_jobs() {
    let dir = std::env::temp_dir().join(format!("lsdgnn_traffic_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");

    let (out1, art1) = run_traffic("1", "42", &dir.join("j1.json"));
    let (out4, art4) = run_traffic("4", "42", &dir.join("j4.json"));
    assert_eq!(out1, out4, "traffic stdout must not depend on --jobs");
    assert!(!art1.is_empty(), "traffic artifact is non-empty");
    assert_eq!(
        String::from_utf8_lossy(&art1),
        String::from_utf8_lossy(&art4),
        "traffic artifact must not depend on --jobs"
    );
    let text = String::from_utf8_lossy(&art1);
    assert!(
        text.contains("\"digests_match\":true"),
        "unshaped ShapedService must replay the plain service"
    );
    assert!(
        text.contains("\"slo_met_improved\":true"),
        "shaping must improve interactive SLO attainment"
    );
    assert!(
        text.contains("\"no_unbounded_queue\":true"),
        "shaped lanes must stay bounded"
    );

    // A different seed changes the traces (and thus the per-cell
    // digests and counts) — the seed is the replay identity.
    let (_, other) = run_traffic("1", "43", &dir.join("seed43.json"));
    assert_ne!(
        String::from_utf8_lossy(&art1),
        String::from_utf8_lossy(&other),
        "seed must be part of the replay identity"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The observability bench must not depend on `--jobs`: reply digests,
/// blame attribution, chaos-arm verdicts and the canonical ledger-merge
/// digest are all scheduling-independent, and `LSDGNN_OBS_OMIT_TIMING`
/// zeroes the wall-clock-derived rest.
#[test]
fn obs_artifact_is_byte_identical_across_jobs() {
    let dir = std::env::temp_dir().join(format!("lsdgnn_obs_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");

    let (out1, art1) = run_obs("1", &dir.join("j1.json"));
    let (out4, art4) = run_obs("4", &dir.join("j4.json"));
    assert_eq!(out1, out4, "obs stdout must not depend on --jobs");
    assert_eq!(
        String::from_utf8_lossy(&art1),
        String::from_utf8_lossy(&art4),
        "obs artifact must not depend on --jobs"
    );
    let text = String::from_utf8_lossy(&art1);
    assert!(
        text.contains("\"digest_identical\":true"),
        "instrumented replies must digest-match the baseline"
    );
    assert!(
        text.contains("\"merge_jobs_parity\":true"),
        "ledger merge must be order-independent"
    );
    for fault in ["request_loss", "card_down", "queue_stall"] {
        assert!(
            text.contains(&format!("\"top_fault\":\"{fault}\"")),
            "blame must name the injected {fault} fault"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs `cache --quick` with timing fields zeroed, returning stdout and
/// the artifact bytes.
fn run_cache(jobs: &str, seed: &str, out: &PathBuf) -> (String, Vec<u8>) {
    let cmd = Command::new(env!("CARGO_BIN_EXE_lsdgnn-bench"))
        .args(["cache", "--quick", "--jobs", jobs, "--seed", seed, "--out"])
        .arg(out)
        .env("LSDGNN_CACHE_OMIT_TIMING", "1")
        .output()
        .expect("spawn bench binary");
    assert!(
        cmd.status.success(),
        "cache --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&cmd.stderr)
    );
    let stdout = String::from_utf8_lossy(&cmd.stdout).replace(&out.display().to_string(), "<out>");
    let artifact = std::fs::read(out).expect("cache artifact written");
    (stdout, artifact)
}

/// The hot-set cache sweep must not depend on `--jobs`: per-cell
/// digests, remote-request counts, tier counters and the wire-cut leg
/// are all deterministic under a fixed seed, and
/// `LSDGNN_CACHE_OMIT_TIMING` zeroes the throughput and blame-share
/// fields that ride on wall-clock batching.
#[test]
fn cache_artifact_is_byte_identical_across_jobs() {
    let dir = std::env::temp_dir().join(format!("lsdgnn_cache_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");

    let (out1, art1) = run_cache("1", "42", &dir.join("j1.json"));
    let (out4, art4) = run_cache("4", "42", &dir.join("j4.json"));
    assert_eq!(out1, out4, "cache stdout must not depend on --jobs");
    assert!(!art1.is_empty(), "cache artifact is non-empty");
    assert_eq!(
        String::from_utf8_lossy(&art1),
        String::from_utf8_lossy(&art4),
        "cache artifact must not depend on --jobs"
    );
    let text = String::from_utf8_lossy(&art1);
    assert!(
        text.contains("\"digests_match\":true"),
        "cached arms must digest-match the cache-off arm"
    );
    assert!(
        text.contains("\"remote_cut_ok\":true"),
        "the warm cache must cut remote requests at the reference cell"
    );
    assert!(
        text.contains("\"wire_cut_ok\":true"),
        "cache hits must skip WirePlane accounting"
    );
    assert!(
        text.contains("\"cache_hit_blamed\":true"),
        "the blame report must attribute time to cache_hit"
    );

    // A different seed changes the request stream (and thus the per-cell
    // digests) — the seed is the replay identity.
    let (_, other) = run_cache("1", "43", &dir.join("seed43.json"));
    assert_ne!(
        String::from_utf8_lossy(&art1),
        String::from_utf8_lossy(&other),
        "seed must be part of the replay identity"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
