//! Graph substrate benchmarks: generators, CSR queries and the
//! distributed cluster sampling path (Figures 2(b)/(c) substrate).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdgnn_core::framework::cluster::Cluster;
use lsdgnn_core::graph::{generators, AttributeStore, NodeId, PartitionedGraph};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for n in [1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("power_law", n), &n, |b, &n| {
            b.iter(|| black_box(generators::power_law(n, 8, 1)));
        });
    }
    group.finish();
}

fn bench_csr_queries(c: &mut Criterion) {
    let g = generators::power_law(50_000, 9, 2);
    c.bench_function("csr_neighbor_scan_50k", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for v in (0..50_000u64).step_by(7) {
                total += g.neighbors(NodeId(v)).len() as u64;
            }
            black_box(total)
        });
    });
}

fn bench_cluster_sampling(c: &mut Criterion) {
    let g = generators::power_law(10_000, 9, 3);
    let attrs = AttributeStore::synthetic(10_000, 72, 3);
    let pg = PartitionedGraph::new(g, 4).with_attributes(attrs);
    let cluster = Cluster::spawn(pg);
    let roots: Vec<NodeId> = (0..64).map(NodeId).collect();
    let mut group = c.benchmark_group("cluster");
    group.sample_size(20);
    group.bench_function("sample_batch_2x10_batch64_4servers", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(cluster.sample_batch(&roots, 2, 10, seed))
        });
    });
    group.finish();
    cluster.shutdown();
}

criterion_group!(
    benches,
    bench_generators,
    bench_csr_queries,
    bench_cluster_sampling
);
criterion_main!(benches);
