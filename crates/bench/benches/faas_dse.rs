//! Figures 17–21 benchmark: the full DSE grid (8 architectures x 6
//! datasets x 3 instance sizes) plus the cost-model fit.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsdgnn_core::faas::dse::run_dse;
use lsdgnn_core::faas::{CostModel, QuoteSet};
use lsdgnn_core::framework::CpuClusterModel;

fn bench_dse_grid(c: &mut Criterion) {
    let cpu = CpuClusterModel::default();
    let cost = CostModel::default_fitted();
    c.bench_function("dse_full_grid_144cells", |b| {
        b.iter(|| black_box(run_dse(&cpu, &cost)));
    });
}

fn bench_cost_fit(c: &mut Criterion) {
    let quotes = QuoteSet::alibaba_like();
    c.bench_function("cost_model_fit_10quotes", |b| {
        b.iter(|| black_box(CostModel::fit(&quotes)));
    });
}

criterion_group!(benches, bench_dse_grid, bench_cost_fit);
criterion_main!(benches);
