//! Service-vs-direct dispatch overhead: the same `SampleRequest` served
//! by a `SamplingService` (queue, shard, coalesce, reply channel) versus
//! called straight into the backend, across mini-batch sizes 1/64/512 —
//! so the batching layer's overhead is tracked in the perf trajectory.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdgnn_core::framework::{AxeBackend, SampleRequest, SamplingBackend, SamplingService};
use lsdgnn_core::graph::{generators, AttributeStore, NodeId};
use std::sync::Arc;

const BATCH_SIZES: [usize; 3] = [1, 64, 512];

fn request(roots: usize, seed: u64) -> SampleRequest {
    SampleRequest {
        roots: (0..roots as u64).map(NodeId).collect(),
        hops: 2,
        fanout: 5,
        seed,
    }
}

fn backend() -> AxeBackend {
    let g = Arc::new(generators::power_law(4_000, 8, 77));
    let a = Arc::new(AttributeStore::synthetic(4_000, 8, 77));
    AxeBackend::new(g, a)
}

fn bench_direct(c: &mut Criterion) {
    let b = backend();
    let mut group = c.benchmark_group("sampling_direct");
    for &roots in &BATCH_SIZES {
        group.bench_with_input(BenchmarkId::new("roots", roots), &roots, |bench, &roots| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(b.sample_neighbors(&request(roots, seed)))
            });
        });
    }
    group.finish();
}

fn bench_service(c: &mut Criterion) {
    let service = SamplingService::with_defaults(Box::new(backend()));
    let mut group = c.benchmark_group("sampling_service");
    for &roots in &BATCH_SIZES {
        group.bench_with_input(BenchmarkId::new("roots", roots), &roots, |bench, &roots| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(service.sample(request(roots, seed)))
            });
        });
    }
    group.finish();
    service.shutdown();
}

criterion_group!(benches, bench_direct, bench_service);
criterion_main!(benches);
