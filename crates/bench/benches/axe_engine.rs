//! Figures 14/15 anchor benchmark: the full AxE discrete-event
//! simulation per mini-batch, across core counts and memory tiers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdgnn_core::axe::{AccessEngine, AxeConfig};
use lsdgnn_core::graph::{generators, CsrGraph};
use lsdgnn_core::memfabric::TierConfig;

fn graph() -> CsrGraph {
    generators::power_law(4_000, 9, 3)
}

fn bench_core_scaling(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("axe_des_2batches");
    group.sample_size(10);
    for cores in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("cores", cores), &cores, |b, &n| {
            let cfg = AxeConfig::poc().with_cores(n).with_batch_size(32);
            b.iter(|| black_box(AccessEngine::new(cfg.clone()).run(&g, 72, 2)));
        });
    }
    group.finish();
}

fn bench_memory_tiers(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("axe_des_tiers");
    group.sample_size(10);
    for (name, fpga_local) in [("pcie_host", false), ("fpga_dram", true)] {
        group.bench_with_input(BenchmarkId::new("tier", name), &fpga_local, |b, &fl| {
            let cfg = AxeConfig::poc()
                .with_tier(TierConfig::poc(fl))
                .with_batch_size(32);
            b.iter(|| black_box(AccessEngine::new(cfg.clone()).run(&g, 72, 2)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_core_scaling, bench_memory_tiers);
criterion_main!(benches);
