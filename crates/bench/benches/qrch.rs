//! Table 7 benchmark: the three accelerator-interaction styles measured
//! on the RV32 interpreter.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdgnn_core::riscv::{measure_interaction_cost, InteractionStyle};

fn bench_interaction_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("qrch_interaction_500ops");
    for (name, style) in [
        ("mmio", InteractionStyle::Mmio),
        ("isa_ext", InteractionStyle::IsaExt),
        ("qrch", InteractionStyle::Qrch),
    ] {
        group.bench_with_input(BenchmarkId::new("style", name), &style, |b, &s| {
            b.iter(|| black_box(measure_interaction_cost(s, 500)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interaction_styles);
criterion_main!(benches);
