//! Tech-3 benchmark: the OoO load-unit simulation across tag budgets —
//! the "30x" measurement as a perf target.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdgnn_core::axe::load_unit::simulate_stream;
use lsdgnn_core::axe::LoadUnitConfig;

fn bench_load_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_unit_stream_2000req");
    for tags in [1usize, 8, 32, 128] {
        group.bench_with_input(BenchmarkId::new("tags", tags), &tags, |b, &t| {
            b.iter(|| {
                black_box(simulate_stream(
                    &LoadUnitConfig::ooo(t),
                    2_000,
                    1_100,
                    1_400,
                    7,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load_unit);
criterion_main!(benches);
