//! Tables 5/6 benchmarks: MoF frame encode/decode, packing accounting
//! and BDI compression throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsdgnn_core::mof::{bdi_compress, bdi_decompress, PackingScheme, ReadRequestPackage};

fn bench_frames(c: &mut Criterion) {
    let offsets: Vec<u32> = (0..64u32).map(|i| i * 288).collect();
    let pkg = ReadRequestPackage::new(1, 0x4000_0000, &offsets, 64).unwrap();
    let bytes = pkg.encode();
    c.bench_function("mof_request_encode_64req", |b| {
        b.iter(|| black_box(pkg.encode()));
    });
    c.bench_function("mof_request_decode_64req", |b| {
        b.iter(|| black_box(ReadRequestPackage::decode(&bytes).unwrap()));
    });
}

fn bench_packing_accounting(c: &mut Criterion) {
    c.bench_function("packing_breakdown_both_schemes", |b| {
        b.iter(|| {
            let g = PackingScheme::GenZ.breakdown(black_box(128), 16);
            let m = PackingScheme::Mof.breakdown(black_box(128), 16);
            black_box((g.data_fraction(), m.data_fraction()))
        });
    });
}

fn bench_bdi(c: &mut Criterion) {
    let addrs: Vec<u64> = (0..128u64).map(|i| 0x7F00_0000_0000 + i * 288).collect();
    c.bench_function("bdi_compress_128_addresses", |b| {
        b.iter(|| black_box(bdi_compress(&addrs)));
    });
    let block = bdi_compress(&addrs);
    c.bench_function("bdi_decompress_128_addresses", |b| {
        b.iter(|| black_box(bdi_decompress(&block).unwrap()));
    });
}

criterion_group!(benches, bench_frames, bench_packing_accounting, bench_bdi);
criterion_main!(benches);
