//! Figure 7 benchmark: the event-driven pipeline simulation across
//! depths (also a stress test of the desim kernel).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdgnn_core::axe::pipeline::{simulate_batch_latency, PipelineSpec};
use lsdgnn_core::desim::{Simulation, Time};

fn bench_pipeline_depths(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sim_256items");
    for depth in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, &d| {
            let spec = PipelineSpec::new(16, d, 8);
            b.iter(|| black_box(simulate_batch_latency(&spec, 256)));
        });
    }
    group.finish();
}

fn bench_kernel_throughput(c: &mut Criterion) {
    c.bench_function("desim_kernel_10k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            for i in 0..10_000u64 {
                sim.schedule(Time::from_ticks(i % 97), |_| {});
            }
            sim.run();
            black_box(sim.events_processed())
        });
    });
}

criterion_group!(benches, bench_pipeline_depths, bench_kernel_throughput);
criterion_main!(benches);
