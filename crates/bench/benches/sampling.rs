//! Tech-2 benchmark: streaming step-based sampling versus the
//! conventional buffered sampler and the weighted sampler, across
//! candidate-list sizes (supports the Table 2 sampling workloads).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsdgnn_core::graph::NodeId;
use lsdgnn_core::sampler::{NeighborSampler, StandardSampler, StreamingSampler, WeightedSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_sampling_k10");
    for n in [32usize, 256, 2048, 16_384] {
        let candidates: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let weights: Vec<f32> = (0..n).map(|i| 1.0 + (i % 7) as f32).collect();
        group.bench_with_input(BenchmarkId::new("standard", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| black_box(StandardSampler.sample(&mut rng, &candidates, 10)));
        });
        group.bench_with_input(BenchmarkId::new("streaming", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| black_box(StreamingSampler.sample(&mut rng, &candidates, 10)));
        });
        group.bench_with_input(BenchmarkId::new("weighted", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| black_box(WeightedSampler.sample(&mut rng, &candidates, &weights, 10)));
        });
    }
    group.finish();
}

fn bench_multihop(c: &mut Criterion) {
    use lsdgnn_core::graph::generators;
    use lsdgnn_core::sampler::MultiHopSampler;
    let g = generators::power_law(20_000, 9, 5);
    let roots: Vec<NodeId> = (0..64).map(NodeId).collect();
    let mh = MultiHopSampler::new(2, 10);
    c.bench_function("multihop_2x10_batch64", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| black_box(mh.sample(&mut rng, &g, &StreamingSampler, &roots)));
    });
}

criterion_group!(benches, bench_samplers, bench_multihop);
criterion_main!(benches);
