//! The QRCH ↔ AxE bridge: the point where the control plane meets the
//! data plane.
//!
//! The paper's §4.4/§5 stack has user C code on the RISC-V issuing AxE
//! commands through QRCH queues. [`QrchAxeBridge`] implements the
//! [`lsdgnn_riscv::Device`] trait over the framework's
//! [`AxeBackend`] — the same `SamplingBackend` the serving stack
//! dispatches to — so an assembled RV32 program samples a *real graph*
//! through the same interface the `SamplingService` uses: queue 0
//! carries the command words, queue 1 the responses.
//!
//! Wire protocol (one word per queue push):
//!
//! * `q0 <- root id`, then `q0 <- (hops << 16) | fanout` triggers a
//!   sample command; the sampled node ids stream back on `q1` preceded by
//!   their count.
//! * `q2 <- node id` triggers an attribute checksum read: `q1` receives
//!   the attribute vector's float sum as `f32` bits (a compact way for a
//!   32-bit control core to verify payloads).

use lsdgnn_framework::{AxeBackend, SampleRequest, SamplingBackend};
use lsdgnn_graph::NodeId;
use lsdgnn_riscv::Device;
use std::collections::VecDeque;
use std::sync::Arc;

/// The bridge device: drives an [`AxeBackend`] over shared graph data.
pub struct QrchAxeBridge {
    backend: AxeBackend,
    graph: Arc<lsdgnn_graph::CsrGraph>,
    seed: u64,
    /// Pending root for the two-word sample command.
    staged_root: Option<u32>,
    /// Response queue toward the CPU (q1).
    responses: VecDeque<u32>,
    commands_served: u64,
}

impl std::fmt::Debug for QrchAxeBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QrchAxeBridge")
            .field("commands_served", &self.commands_served)
            .finish()
    }
}

impl QrchAxeBridge {
    /// Creates a bridge over graph + attributes.
    pub fn new(
        graph: &lsdgnn_graph::CsrGraph,
        attributes: &lsdgnn_graph::AttributeStore,
        seed: u64,
    ) -> Self {
        let graph = Arc::new(graph.clone());
        let attributes = Arc::new(attributes.clone());
        QrchAxeBridge {
            backend: AxeBackend::new(graph.clone(), attributes),
            graph,
            seed,
            staged_root: None,
            responses: VecDeque::new(),
            commands_served: 0,
        }
    }

    /// Commands executed so far.
    pub fn commands_served(&self) -> u64 {
        self.commands_served
    }

    fn run_sample(&mut self, root: u32, spec: u32) {
        let hops = (spec >> 16).max(1);
        let fanout = (spec & 0xFFFF).max(1) as usize;
        let batch = self.backend.sample_neighbors(&SampleRequest {
            roots: vec![NodeId(u64::from(root))],
            hops,
            fanout,
            // Each command draws fresh, reproducible randomness.
            seed: self.seed.wrapping_add(self.commands_served),
        });
        let sampled: Vec<u32> = batch.hops.iter().flatten().map(|v| v.0 as u32).collect();
        self.responses.push_back(sampled.len() as u32);
        self.responses.extend(sampled);
        self.commands_served += 1;
    }

    fn run_attr_checksum(&mut self, node: u32) {
        let attrs = self.backend.gather_attributes(&[NodeId(u64::from(node))]);
        let sum: f32 = attrs.iter().sum();
        self.responses.push_back(sum.to_bits());
        self.commands_served += 1;
    }
}

impl Device for QrchAxeBridge {
    fn mmio_read(&mut self, offset: u32) -> u32 {
        match offset {
            // Status register: pending responses.
            8 => self.responses.len() as u32,
            _ => 0,
        }
    }

    fn mmio_write(&mut self, _offset: u32, _value: u32) {}

    fn qrch_push(&mut self, q: u8, value: u32) {
        match q {
            0 => match self.staged_root.take() {
                Some(root) => self.run_sample(root, value),
                None => self.staged_root = Some(value),
            },
            2 => self.run_attr_checksum(value),
            _ => {}
        }
    }

    fn qrch_pop(&mut self, q: u8) -> Option<u32> {
        if q == 1 {
            self.responses.pop_front()
        } else {
            Some(0)
        }
    }

    fn qrch_len(&mut self, q: u8) -> u32 {
        if q == 1 {
            self.responses.len() as u32
        } else {
            0
        }
    }

    fn accel_op(&mut self, a: u32, _b: u32) -> u32 {
        // Tightly-coupled degree query: deg(node a).
        self.graph
            .degree(NodeId(u64::from(a)))
            .try_into()
            .unwrap_or(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::{generators, AttributeStore};
    use lsdgnn_riscv::{assemble, Cpu};

    fn setup() -> (lsdgnn_graph::CsrGraph, AttributeStore) {
        (
            generators::power_law(300, 8, 55),
            AttributeStore::synthetic(300, 8, 55),
        )
    }

    #[test]
    fn riscv_program_samples_a_real_graph() {
        let (g, a) = setup();
        // Sample 1 hop, fanout 4, from root 5; count the returned ids.
        let program = assemble(
            "       addi x11, x0, 5        # root
                    qpush q0, x11
                    addi x12, x0, 0x1      # hops=... build (1<<16)|4
                    slli x12, x12, 16
                    addi x12, x12, 4
                    qpush q0, x12          # triggers the command
                    qpop  x13, q1          # sample count
                    addi x14, x0, 0        # ids read
                    mv   x15, x13
            read:   beq  x15, x0, done
                    qpop x16, q1
                    addi x14, x14, 1
                    addi x15, x15, -1
                    jal  x0, read
            done:   halt",
        )
        .unwrap();
        let bridge = QrchAxeBridge::new(&g, &a, 9);
        let mut cpu = Cpu::with_device(8 * 1024, bridge);
        cpu.load_program(&program);
        cpu.run(100_000).unwrap();
        let count = cpu.reg(13);
        assert!(count > 0 && count <= 4, "sampled {count}");
        assert_eq!(cpu.reg(14), count, "read back every id");
        assert_eq!(cpu.device().commands_served(), 1);
    }

    #[test]
    fn attr_checksum_round_trips_exactly() {
        let (g, a) = setup();
        let program = assemble(
            "addi x11, x0, 42
             qpush q2, x11
             qpop  x12, q1
             halt",
        )
        .unwrap();
        let bridge = QrchAxeBridge::new(&g, &a, 10);
        let mut cpu = Cpu::with_device(4 * 1024, bridge);
        cpu.load_program(&program);
        cpu.run(10_000).unwrap();
        let got = f32::from_bits(cpu.reg(12));
        let want: f32 = a.get(NodeId(42)).iter().sum();
        assert_eq!(got, want);
    }

    #[test]
    fn tightly_coupled_degree_query() {
        let (g, a) = setup();
        let program = assemble(
            "addi x11, x0, 7
             accel x12, x11, x0
             halt",
        )
        .unwrap();
        let bridge = QrchAxeBridge::new(&g, &a, 11);
        let mut cpu = Cpu::with_device(4 * 1024, bridge);
        cpu.load_program(&program);
        cpu.run(10_000).unwrap();
        assert_eq!(cpu.reg(12) as u64, g.degree(NodeId(7)));
    }

    #[test]
    fn bridge_commands_are_reproducible() {
        // Same seed, same command stream -> same responses (the
        // per-request-seed contract surfacing at the control plane).
        let (g, a) = setup();
        let run = || {
            let mut bridge = QrchAxeBridge::new(&g, &a, 12);
            bridge.qrch_push(0, 5);
            bridge.qrch_push(0, (2 << 16) | 4);
            let mut out = Vec::new();
            while let Some(v) = bridge.qrch_pop(1) {
                out.push(v);
                if bridge.qrch_len(1) == 0 {
                    break;
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
