//! # LSD-GNN: Hyperscale FPGA-as-a-Service for Distributed GNN Sampling
//!
//! A full reproduction of *"Hyperscale FPGA-as-a-Service Architecture for
//! Large-Scale Distributed Graph Neural Network"* (ISCA 2022) as a Rust
//! library. The physical FPGAs, Alibaba-internal graphs and cloud price
//! calculator are replaced with calibrated simulations (see `DESIGN.md`);
//! every table and figure of the paper's evaluation regenerates from this
//! workspace (`cargo run -p lsdgnn-bench -- all`).
//!
//! This crate is the facade: it re-exports each subsystem and offers
//! [`PocSystem`], a one-call assembly of the proof-of-concept pipeline.
//!
//! ## Subsystems
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`graph`] | §3.2 | CSR storage, attributes, partitioning, Table 2 datasets |
//! | [`sampler`] | §4.2 Tech-2 | standard / streaming / negative / weighted sampling |
//! | [`desim`] | — | discrete-event kernel the hardware models run on |
//! | [`memfabric`] | §3.3 | link latency/bandwidth models, Eq. 3 |
//! | [`mof`] | §4.3 | Memory-over-Fabric frames, packing, BDI, reliability |
//! | [`axe`] | §4.2 | the Access Engine simulation |
//! | [`riscv`] | §4.4 | RV32IM + QRCH control subsystem |
//! | [`nn`] | §2.1 | dense NN substrate, Figure 3 end-to-end model |
//! | [`framework`] | §5 | mini-AliGraph service, CPU baseline, offload |
//! | [`faas`] | §6–7 | the eight-architecture FaaS DSE + cost model |
//! | [`fpga`] | §7.1 | VU13P resource model (Table 11) |
//! | [`telemetry`] | §5–6 methodology | metrics registry + Chrome-trace export |
//! | [`chaos`] | robustness | deterministic fault plans + injection counters |
//!
//! ## Quickstart
//!
//! ```
//! use lsdgnn_core::PocSystem;
//!
//! let poc = PocSystem::scaled_down("ss", 2_000, 42);
//! let report = poc.compare_against_cpu(2);
//! assert!(report.fpga_vcpu_equivalent > 1.0);
//! ```

pub mod bridge;

pub use lsdgnn_axe as axe;
pub use lsdgnn_chaos as chaos;
pub use lsdgnn_desim as desim;
pub use lsdgnn_faas as faas;
pub use lsdgnn_fpga as fpga;
pub use lsdgnn_framework as framework;
pub use lsdgnn_graph as graph;
pub use lsdgnn_memfabric as memfabric;
pub use lsdgnn_mof as mof;
pub use lsdgnn_nn as nn;
pub use lsdgnn_riscv as riscv;
pub use lsdgnn_sampler as sampler;
pub use lsdgnn_telemetry as telemetry;

pub use bridge::QrchAxeBridge;

use lsdgnn_axe::{AccessEngine, AxeConfig, Measurement};
use lsdgnn_framework::{AxeBackend, CpuClusterModel, SampleRequest, SamplingService};
use lsdgnn_graph::{AttributeStore, CsrGraph, DatasetConfig, FootprintModel, NodeId};
use std::sync::Arc;

/// The assembled proof-of-concept system: a scaled-down dataset, the
/// Table 10 AxE configuration, and the CPU baseline model — enough to
/// reproduce the Figure 14 comparison in one object.
#[derive(Debug)]
pub struct PocSystem {
    /// The paper dataset being modeled.
    pub dataset: DatasetConfig,
    /// The scaled-down executable graph.
    pub graph: CsrGraph,
    /// Its synthetic attributes.
    pub attributes: AttributeStore,
    /// The AxE configuration (defaults to Table 10).
    pub axe_config: AxeConfig,
    /// The CPU baseline model.
    pub cpu_model: CpuClusterModel,
}

/// One Figure 14 comparison row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PocComparison {
    /// Simulated FPGA sampling throughput (samples/s).
    pub fpga_samples_per_sec: f64,
    /// Modeled per-vCPU software sampling throughput (samples/s).
    pub vcpu_samples_per_sec: f64,
    /// How many vCPUs one FPGA replaces (the paper's headline is ~894 on
    /// average across the six datasets).
    pub fpga_vcpu_equivalent: f64,
    /// Nodes actually sampled by routing the same mini-batches through
    /// the serving stack (`SamplingService` over an `AxeBackend`) — the
    /// functional validation beside the timing numbers.
    pub served_samples: u64,
}

impl PocSystem {
    /// Builds a PoC system for the named Table 2 dataset, scaled down to
    /// at most `max_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a Table 2 dataset.
    pub fn scaled_down(name: &str, max_nodes: u64, seed: u64) -> Self {
        let dataset =
            DatasetConfig::by_name(name).unwrap_or_else(|| panic!("unknown dataset `{name}`"));
        let (graph, attributes) = dataset.instantiate_scaled(max_nodes, seed);
        PocSystem {
            dataset,
            graph,
            attributes,
            axe_config: AxeConfig::poc().with_seed(seed),
            cpu_model: CpuClusterModel::default(),
        }
    }

    /// Runs the AxE simulation for `batches` mini-batches.
    pub fn run_axe(&self, batches: u32) -> Measurement {
        AccessEngine::new(self.axe_config.clone()).run(
            &self.graph,
            self.dataset.attr_len as usize,
            batches,
        )
    }

    /// Opens the serving stack over this system's graph: a
    /// [`SamplingService`] fed by an [`AxeBackend`]. Swapping the boxed
    /// backend for a `CpuBackend` is the one-line CPU-vs-AxE switch.
    pub fn serving_stack(&self) -> SamplingService {
        SamplingService::with_defaults(Box::new(AxeBackend::new(
            Arc::new(self.graph.clone()),
            Arc::new(self.attributes.clone()),
        )))
    }

    /// Runs the Figure 14 comparison: AxE throughput versus the per-vCPU
    /// CPU baseline for this dataset, with the same mini-batches also
    /// routed functionally through the sampling service.
    pub fn compare_against_cpu(&self, batches: u32) -> PocComparison {
        let m = self.run_axe(batches);
        let fm = FootprintModel::default();
        let vcpu = self.cpu_model.vcpu_rate_for(&self.dataset, &fm);
        // The timing numbers above come from the DES; serve the same
        // workload through the real backend interface so the comparison
        // is backed by executed sampling, not just a model.
        let service = self.serving_stack();
        let roots_per_batch = 64.min(self.graph.num_nodes() as usize);
        let mut served_samples = 0u64;
        for b in 0..batches {
            let batch = service.sample(SampleRequest {
                roots: (0..roots_per_batch as u64).map(NodeId).collect(),
                hops: self.dataset.sampling.hops,
                fanout: self.dataset.sampling.fanout as usize,
                seed: self.axe_config.seed ^ u64::from(b),
            });
            served_samples += batch.total_sampled() as u64;
        }
        service.shutdown();
        PocComparison {
            fpga_samples_per_sec: m.samples_per_sec,
            vcpu_samples_per_sec: vcpu,
            fpga_vcpu_equivalent: m.samples_per_sec / vcpu,
            served_samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poc_system_assembles_and_runs() {
        let poc = PocSystem::scaled_down("ss", 1_500, 7);
        assert_eq!(poc.dataset.name, "ss");
        let m = poc.run_axe(2);
        assert_eq!(m.batches, 2);
        assert!(m.samples_per_sec > 0.0);
    }

    #[test]
    fn fpga_replaces_many_vcpus() {
        let poc = PocSystem::scaled_down("ll", 2_000, 8);
        let cmp = poc.compare_against_cpu(2);
        assert!(
            cmp.fpga_vcpu_equivalent > 10.0,
            "vcpu equivalent {}",
            cmp.fpga_vcpu_equivalent
        );
        assert!(
            cmp.served_samples > 0,
            "the serving stack produced no samples"
        );
    }

    #[test]
    fn serving_stack_is_deterministic_per_request_seed() {
        let poc = PocSystem::scaled_down("ss", 1_500, 9);
        let service = poc.serving_stack();
        let req = SampleRequest {
            roots: (0..16).map(NodeId).collect(),
            hops: 2,
            fanout: 5,
            seed: 3,
        };
        assert_eq!(service.sample(req.clone()), service.sample(req));
        service.shutdown();
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = PocSystem::scaled_down("nope", 100, 0);
    }
}
