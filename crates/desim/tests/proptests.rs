//! Property-based tests for the simulation kernel's timing primitives,
//! including the differential test that replays random event programs
//! on the calendar-queue kernel and the heap-based reference kernel.

use lsdgnn_desim::{BandwidthResource, DetRng, ReferenceSimulation, Server, Simulation, Time};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One step of a random kernel program.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event `delay` ticks ahead; if `chain` is set, the
    /// event schedules a child that far ahead when it fires.
    Schedule { delay: u64, chain: Option<u64> },
    /// Cancel the `victim % handles.len()`-th handle issued so far.
    Cancel { victim: usize },
    /// Fire a single event.
    Step,
    /// Run until `now + dt`.
    RunUntil { dt: u64 },
    /// Drain the calendar.
    Run,
}

/// Raw generated tuple decoded into an [`Op`]: a weighted kind selector
/// plus two (shift, mantissa) delay encodings spanning the wheel's
/// levels and the overflow heap (`mantissa << shift` reaches ~5e14
/// ticks, far beyond the wheel span).
type RawOp = ((u8, usize), (u32, u64), (u32, u64));

fn decode_op(((kind, victim), (s1, m1), (s2, m2)): RawOp) -> Op {
    let delay = m1 << s1;
    match kind {
        0..=3 => Op::Schedule { delay, chain: None },
        4..=5 => Op::Schedule {
            delay,
            chain: Some(m2 << s2),
        },
        6..=7 => Op::Cancel { victim },
        8 => Op::Step,
        9 => Op::RunUntil { dt: delay },
        _ => Op::Run,
    }
}

/// Everything observable about one program execution: the fired-event
/// log (label, firing time), cancel outcomes, run_until counts, and the
/// final clock/counters.
#[derive(Debug, PartialEq, Eq)]
struct KernelTrace {
    fired: Vec<(u64, u64)>,
    cancels: Vec<bool>,
    ran_until: Vec<u64>,
    now: u64,
    processed: u64,
    pending: usize,
}

/// The common kernel surface the differential test drives.
trait Kernel: Default {
    type Handle: Copy;
    fn schedule_logged(
        &mut self,
        delay: Time,
        label: u64,
        chain: Option<u64>,
        log: Rc<RefCell<Vec<(u64, u64)>>>,
    ) -> Self::Handle;
    fn cancel_handle(&mut self, h: Self::Handle) -> bool;
    fn step_one(&mut self) -> bool;
    fn run_all(&mut self);
    fn run_to(&mut self, horizon: Time) -> u64;
    fn clock(&self) -> Time;
    fn processed_count(&self) -> u64;
    fn pending_count(&self) -> usize;
}

impl Kernel for Simulation {
    type Handle = lsdgnn_desim::EventHandle;
    fn schedule_logged(
        &mut self,
        delay: Time,
        label: u64,
        chain: Option<u64>,
        log: Rc<RefCell<Vec<(u64, u64)>>>,
    ) -> Self::Handle {
        self.schedule(delay, move |sim: &mut Simulation| {
            log.borrow_mut().push((label, sim.now().as_ticks()));
            if let Some(d) = chain {
                let log = log.clone();
                sim.schedule(Time::from_ticks(d), move |sim: &mut Simulation| {
                    log.borrow_mut()
                        .push((label | CHAIN_BIT, sim.now().as_ticks()));
                });
            }
        })
    }
    fn cancel_handle(&mut self, h: Self::Handle) -> bool {
        self.cancel(h)
    }
    fn step_one(&mut self) -> bool {
        self.step()
    }
    fn run_all(&mut self) {
        self.run()
    }
    fn run_to(&mut self, horizon: Time) -> u64 {
        self.run_until(horizon)
    }
    fn clock(&self) -> Time {
        self.now()
    }
    fn processed_count(&self) -> u64 {
        self.events_processed()
    }
    fn pending_count(&self) -> usize {
        self.events_pending()
    }
}

impl Kernel for ReferenceSimulation {
    type Handle = lsdgnn_desim::reference::ReferenceHandle;
    fn schedule_logged(
        &mut self,
        delay: Time,
        label: u64,
        chain: Option<u64>,
        log: Rc<RefCell<Vec<(u64, u64)>>>,
    ) -> Self::Handle {
        self.schedule(delay, move |sim: &mut ReferenceSimulation| {
            log.borrow_mut().push((label, sim.now().as_ticks()));
            if let Some(d) = chain {
                let log = log.clone();
                sim.schedule(Time::from_ticks(d), move |sim: &mut ReferenceSimulation| {
                    log.borrow_mut()
                        .push((label | CHAIN_BIT, sim.now().as_ticks()));
                });
            }
        })
    }
    fn cancel_handle(&mut self, h: Self::Handle) -> bool {
        self.cancel(h)
    }
    fn step_one(&mut self) -> bool {
        self.step()
    }
    fn run_all(&mut self) {
        self.run()
    }
    fn run_to(&mut self, horizon: Time) -> u64 {
        self.run_until(horizon)
    }
    fn clock(&self) -> Time {
        self.now()
    }
    fn processed_count(&self) -> u64 {
        self.events_processed()
    }
    fn pending_count(&self) -> usize {
        self.events_pending()
    }
}

const CHAIN_BIT: u64 = 1 << 63;

fn replay<K: Kernel>(ops: &[Op]) -> KernelTrace {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut sim = K::default();
    let mut handles = Vec::new();
    let mut cancels = Vec::new();
    let mut ran_until = Vec::new();
    for (label, op) in ops.iter().enumerate() {
        match *op {
            Op::Schedule { delay, chain } => handles.push(sim.schedule_logged(
                Time::from_ticks(delay),
                label as u64,
                chain,
                log.clone(),
            )),
            Op::Cancel { victim } => {
                if !handles.is_empty() {
                    let h = handles[victim % handles.len()];
                    cancels.push(sim.cancel_handle(h));
                }
            }
            Op::Step => {
                sim.step_one();
            }
            Op::RunUntil { dt } => {
                ran_until.push(sim.run_to(sim.clock() + Time::from_ticks(dt)));
            }
            Op::Run => sim.run_all(),
        }
    }
    // Drain whatever is left so the full firing order is compared.
    sim.run_all();
    let fired = log.borrow().clone();
    KernelTrace {
        fired,
        cancels,
        ran_until,
        now: sim.clock().as_ticks(),
        processed: sim.processed_count(),
        pending: sim.pending_count(),
    }
}

proptest! {
    /// Differential test: the calendar-queue kernel and the heap-based
    /// reference kernel observe identical behaviour — same event firing
    /// order (including FIFO tie-breaks), same clock, same
    /// processed/pending counters, same cancel and run_until results —
    /// on random programs of schedule/cancel/step/run_until/run.
    #[test]
    fn calendar_kernel_matches_reference_heap(
        raw in proptest::collection::vec(
            ((0u8..11, any::<usize>()), (0u32..40, 0u64..1024), (0u32..40, 0u64..1024)),
            1..80,
        ),
    ) {
        let ops: Vec<Op> = raw.into_iter().map(decode_op).collect();
        let calendar = replay::<Simulation>(&ops);
        let reference = replay::<ReferenceSimulation>(&ops);
        prop_assert_eq!(calendar, reference);
    }

    /// A bandwidth resource serializes transfers: bookings never overlap
    /// and always start at or after the request time.
    #[test]
    fn bandwidth_bookings_never_overlap(
        arrivals in proptest::collection::vec((0u64..10_000, 1u64..5_000), 1..50),
        gbps in 1u32..200,
    ) {
        let mut bw = BandwidthResource::from_gbytes_per_sec(gbps as f64);
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut prev_finish = Time::ZERO;
        let mut total_bytes = 0u64;
        for (at, bytes) in sorted {
            let now = Time::from_nanos(at);
            let (start, finish) = bw.acquire(now, bytes);
            prop_assert!(start >= now);
            prop_assert!(start >= prev_finish);
            prop_assert!(finish >= start);
            prop_assert_eq!(finish - start, bw.service_time(bytes));
            prev_finish = finish;
            total_bytes += bytes;
        }
        prop_assert_eq!(bw.bytes_moved(), total_bytes);
    }

    /// A k-server pool never runs more than k jobs concurrently.
    #[test]
    fn server_pool_respects_parallelism(
        jobs in proptest::collection::vec((0u64..1_000, 1u64..500), 1..60),
        servers in 1usize..8,
    ) {
        let mut pool = Server::new(servers);
        let mut intervals = Vec::new();
        let mut sorted = jobs.clone();
        sorted.sort();
        for (at, dur) in sorted {
            let (start, finish) = pool.acquire(Time::from_nanos(at), Time::from_nanos(dur));
            prop_assert!(start >= Time::from_nanos(at));
            intervals.push((start, finish));
        }
        // Check max overlap at every interval start.
        for &(s, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(a, b)| a <= s && s < b)
                .count();
            prop_assert!(overlapping <= servers, "{overlapping} jobs overlap with {servers} servers");
        }
    }

    /// The event calendar executes everything exactly once, in
    /// non-decreasing time order.
    #[test]
    fn calendar_runs_everything_in_order(delays in proptest::collection::vec(0u64..100_000, 1..200)) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let fired: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for &d in &delays {
            let fired = fired.clone();
            sim.schedule(Time::from_ticks(d), move |sim| {
                fired.borrow_mut().push(sim.now().as_ticks());
            });
        }
        sim.run();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = delays.clone();
        expect.sort_unstable();
        let mut got = fired.clone();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// DetRng's bounded draw is always in range.
    #[test]
    fn rng_bounded_draws(seed in 0u64..10_000, bound in 1u64..1_000_000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }
}
