//! Property-based tests for the simulation kernel's timing primitives.

use lsdgnn_desim::{BandwidthResource, DetRng, Server, Simulation, Time};
use proptest::prelude::*;

proptest! {
    /// A bandwidth resource serializes transfers: bookings never overlap
    /// and always start at or after the request time.
    #[test]
    fn bandwidth_bookings_never_overlap(
        arrivals in proptest::collection::vec((0u64..10_000, 1u64..5_000), 1..50),
        gbps in 1u32..200,
    ) {
        let mut bw = BandwidthResource::from_gbytes_per_sec(gbps as f64);
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut prev_finish = Time::ZERO;
        let mut total_bytes = 0u64;
        for (at, bytes) in sorted {
            let now = Time::from_nanos(at);
            let (start, finish) = bw.acquire(now, bytes);
            prop_assert!(start >= now);
            prop_assert!(start >= prev_finish);
            prop_assert!(finish >= start);
            prop_assert_eq!(finish - start, bw.service_time(bytes));
            prev_finish = finish;
            total_bytes += bytes;
        }
        prop_assert_eq!(bw.bytes_moved(), total_bytes);
    }

    /// A k-server pool never runs more than k jobs concurrently.
    #[test]
    fn server_pool_respects_parallelism(
        jobs in proptest::collection::vec((0u64..1_000, 1u64..500), 1..60),
        servers in 1usize..8,
    ) {
        let mut pool = Server::new(servers);
        let mut intervals = Vec::new();
        let mut sorted = jobs.clone();
        sorted.sort();
        for (at, dur) in sorted {
            let (start, finish) = pool.acquire(Time::from_nanos(at), Time::from_nanos(dur));
            prop_assert!(start >= Time::from_nanos(at));
            intervals.push((start, finish));
        }
        // Check max overlap at every interval start.
        for &(s, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(a, b)| a <= s && s < b)
                .count();
            prop_assert!(overlapping <= servers, "{overlapping} jobs overlap with {servers} servers");
        }
    }

    /// The event calendar executes everything exactly once, in
    /// non-decreasing time order.
    #[test]
    fn calendar_runs_everything_in_order(delays in proptest::collection::vec(0u64..100_000, 1..200)) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let fired: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for &d in &delays {
            let fired = fired.clone();
            sim.schedule(Time::from_ticks(d), move |sim| {
                fired.borrow_mut().push(sim.now().as_ticks());
            });
        }
        sim.run();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = delays.clone();
        expect.sort_unstable();
        let mut got = fired.clone();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// DetRng's bounded draw is always in range.
    #[test]
    fn rng_bounded_draws(seed in 0u64..10_000, bound in 1u64..1_000_000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }
}
