//! Shared-resource timing models: bandwidth-serialized links, fixed-latency
//! pipes, and k-server queues.

use crate::time::Time;
use lsdgnn_telemetry::{MetricSource, Scope};

/// A registrable summary of a [`BandwidthResource`] over a horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthStats {
    /// Configured bandwidth in GB/s.
    pub gbytes_per_sec: f64,
    /// Total bytes transferred.
    pub bytes_moved: u64,
    /// Busy fraction of the horizon.
    pub utilization: f64,
}

impl MetricSource for BandwidthStats {
    fn collect(&self, out: &mut Scope<'_>) {
        out.gauge("gbytes_per_sec", self.gbytes_per_sec);
        out.counter("bytes_moved", self.bytes_moved);
        out.gauge("utilization", self.utilization);
    }
}

/// A registrable summary of a [`Server`] pool over a horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Number of parallel servers.
    pub servers: usize,
    /// Total jobs admitted.
    pub jobs: u64,
    /// Aggregate busy fraction of `servers * horizon`.
    pub utilization: f64,
}

impl MetricSource for ServerStats {
    fn collect(&self, out: &mut Scope<'_>) {
        out.gauge("servers", self.servers as f64);
        out.counter("jobs", self.jobs);
        out.gauge("utilization", self.utilization);
    }
}

/// A resource that serializes transfers at a fixed byte rate — a bus, link
/// or DRAM channel.
///
/// `acquire(now, bytes)` books the next available slot and returns
/// `(start, finish)`: the transfer occupies the resource from `start` until
/// `finish`. Contention shows up as `start > now`.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::{BandwidthResource, Time};
/// // 16 GB/s PCIe: 16 bytes per ns.
/// let mut pcie = BandwidthResource::from_gbytes_per_sec(16.0);
/// let (s1, f1) = pcie.acquire(Time::ZERO, 64);
/// let (s2, _) = pcie.acquire(Time::ZERO, 64);
/// assert_eq!(s1, Time::ZERO);
/// assert_eq!(s2, f1); // second transfer queues behind the first
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthResource {
    /// Ticks (picoseconds) needed per byte, as a rational to avoid drift.
    ticks_per_byte_num: u64,
    ticks_per_byte_den: u64,
    next_free: Time,
    busy: Time,
    bytes_moved: u64,
}

impl BandwidthResource {
    /// Creates a resource from a bandwidth in GB/s (10^9 bytes per second).
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not positive and finite.
    pub fn from_gbytes_per_sec(gbps: f64) -> Self {
        assert!(
            gbps.is_finite() && gbps > 0.0,
            "bandwidth must be positive and finite"
        );
        // ticks/byte = 1000 / gbps (1 GB/s == 1 byte/ns == 1000 ticks/byte).
        // Scale to a rational with 10^6 denominator for precision.
        let num = (1000.0 * 1_000_000.0 / gbps).round() as u64;
        BandwidthResource {
            ticks_per_byte_num: num.max(1),
            ticks_per_byte_den: 1_000_000,
            next_free: Time::ZERO,
            busy: Time::ZERO,
            bytes_moved: 0,
        }
    }

    /// The configured bandwidth in GB/s.
    pub fn gbytes_per_sec(&self) -> f64 {
        1000.0 * self.ticks_per_byte_den as f64 / self.ticks_per_byte_num as f64
    }

    /// Time to move `bytes` with no contention.
    pub fn service_time(&self, bytes: u64) -> Time {
        Time::from_ticks(
            (bytes as u128 * self.ticks_per_byte_num as u128 / self.ticks_per_byte_den as u128)
                .max(1) as u64,
        )
    }

    /// Books a transfer of `bytes` requested at `now`; returns
    /// `(start, finish)`.
    pub fn acquire(&mut self, now: Time, bytes: u64) -> (Time, Time) {
        let start = self.next_free.max(now);
        let finish = start + self.service_time(bytes);
        self.next_free = finish;
        self.busy += finish - start;
        self.bytes_moved += bytes;
        (start, finish)
    }

    /// Earliest time a new transfer could start.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Total bytes transferred.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Fraction of `[0, horizon]` the resource was busy.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.busy.as_ticks() as f64 / horizon.as_ticks() as f64
        }
    }

    /// A registrable summary over `[0, horizon]`.
    pub fn stats(&self, horizon: Time) -> BandwidthStats {
        BandwidthStats {
            gbytes_per_sec: self.gbytes_per_sec(),
            bytes_moved: self.bytes_moved,
            utilization: self.utilization(horizon),
        }
    }
}

/// A fixed-latency, infinitely-wide pipe (models propagation delay).
///
/// # Example
///
/// ```
/// use lsdgnn_desim::{LatencyPipe, Time};
/// let wire = LatencyPipe::new(Time::from_nanos(500));
/// assert_eq!(wire.deliver_at(Time::ZERO), Time::from_nanos(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyPipe {
    latency: Time,
}

impl LatencyPipe {
    /// Creates a pipe with the given one-way latency.
    pub fn new(latency: Time) -> Self {
        LatencyPipe { latency }
    }

    /// One-way latency.
    pub fn latency(&self) -> Time {
        self.latency
    }

    /// Delivery time for something entering at `now`.
    pub fn deliver_at(&self, now: Time) -> Time {
        now + self.latency
    }
}

/// A k-server queueing resource: at most `servers` jobs in service, FIFO
/// admission, each job holding a server for its service time.
///
/// Models e.g. a memory controller with a bounded number of outstanding
/// row activations, or a sampler core pool.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::{Server, Time};
/// let mut mc = Server::new(2);
/// let t = Time::from_nanos(100);
/// assert_eq!(mc.acquire(Time::ZERO, t).1, t);
/// assert_eq!(mc.acquire(Time::ZERO, t).1, t);        // second server
/// assert_eq!(mc.acquire(Time::ZERO, t).0, t);        // queues behind
/// ```
#[derive(Debug, Clone)]
pub struct Server {
    /// Completion times of in-flight jobs, one slot per server.
    slots: Vec<Time>,
    jobs: u64,
    busy: Time,
}

impl Server {
    /// Creates a pool of `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "server count must be non-zero");
        Server {
            slots: vec![Time::ZERO; servers],
            jobs: 0,
            busy: Time::ZERO,
        }
    }

    /// Books a job arriving at `now` needing `service`; returns
    /// `(start, finish)`.
    pub fn acquire(&mut self, now: Time, service: Time) -> (Time, Time) {
        // Earliest-free server gets the job.
        let (idx, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("at least one server");
        let start = self.slots[idx].max(now);
        let finish = start + service;
        self.slots[idx] = finish;
        self.jobs += 1;
        self.busy += service;
        (start, finish)
    }

    /// Number of parallel servers.
    pub fn servers(&self) -> usize {
        self.slots.len()
    }

    /// Total jobs admitted.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Aggregate busy time across servers divided by `servers * horizon`.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.busy.as_ticks() as f64 / (horizon.as_ticks() as f64 * self.slots.len() as f64)
        }
    }

    /// A registrable summary over `[0, horizon]`.
    pub fn stats(&self, horizon: Time) -> ServerStats {
        ServerStats {
            servers: self.slots.len(),
            jobs: self.jobs,
            utilization: self.utilization(horizon),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_service_time_scales() {
        let bw = BandwidthResource::from_gbytes_per_sec(1.0); // 1 byte/ns
        assert_eq!(bw.service_time(100), Time::from_nanos(100));
        let bw16 = BandwidthResource::from_gbytes_per_sec(16.0);
        assert_eq!(bw16.service_time(1600), Time::from_nanos(100));
        assert!((bw16.gbytes_per_sec() - 16.0).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_serializes_contending_transfers() {
        let mut bw = BandwidthResource::from_gbytes_per_sec(1.0);
        let (s1, f1) = bw.acquire(Time::ZERO, 10);
        let (s2, f2) = bw.acquire(Time::ZERO, 10);
        assert_eq!(s1, Time::ZERO);
        assert_eq!(f1, Time::from_nanos(10));
        assert_eq!(s2, f1);
        assert_eq!(f2, Time::from_nanos(20));
        assert_eq!(bw.bytes_moved(), 20);
        assert!((bw.utilization(Time::from_nanos(20)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_idles_between_sparse_arrivals() {
        let mut bw = BandwidthResource::from_gbytes_per_sec(1.0);
        bw.acquire(Time::ZERO, 10);
        let (s, _) = bw.acquire(Time::from_nanos(100), 10);
        assert_eq!(s, Time::from_nanos(100));
        assert!((bw.utilization(Time::from_nanos(110)) - 20.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn minimum_one_tick_service() {
        let bw = BandwidthResource::from_gbytes_per_sec(1000.0);
        assert!(bw.service_time(0) >= Time::from_ticks(1));
    }

    #[test]
    fn server_pool_parallelism() {
        let mut s = Server::new(3);
        let svc = Time::from_nanos(10);
        for _ in 0..3 {
            let (start, _) = s.acquire(Time::ZERO, svc);
            assert_eq!(start, Time::ZERO);
        }
        let (start, finish) = s.acquire(Time::ZERO, svc);
        assert_eq!(start, svc);
        assert_eq!(finish, svc + svc);
        assert_eq!(s.jobs(), 4);
        assert_eq!(s.servers(), 3);
    }

    #[test]
    fn server_utilization() {
        let mut s = Server::new(2);
        s.acquire(Time::ZERO, Time::from_nanos(10));
        // 10 ns of work over 2 servers * 10 ns horizon = 50%.
        assert!((s.utilization(Time::from_nanos(10)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn latency_pipe_delays() {
        let p = LatencyPipe::new(Time::from_micros(2));
        assert_eq!(p.deliver_at(Time::from_micros(1)), Time::from_micros(3));
        assert_eq!(p.latency(), Time::from_micros(2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_bandwidth_panics() {
        let _ = BandwidthResource::from_gbytes_per_sec(-1.0);
    }

    #[test]
    fn resource_stats_register_as_metric_sources() {
        let mut bw = BandwidthResource::from_gbytes_per_sec(1.0);
        bw.acquire(Time::ZERO, 10);
        let mut srv = Server::new(2);
        srv.acquire(Time::ZERO, Time::from_nanos(10));
        let horizon = Time::from_nanos(10);
        let mut reg = lsdgnn_telemetry::Registry::new();
        reg.register("link", &[], Box::new(bw.stats(horizon)));
        reg.register("pool", &[], Box::new(srv.stats(horizon)));
        let snap = reg.snapshot();
        assert_eq!(snap.get("link/utilization").unwrap().as_f64(), 1.0);
        assert_eq!(snap.get("link/bytes_moved").unwrap().as_f64(), 10.0);
        assert_eq!(snap.get("pool/utilization").unwrap().as_f64(), 0.5);
    }
}
