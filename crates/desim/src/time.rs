//! Simulated time and clock-domain helpers.
//!
//! The kernel counts opaque ticks; by convention across the LSD-GNN crates
//! one tick is one **picosecond**, which lets clock domains with co-prime
//! frequencies (250 MHz logic, 322 MHz PHY, 100 MHz RISC-V) coexist without
//! accumulating rounding error.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, measured in ticks.
///
/// `Time` is used both as an absolute timestamp and as a duration; the
/// arithmetic impls cover the meaningful combinations.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::Time;
/// let t = Time::from_nanos(4) + Time::from_ticks(500);
/// assert_eq!(t.as_ticks(), 4_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero timestamp (simulation start).
    pub const ZERO: Time = Time(0);
    /// The largest representable time, used as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Creates a time from nanoseconds under the 1 tick = 1 ps convention.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds under the 1 tick = 1 ps convention.
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a time from milliseconds under the 1 tick = 1 ps convention.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Raw tick count.
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction, useful when measuring a possibly-negative gap.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two times.
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }

    /// Returns the smaller of two times.
    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A clock domain: converts cycle counts to tick spans at a fixed frequency.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::Clock;
/// let logic = Clock::from_mhz(250);
/// assert_eq!(logic.cycles(1).as_ticks(), 4_000); // 4 ns period
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    period_ticks: u64,
}

impl Clock {
    /// Creates a clock from a frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "clock frequency must be non-zero");
        Clock {
            period_ticks: 1_000_000 / mhz,
        }
    }

    /// Creates a clock with an explicit period in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `ticks` is zero.
    pub fn from_period_ticks(ticks: u64) -> Self {
        assert!(ticks > 0, "clock period must be non-zero");
        Clock {
            period_ticks: ticks,
        }
    }

    /// The clock period as a time span.
    pub fn period(&self) -> Time {
        Time(self.period_ticks)
    }

    /// The span covered by `n` cycles.
    pub fn cycles(&self, n: u64) -> Time {
        Time(self.period_ticks * n)
    }

    /// How many full cycles fit in `span`.
    pub fn cycles_in(&self, span: Time) -> u64 {
        span.as_ticks() / self.period_ticks
    }

    /// Frequency in Hz (rounded down to the tick grid).
    pub fn hz(&self) -> f64 {
        1e12 / self.period_ticks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(Time::from_nanos(1), Time::from_ticks(1_000));
        assert_eq!(Time::from_micros(1), Time::from_nanos(1_000));
        assert_eq!(Time::from_millis(1), Time::from_micros(1_000));
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ticks(10);
        let b = Time::from_ticks(3);
        assert_eq!(a + b, Time::from_ticks(13));
        assert_eq!(a - b, Time::from_ticks(7));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a * 4, Time::from_ticks(40));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn time_display_picks_unit() {
        assert_eq!(Time::from_ticks(5).to_string(), "5ps");
        assert_eq!(Time::from_nanos(5).to_string(), "5.000ns");
        assert_eq!(Time::from_micros(5).to_string(), "5.000us");
        assert_eq!(Time::from_millis(5).to_string(), "5.000ms");
    }

    #[test]
    fn clock_cycle_math() {
        let c = Clock::from_mhz(250);
        assert_eq!(c.period(), Time::from_nanos(4));
        assert_eq!(c.cycles(250_000_000).as_secs_f64(), 1.0);
        assert_eq!(c.cycles_in(Time::from_nanos(9)), 2);
        assert!((c.hz() - 250e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = Clock::from_mhz(0);
    }

    #[test]
    fn seconds_conversions() {
        let t = Time::from_millis(1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_micros_f64() - 1_500_000.0).abs() < 1e-6);
        assert!((Time::from_nanos(2).as_nanos_f64() - 2.0).abs() < 1e-12);
    }
}
