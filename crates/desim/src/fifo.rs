//! Bounded FIFOs with back-pressure accounting.
//!
//! The Access Engine's "fine-grained FIFO-connected asynchronous
//! producer-consumer" pipeline (paper §4.2, Tech-1) is modeled as stages
//! separated by these queues; the stall counters expose where back-pressure
//! forms.

use lsdgnn_telemetry::{MetricSource, Scope};
use std::collections::VecDeque;

/// A point-in-time summary of a [`Fifo`]'s accounting, detached from the
/// item type so it can be registered as a telemetry [`MetricSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoStats {
    /// Configured capacity.
    pub capacity: usize,
    /// Occupancy when the snapshot was taken.
    pub len: usize,
    /// Total successful enqueues.
    pub pushes: u64,
    /// Total successful dequeues.
    pub pops: u64,
    /// Rejected enqueues (producer stall cycles).
    pub stalls: u64,
    /// Maximum occupancy observed.
    pub high_water: usize,
}

impl MetricSource for FifoStats {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("pushes", self.pushes);
        out.counter("pops", self.pops);
        out.counter("stalls", self.stalls);
        out.gauge("high_water", self.high_water as f64);
        out.gauge("occupancy", self.len as f64 / self.capacity as f64);
    }
}

/// A bounded FIFO queue with occupancy statistics.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::Fifo;
/// let mut f = Fifo::new(2);
/// assert!(f.push(1).is_ok());
/// assert!(f.push(2).is_ok());
/// assert!(f.push(3).is_err()); // full — producer stalls
/// assert_eq!(f.pop(), Some(1));
/// assert_eq!(f.stalls(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    pushes: u64,
    pops: u64,
    stalls: u64,
    high_water: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            pushes: 0,
            pops: 0,
            stalls: 0,
            high_water: 0,
        }
    }

    /// Attempts to enqueue; on a full queue returns the item back and
    /// records a stall.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.stalls += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Peeks at the oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total successful enqueues.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful dequeues.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Rejected enqueues (producer stall cycles).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Maximum occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drains all items, preserving order.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.pops += self.items.len() as u64;
        self.items.drain(..)
    }

    /// The accounting counters as a registrable snapshot.
    pub fn stats(&self) -> FifoStats {
        FifoStats {
            capacity: self.capacity,
            len: self.items.len(),
            pushes: self.pushes,
            pops: self.pops,
            stalls: self.stalls,
            high_water: self.high_water,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_orders_items() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.push(i).unwrap();
        }
        let out: Vec<_> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn backpressure_counts_stalls() {
        let mut f = Fifo::new(1);
        f.push('a').unwrap();
        assert_eq!(f.push('b'), Err('b'));
        assert_eq!(f.push('c'), Err('c'));
        assert_eq!(f.stalls(), 2);
        assert!(f.is_full());
        f.pop().unwrap();
        assert!(f.push('b').is_ok());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        f.pop();
        f.pop();
        assert_eq!(f.high_water(), 3);
        assert_eq!(f.len(), 1);
        assert_eq!(f.free(), 3);
    }

    #[test]
    fn drain_empties_and_counts() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        let v: Vec<_> = f.drain().collect();
        assert_eq!(v, vec![1, 2]);
        assert!(f.is_empty());
        assert_eq!(f.pops(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = Fifo::new(2);
        f.push(7).unwrap();
        assert_eq!(f.peek(), Some(&7));
        assert_eq!(f.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new(0);
    }

    #[test]
    fn stats_register_as_metric_source() {
        let mut f = Fifo::new(2);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert!(f.push(3).is_err());
        f.pop();
        let mut reg = lsdgnn_telemetry::Registry::new();
        reg.register("fifo", &[("stage", "gn")], Box::new(f.stats()));
        let snap = reg.snapshot();
        use lsdgnn_telemetry::MetricValue;
        assert_eq!(snap.get("fifo/pushes"), Some(&MetricValue::Counter(2)));
        assert_eq!(snap.get("fifo/stalls"), Some(&MetricValue::Counter(1)));
        assert_eq!(snap.get("fifo/occupancy"), Some(&MetricValue::Gauge(0.5)));
    }
}
