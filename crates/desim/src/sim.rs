//! The event-calendar simulation kernel.

use crate::arena::{EventArena, EventHandle, Payload};
use crate::calendar::{CalendarQueue, EventKey};
use crate::time::Time;
use lsdgnn_telemetry::{ticks_to_us, Tracer};

/// How often (in processed events) an attached tracer samples the
/// calendar depth. The check is `is_multiple_of`, so any non-zero value
/// works; a power of two keeps it a cheap masked compare in practice.
const TRACE_SAMPLE_EVERY: u64 = 1024;

/// Discrete-event simulation kernel.
///
/// Events are one-shot closures ordered by timestamp (FIFO among equal
/// timestamps, so causality between same-cycle events is deterministic).
/// Closures receive `&mut Simulation` and typically capture the model state
/// as `Rc<RefCell<...>>` handles.
///
/// Internally the calendar is a hierarchical bucketed time wheel with an
/// overflow heap (see [`calendar`](crate::calendar)), and closures live
/// in a slab arena with inline storage for small captures (see
/// [`arena`](crate::arena)) — `schedule` → fire is allocation-free in
/// steady state. The pre-optimization heap kernel survives as
/// [`reference::ReferenceSimulation`](crate::reference::ReferenceSimulation),
/// the differential-test model.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::{Simulation, Time};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let hits = Rc::new(Cell::new(0));
/// let mut sim = Simulation::new();
/// for i in 0..4 {
///     let hits = hits.clone();
///     sim.schedule(Time::from_ticks(i * 10), move |_| hits.set(hits.get() + 1));
/// }
/// sim.run();
/// assert_eq!(hits.get(), 4);
/// ```
///
/// Scheduling returns an [`EventHandle`] that can revoke the event while
/// it is still pending:
///
/// ```
/// use lsdgnn_desim::{Simulation, Time};
///
/// let mut sim = Simulation::new();
/// let timeout = sim.schedule(Time::from_nanos(100), |_| panic!("timed out"));
/// assert!(sim.cancel(timeout));
/// sim.run(); // no panic: the timeout was revoked
/// ```
pub struct Simulation {
    now: Time,
    seq: u64,
    processed: u64,
    calendar: CalendarQueue,
    arena: EventArena,
    tracer: Option<(Tracer, u32)>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.arena.live())
            .field("processed", &self.processed)
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            now: Time::ZERO,
            seq: 0,
            processed: 0,
            calendar: CalendarQueue::new(),
            arena: EventArena::new(),
            tracer: None,
        }
    }

    /// Attaches a tracer: the kernel periodically emits a `calendar`
    /// counter track (pending/processed events) under `pid` in
    /// simulated-time microseconds.
    pub fn attach_tracer(&mut self, tracer: Tracer, pid: u32) {
        tracer.name_process(pid, "desim-kernel");
        self.tracer = Some((tracer, pid));
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending (cancelled events excluded).
    pub fn events_pending(&self) -> usize {
        self.arena.live()
    }

    /// Schedules `f` to run `delay` after the current time.
    ///
    /// The returned handle can [`cancel`](Self::cancel) the event while
    /// it is pending; simply dropping the handle does nothing.
    pub fn schedule<F>(&mut self, delay: Time, f: F) -> EventHandle
    where
        F: FnOnce(&mut Simulation) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedules `f` at an absolute timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at<F>(&mut self, at: Time, f: F) -> EventHandle
    where
        F: FnOnce(&mut Simulation) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        let handle = self.arena.insert(Payload::new(f));
        self.calendar.push(EventKey { at, seq, handle });
        handle
    }

    /// Revokes a pending event: its closure is dropped unrun and it no
    /// longer counts as pending or processed. Returns `true` if the
    /// event was still pending, `false` for a stale handle (already
    /// fired or already cancelled). The calendar entry is tombstoned and
    /// skipped lazily.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.arena.take(handle) {
            Some(payload) => {
                payload.discard();
                // The calendar key stays behind as a lazy tombstone, so
                // the queue always holds at least one key per live event.
                debug_assert!(self.calendar.keys() >= self.arena.live());
                true
            }
            None => false,
        }
    }

    /// Pops the next *live* event, skipping cancelled tombstones.
    fn pop_live(&mut self) -> Option<(Time, Payload)> {
        while let Some(EventKey { at, handle, .. }) = self.calendar.pop() {
            if let Some(payload) = self.arena.take(handle) {
                return Some((at, payload));
            }
        }
        None
    }

    /// Advances the clock and runs one popped event — the single fire
    /// path shared by `step`, `run`, `run_until` and `run_bounded`, so
    /// every entry point samples the tracer identically.
    fn fire(&mut self, at: Time, payload: Payload) {
        debug_assert!(at >= self.now);
        self.now = at;
        self.processed += 1;
        if self.processed.is_multiple_of(TRACE_SAMPLE_EVERY) {
            if let Some((tracer, pid)) = &self.tracer {
                tracer.counter(
                    "calendar",
                    *pid,
                    ticks_to_us(self.now.as_ticks()),
                    &[("pending", self.arena.live() as f64)],
                );
            }
        }
        payload.run(self);
    }

    /// Emits the span a traced bulk run records.
    fn trace_run_span(&self, name: &str, start: Time, before: u64) {
        if let Some((tracer, pid)) = &self.tracer {
            let ts = ticks_to_us(start.as_ticks());
            tracer.span_args(
                "desim",
                name,
                *pid,
                0,
                ts,
                ticks_to_us(self.now.as_ticks()) - ts,
                &[("events", (self.processed - before) as f64)],
            );
        }
    }

    /// Runs a single event; returns `false` if the calendar is empty.
    pub fn step(&mut self) -> bool {
        match self.pop_live() {
            Some((at, payload)) => {
                self.fire(at, payload);
                true
            }
            None => false,
        }
    }

    /// Runs until the calendar drains.
    pub fn run(&mut self) {
        let (start, before) = (self.now, self.processed);
        while self.step() {}
        self.trace_run_span("run", start, before);
    }

    /// Runs until the calendar drains or the next event would pass
    /// `horizon`; events strictly after the horizon stay pending.
    ///
    /// A tracer-attached run records the same `calendar` counter samples
    /// as [`run`](Self::run) plus a `run_until` span.
    ///
    /// Returns the number of events executed.
    pub fn run_until(&mut self, horizon: Time) -> u64 {
        let (start, before) = (self.now, self.processed);
        while let Some(at) = self.calendar.peek_at() {
            if at > horizon {
                break;
            }
            // The head may be a cancelled tombstone; popping resolves it
            // without advancing the clock.
            if let Some(EventKey { at, handle, .. }) = self.calendar.pop() {
                if let Some(payload) = self.arena.take(handle) {
                    self.fire(at, payload);
                }
            }
        }
        if self.now < horizon {
            self.now = horizon;
        }
        if self.processed > before {
            // Skipped for empty windows so polling callers (the service
            // path calls run_until in a loop) don't flood the trace.
            self.trace_run_span("run_until", start, before);
        }
        self.processed - before
    }

    /// Runs at most `limit` events (a runaway-model backstop).
    ///
    /// Returns the number executed.
    pub fn run_bounded(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for (i, t) in [30u64, 10, 20].iter().enumerate() {
            let order = order.clone();
            sim.schedule(Time::from_ticks(*t), move |_| order.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![1, 2, 0]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn same_time_events_run_fifo() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for i in 0..8 {
            let order = order.clone();
            sim.schedule(Time::from_ticks(5), move |_| order.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let depth = Rc::new(RefCell::new(0u32));
        fn chain(sim: &mut Simulation, depth: Rc<RefCell<u32>>, left: u32) {
            if left == 0 {
                return;
            }
            sim.schedule(Time::from_ticks(1), move |sim| {
                *depth.borrow_mut() += 1;
                chain(sim, depth.clone(), left - 1);
            });
        }
        let mut sim = Simulation::new();
        chain(&mut sim, depth.clone(), 100);
        sim.run();
        assert_eq!(*depth.borrow(), 100);
        assert_eq!(sim.now(), Time::from_ticks(100));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new();
        let hit = Rc::new(RefCell::new(0));
        for t in [10u64, 20, 30, 40] {
            let hit = hit.clone();
            sim.schedule(Time::from_ticks(t), move |_| *hit.borrow_mut() += 1);
        }
        let ran = sim.run_until(Time::from_ticks(25));
        assert_eq!(ran, 2);
        assert_eq!(*hit.borrow(), 2);
        assert_eq!(sim.now(), Time::from_ticks(25));
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(*hit.borrow(), 4);
    }

    #[test]
    fn run_bounded_limits_events() {
        let mut sim = Simulation::new();
        for t in 0..10u64 {
            sim.schedule(Time::from_ticks(t), |_| {});
        }
        assert_eq!(sim.run_bounded(4), 4);
        assert_eq!(sim.events_pending(), 6);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule(Time::from_ticks(10), |sim| {
            sim.schedule_at(Time::from_ticks(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn debug_is_nonempty() {
        let sim = Simulation::new();
        assert!(!format!("{sim:?}").is_empty());
    }

    #[test]
    fn cancelled_events_never_fire() {
        let hits = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        let mut handles = Vec::new();
        for i in 0..6u64 {
            let hits = hits.clone();
            handles.push(sim.schedule(Time::from_ticks(i * 10), move |_| {
                hits.borrow_mut().push(i);
            }));
        }
        assert!(sim.cancel(handles[1]));
        assert!(sim.cancel(handles[4]));
        assert!(!sim.cancel(handles[4]), "double cancel reports stale");
        assert_eq!(sim.events_pending(), 4);
        sim.run();
        assert_eq!(*hits.borrow(), vec![0, 2, 3, 5]);
        assert_eq!(sim.events_processed(), 4);
        assert!(!sim.cancel(handles[0]), "fired handles are stale");
    }

    #[test]
    fn cancelled_head_does_not_leak_past_run_until_horizon() {
        let hit = Rc::new(RefCell::new(0u32));
        let mut sim = Simulation::new();
        let hit2 = hit.clone();
        let h = sim.schedule(Time::from_ticks(5), move |_| *hit2.borrow_mut() += 1);
        let hit2 = hit.clone();
        sim.schedule(Time::from_ticks(50), move |_| *hit2.borrow_mut() += 1);
        sim.cancel(h);
        // The tombstone at t=5 must not cause the t=50 event to fire
        // inside a t=10 horizon.
        assert_eq!(sim.run_until(Time::from_ticks(10)), 0);
        assert_eq!(*hit.borrow(), 0);
        assert_eq!(sim.now(), Time::from_ticks(10));
        sim.run();
        assert_eq!(*hit.borrow(), 1);
    }

    #[test]
    fn scheduling_after_run_until_parks_clock_correctly() {
        // run_until advances `now` past the wheel cursor; scheduling
        // relative to the parked clock must still order correctly.
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        let o = order.clone();
        sim.schedule(Time::from_millis(2), move |_| o.borrow_mut().push("far"));
        sim.run_until(Time::from_micros(10));
        let o = order.clone();
        sim.schedule(Time::from_micros(1), move |_| o.borrow_mut().push("near"));
        sim.run();
        assert_eq!(*order.borrow(), vec!["near", "far"]);
    }

    #[test]
    fn attached_tracer_records_the_run() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        sim.attach_tracer(tracer.clone(), 1);
        for t in 0..10u64 {
            sim.schedule(Time::from_ticks(t), |_| {});
        }
        sim.run();
        let events = tracer.events();
        let run = events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "run")
            .expect("run span recorded");
        assert_eq!(run.cat, "desim");
        assert_eq!(run.args, vec![("events".to_string(), 10.0)]);
    }

    #[test]
    fn run_until_records_span_and_counter_samples() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        sim.attach_tracer(tracer.clone(), 1);
        for t in 0..3000u64 {
            sim.schedule(Time::from_ticks(t), |_| {});
        }
        sim.run_until(Time::from_ticks(5_000));
        let events = tracer.events();
        let span = events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "run_until")
            .expect("run_until span recorded");
        assert_eq!(span.cat, "desim");
        assert_eq!(span.args, vec![("events".to_string(), 3000.0)]);
        let counters = events.iter().filter(|e| e.ph == 'C').count();
        assert_eq!(counters, 2, "3000 events at 1/1024 sampling");
    }
}
