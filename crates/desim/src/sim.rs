//! The event-calendar simulation kernel.

use crate::time::Time;
use lsdgnn_telemetry::{ticks_to_us, Tracer};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How often (in processed events) an attached tracer samples the
/// calendar depth. Power of two so the modulus is a mask.
const TRACE_SAMPLE_EVERY: u64 = 1024;

/// A scheduled event: a one-shot closure run at its timestamp.
type EventFn = Box<dyn FnOnce(&mut Simulation)>;

struct Scheduled {
    at: Time,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Discrete-event simulation kernel.
///
/// Events are one-shot closures ordered by timestamp (FIFO among equal
/// timestamps, so causality between same-cycle events is deterministic).
/// Closures receive `&mut Simulation` and typically capture the model state
/// as `Rc<RefCell<...>>` handles.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::{Simulation, Time};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let hits = Rc::new(Cell::new(0));
/// let mut sim = Simulation::new();
/// for i in 0..4 {
///     let hits = hits.clone();
///     sim.schedule(Time::from_ticks(i * 10), move |_| hits.set(hits.get() + 1));
/// }
/// sim.run();
/// assert_eq!(hits.get(), 4);
/// ```
pub struct Simulation {
    now: Time,
    seq: u64,
    processed: u64,
    calendar: BinaryHeap<Reverse<Scheduled>>,
    tracer: Option<(Tracer, u32)>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.calendar.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            now: Time::ZERO,
            seq: 0,
            processed: 0,
            calendar: BinaryHeap::new(),
            tracer: None,
        }
    }

    /// Attaches a tracer: the kernel periodically emits a `calendar`
    /// counter track (pending/processed events) under `pid` in
    /// simulated-time microseconds.
    pub fn attach_tracer(&mut self, tracer: Tracer, pid: u32) {
        tracer.name_process(pid, "desim-kernel");
        self.tracer = Some((tracer, pid));
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.calendar.len()
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: Time, f: F)
    where
        F: FnOnce(&mut Simulation) + 'static,
    {
        self.schedule_at(self.now + delay, f);
    }

    /// Schedules `f` at an absolute timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at<F>(&mut self, at: Time, f: F)
    where
        F: FnOnce(&mut Simulation) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.calendar.push(Reverse(Scheduled {
            at,
            seq,
            f: Box::new(f),
        }));
    }

    /// Runs a single event; returns `false` if the calendar is empty.
    pub fn step(&mut self) -> bool {
        match self.calendar.pop() {
            Some(Reverse(ev)) => {
                debug_assert!(ev.at >= self.now);
                self.now = ev.at;
                self.processed += 1;
                if self.processed.is_multiple_of(TRACE_SAMPLE_EVERY) {
                    if let Some((tracer, pid)) = &self.tracer {
                        tracer.counter(
                            "calendar",
                            *pid,
                            ticks_to_us(self.now.as_ticks()),
                            &[("pending", self.calendar.len() as f64)],
                        );
                    }
                }
                (ev.f)(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the calendar drains.
    pub fn run(&mut self) {
        let (start, before) = (self.now, self.processed);
        while self.step() {}
        if let Some((tracer, pid)) = &self.tracer {
            let ts = ticks_to_us(start.as_ticks());
            tracer.span_args(
                "desim",
                "run",
                *pid,
                0,
                ts,
                ticks_to_us(self.now.as_ticks()) - ts,
                &[("events", (self.processed - before) as f64)],
            );
        }
    }

    /// Runs until the calendar drains or the next event would pass
    /// `horizon`; events strictly after the horizon stay pending.
    ///
    /// Returns the number of events executed.
    pub fn run_until(&mut self, horizon: Time) -> u64 {
        let start = self.processed;
        while let Some(Reverse(head)) = self.calendar.peek() {
            if head.at > horizon {
                break;
            }
            self.step();
        }
        if self.now < horizon {
            self.now = horizon;
        }
        self.processed - start
    }

    /// Runs at most `limit` events (a runaway-model backstop).
    ///
    /// Returns the number executed.
    pub fn run_bounded(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for (i, t) in [30u64, 10, 20].iter().enumerate() {
            let order = order.clone();
            sim.schedule(Time::from_ticks(*t), move |_| order.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![1, 2, 0]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn same_time_events_run_fifo() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        for i in 0..8 {
            let order = order.clone();
            sim.schedule(Time::from_ticks(5), move |_| order.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let depth = Rc::new(RefCell::new(0u32));
        fn chain(sim: &mut Simulation, depth: Rc<RefCell<u32>>, left: u32) {
            if left == 0 {
                return;
            }
            sim.schedule(Time::from_ticks(1), move |sim| {
                *depth.borrow_mut() += 1;
                chain(sim, depth.clone(), left - 1);
            });
        }
        let mut sim = Simulation::new();
        chain(&mut sim, depth.clone(), 100);
        sim.run();
        assert_eq!(*depth.borrow(), 100);
        assert_eq!(sim.now(), Time::from_ticks(100));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new();
        let hit = Rc::new(RefCell::new(0));
        for t in [10u64, 20, 30, 40] {
            let hit = hit.clone();
            sim.schedule(Time::from_ticks(t), move |_| *hit.borrow_mut() += 1);
        }
        let ran = sim.run_until(Time::from_ticks(25));
        assert_eq!(ran, 2);
        assert_eq!(*hit.borrow(), 2);
        assert_eq!(sim.now(), Time::from_ticks(25));
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(*hit.borrow(), 4);
    }

    #[test]
    fn run_bounded_limits_events() {
        let mut sim = Simulation::new();
        for t in 0..10u64 {
            sim.schedule(Time::from_ticks(t), |_| {});
        }
        assert_eq!(sim.run_bounded(4), 4);
        assert_eq!(sim.events_pending(), 6);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule(Time::from_ticks(10), |sim| {
            sim.schedule_at(Time::from_ticks(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn debug_is_nonempty() {
        let sim = Simulation::new();
        assert!(!format!("{sim:?}").is_empty());
    }

    #[test]
    fn attached_tracer_records_the_run() {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        sim.attach_tracer(tracer.clone(), 1);
        for t in 0..10u64 {
            sim.schedule(Time::from_ticks(t), |_| {});
        }
        sim.run();
        let events = tracer.events();
        let run = events
            .iter()
            .find(|e| e.ph == 'X' && e.name == "run")
            .expect("run span recorded");
        assert_eq!(run.cat, "desim");
        assert_eq!(run.args, vec![("events".to_string(), 10.0)]);
    }
}
