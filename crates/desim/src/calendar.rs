//! The hierarchical calendar queue: a multi-level bucketed time wheel
//! over raw `Time` ticks with an overflow heap for far-future events.
//!
//! # Geometry
//!
//! Level 0 buckets are [`SLOT_TICKS`] ticks wide and each level holds
//! [`SLOTS`] buckets; every level up multiplies the bucket width by
//! `SLOTS`. With 6 levels of 64 buckets over 256-tick base slots the
//! wheel spans `256 * 64^6 ≈ 1.76e13` ticks (~17.6 simulated seconds at
//! 1 tick = 1 ps) — events beyond that land in a conventional binary
//! heap (`overflow`) and migrate onto the wheel when it drains up to
//! their aligned block.
//!
//! # Ordering discipline
//!
//! Buckets are unsorted `Vec`s of compact [`EventKey`]s; total order is
//! only ever imposed on the *current* window, kept as a Vec sorted
//! descending by `(at, seq)` — timestamp order with FIFO tie-breaking
//! on the global sequence number, popped from the tail. Cascades only
//! run while that window is empty, so refilling it is one append pass
//! plus one `sort_unstable` per drained bucket (not a per-key heap
//! sift); a due-now `push` into a non-empty window falls back to a
//! binary-search insert. Bucket membership is computed from the XOR of
//! the event timestamp with the wheel's `elapsed` cursor (the classic
//! hashed-wheel rule), which keeps three invariants that make draining
//! `current` first always correct:
//!
//! 1. every key on level `L` differs from `elapsed` only in (and above)
//!    level `L`'s digit, so its bucket index is strictly ahead of the
//!    cursor's digit at that level;
//! 2. every wheel key is within the cursor's top-level block while every
//!    overflow key is beyond it, so the wheel fully drains before the
//!    overflow migrates;
//! 3. every key in `current` is at or before the current level-0 bucket
//!    window, and every other key is after it.
//!
//! Cancellation is lazy: the arena invalidates the slot and the stale
//! key is skipped (a tombstone) when the wheel reaches it.

use crate::arena::EventHandle;
use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the level-0 bucket width in ticks (256 ticks = 0.256 ns).
const SLOT_SHIFT: u32 = 8;
/// Level-0 bucket width in ticks.
pub const SLOT_TICKS: u64 = 1 << SLOT_SHIFT;
/// log2 of the bucket count per level.
const LEVEL_BITS: u32 = 6;
/// Buckets per level.
pub const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels; beyond `SLOT_TICKS * SLOTS^LEVELS` ticks ahead events
/// overflow to the heap.
pub const LEVELS: usize = 6;

/// A compact scheduled-event key: the closure itself lives in the event
/// arena under `handle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EventKey {
    pub(crate) at: Time,
    pub(crate) seq: u64,
    pub(crate) handle: EventHandle,
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

fn shift_for(level: usize) -> u32 {
    SLOT_SHIFT + LEVEL_BITS * level as u32
}

fn digit(ticks: u64, level: usize) -> usize {
    ((ticks >> shift_for(level)) as usize) & (SLOTS - 1)
}

/// The multi-level wheel plus overflow heap.
pub(crate) struct CalendarQueue {
    /// Wheel cursor in ticks; only ever advances, and never past the
    /// earliest pending key.
    elapsed: u64,
    /// `buckets[L * SLOTS + slot]` holds keys whose timestamp first
    /// differs from `elapsed` in level `L`'s digit (flattened to one
    /// `Vec` to save a pointer chase on the hot path).
    buckets: Vec<Vec<EventKey>>,
    /// One bit per slot per level — lets the advance loop find the next
    /// occupied bucket with a single `trailing_zeros`.
    occupied: [u64; LEVELS],
    /// Keys due in (or before) the current level-0 bucket window, sorted
    /// descending by `(at, seq)` — the earliest key is at the tail.
    current: Vec<EventKey>,
    /// Keys beyond the wheel span.
    overflow: BinaryHeap<Reverse<EventKey>>,
    /// Recycled bucket capacity: cascades swap the drained bucket's
    /// allocation in here instead of freeing it, so steady-state
    /// advancing does not touch the allocator.
    scratch: Vec<EventKey>,
    /// Total keys held (including lazy-cancelled tombstones).
    keys: usize,
}

impl CalendarQueue {
    pub(crate) fn new() -> CalendarQueue {
        CalendarQueue {
            elapsed: 0,
            buckets: vec![Vec::new(); LEVELS * SLOTS],
            occupied: [0; LEVELS],
            current: Vec::new(),
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            keys: 0,
        }
    }

    /// Keys held, tombstones included (diagnostics only — live-event
    /// counts come from the arena).
    pub(crate) fn keys(&self) -> usize {
        self.keys
    }

    pub(crate) fn push(&mut self, key: EventKey) {
        self.keys += 1;
        let sorted_len = self.current.len();
        self.place(key);
        // `place` appends to `current` unsorted; restore the descending
        // order with a binary-search insert when it landed amid existing
        // keys (a single appended key is trivially in order).
        if self.current.len() > sorted_len && sorted_len > 0 {
            let key = self.current.pop().expect("appended above");
            let pos = self.current.partition_point(|k| *k > key);
            self.current.insert(pos, key);
        }
    }

    fn place(&mut self, key: EventKey) {
        let at = key.at.as_ticks();
        let xor = at ^ self.elapsed;
        if at <= self.elapsed || xor < SLOT_TICKS {
            // Due now, in the past relative to the cursor (possible after
            // `run_until` parked simulated time behind an advanced
            // cursor), or inside the current level-0 bucket window.
            self.current.push(key);
            return;
        }
        let level = ((63 - xor.leading_zeros() - SLOT_SHIFT) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(Reverse(key));
            return;
        }
        let slot = digit(at, level);
        self.buckets[level * SLOTS + slot].push(key);
        self.occupied[level] |= 1 << slot;
    }

    /// Advances the wheel until `current` holds the earliest pending key.
    /// Returns `false` when the queue is empty.
    ///
    /// Only ever cascades while `current` is empty, so keys appended to
    /// it by `place` can be batch-sorted once per drained bucket.
    fn advance_to_next(&mut self) -> bool {
        loop {
            if !self.current.is_empty() {
                return true;
            }
            // Lowest level with a bucket strictly ahead of the cursor's
            // digit; invariant 1 guarantees none exist at or behind it.
            let mut cascaded = false;
            for level in 0..LEVELS {
                let cursor = digit(self.elapsed, level);
                // Buckets strictly ahead of the cursor's digit (invariant
                // 1: occupied buckets are never at or behind it).
                let ahead = self.occupied[level] & (!0u64 << cursor << 1);
                if ahead == 0 {
                    continue;
                }
                let slot = ahead.trailing_zeros() as usize;
                // Swap the drained bucket's allocation with the scratch
                // vec; its capacity comes back as the new scratch below.
                let mut bucket = std::mem::replace(
                    &mut self.buckets[level * SLOTS + slot],
                    std::mem::take(&mut self.scratch),
                );
                self.occupied[level] &= !(1u64 << slot);
                // Jump the cursor to the bucket's window base: keep the
                // digits above `level`, set `level`'s digit to `slot`,
                // zero everything below.
                let above = shift_for(level + 1);
                self.elapsed =
                    (self.elapsed >> above << above) | ((slot as u64) << shift_for(level));
                // Re-placing never targets the just-drained bucket (the
                // cursor digit at `level` is now `slot`, so these keys
                // land strictly below `level` or in `current`).
                for key in bucket.drain(..) {
                    self.place(key);
                }
                self.scratch = bucket;
                self.current.sort_unstable_by(|a, b| b.cmp(a));
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Wheel empty: migrate the overflow block containing the next
            // pending key (invariant 2: nothing on the wheel precedes it).
            match self.overflow.peek() {
                Some(Reverse(head)) => {
                    self.elapsed = head.at.as_ticks();
                    while let Some(Reverse(head)) = self.overflow.peek() {
                        let xor = head.at.as_ticks() ^ self.elapsed;
                        if xor >> shift_for(LEVELS) != 0 {
                            break;
                        }
                        let Reverse(key) = self.overflow.pop().expect("peeked");
                        self.place(key);
                    }
                    self.current.sort_unstable_by(|a, b| b.cmp(a));
                }
                None => return false,
            }
        }
    }

    /// Timestamp of the earliest pending key (tombstones included),
    /// advancing the wheel as needed.
    pub(crate) fn peek_at(&mut self) -> Option<Time> {
        if self.advance_to_next() {
            self.current.last().map(|k| k.at)
        } else {
            None
        }
    }

    /// Removes and returns the earliest key in `(at, seq)` order.
    pub(crate) fn pop(&mut self) -> Option<EventKey> {
        if !self.advance_to_next() {
            return None;
        }
        let key = self.current.pop().expect("advance found a key");
        self.keys -= 1;
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at: u64, seq: u64) -> EventKey {
        EventKey {
            at: Time::from_ticks(at),
            seq,
            handle: EventHandle {
                slot: seq as u32,
                generation: 0,
            },
        }
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = CalendarQueue::new();
        for (at, seq) in [(500u64, 0u64), (100, 1), (500, 2), (100, 3)] {
            q.push(key(at, seq));
        }
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|k| (k.at.as_ticks(), k.seq))
            .collect();
        assert_eq!(order, vec![(100, 1), (100, 3), (500, 0), (500, 2)]);
    }

    #[test]
    fn spans_every_level_and_the_overflow() {
        let mut q = CalendarQueue::new();
        // One event per level plus two beyond the wheel span.
        let mut ats = vec![1u64, 300, 20_000, 1 << 21, 1 << 27, 1 << 33, 1 << 39];
        ats.push((1u64 << 45) + 17);
        ats.push(1 << 45);
        for (seq, &at) in ats.iter().enumerate() {
            q.push(key(at, seq as u64));
        }
        let mut sorted = ats.clone();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|k| k.at.as_ticks())
            .collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = CalendarQueue::new();
        let mut rng = crate::rng::DetRng::seed_from(7);
        let mut seq = 0u64;
        let mut last = 0u64;
        let mut pending = 0i64;
        for _ in 0..10_000 {
            if pending == 0 || rng.next_below(3) > 0 {
                let spread = rng.next_below(30);
                let at = last + rng.next_below(1 << spread);
                q.push(key(at, seq));
                seq += 1;
                pending += 1;
            } else {
                let k = q.pop().expect("pending events");
                assert!(k.at.as_ticks() >= last, "{} < {}", k.at.as_ticks(), last);
                last = k.at.as_ticks();
                pending -= 1;
            }
        }
        let mut remaining: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|k| k.at.as_ticks())
            .collect();
        assert_eq!(remaining.len(), pending as usize);
        let mut sorted = remaining.clone();
        sorted.sort_unstable();
        assert_eq!(remaining, sorted);
        remaining.clear();
        assert_eq!(q.keys(), 0);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        for (seq, at) in [9u64, 4, 1 << 40, 77].into_iter().enumerate() {
            q.push(key(at, seq as u64));
        }
        while let Some(at) = q.peek_at() {
            assert_eq!(q.pop().unwrap().at, at);
        }
        assert!(q.pop().is_none());
    }
}
