//! A small deterministic RNG so the simulation kernel stays dependency-free.
//!
//! Uses the xoshiro256** algorithm seeded through SplitMix64 — statistically
//! solid for workload generation, and reproducible across platforms.

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// # Example
///
/// ```
/// use lsdgnn_desim::DetRng;
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = DetRng::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = DetRng::seed_from(4);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = DetRng::seed_from(5);
        let hits = (0..10_000).filter(|_| r.next_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bound_panics() {
        DetRng::seed_from(0).next_below(0);
    }
}
