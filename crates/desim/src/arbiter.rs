//! Bus arbitration primitives.
//!
//! The PoC's hierarchical AXI interconnect (Table 10) shares DDR channels
//! and the PCIe port among AxE cores; a rotating-priority (round-robin)
//! arbiter is the standard fair grant mechanism.

/// A work-conserving round-robin arbiter over `n` requesters.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::RoundRobinArbiter;
/// let mut arb = RoundRobinArbiter::new(3);
/// assert_eq!(arb.grant(&[true, true, false]), Some(0));
/// assert_eq!(arb.grant(&[true, true, false]), Some(1));
/// assert_eq!(arb.grant(&[true, true, false]), Some(0)); // wraps past 2
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobinArbiter {
    n: usize,
    next: usize,
    grants: Vec<u64>,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one requester");
        RoundRobinArbiter {
            n,
            next: 0,
            grants: vec![0; n],
        }
    }

    /// Grants one cycle: the first requester at or after the rotating
    /// pointer wins; `None` when nobody requests.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != n`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        for i in 0..self.n {
            let idx = (self.next + i) % self.n;
            if requests[idx] {
                self.next = (idx + 1) % self.n;
                self.grants[idx] += 1;
                return Some(idx);
            }
        }
        None
    }

    /// Total grants per requester (fairness accounting).
    pub fn grant_counts(&self) -> &[u64] {
        &self.grants
    }

    /// Number of requesters.
    pub fn requesters(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_requesters_share_equally() {
        let mut arb = RoundRobinArbiter::new(4);
        let all = [true; 4];
        for _ in 0..400 {
            arb.grant(&all);
        }
        for &g in arb.grant_counts() {
            assert_eq!(g, 100);
        }
    }

    #[test]
    fn no_starvation_under_aggressive_peer() {
        // Requester 0 always asks; requester 1 asks too — it must still
        // receive half the grants.
        let mut arb = RoundRobinArbiter::new(2);
        for _ in 0..100 {
            arb.grant(&[true, true]);
        }
        assert_eq!(arb.grant_counts(), &[50, 50]);
    }

    #[test]
    fn work_conserving_skips_idle() {
        let mut arb = RoundRobinArbiter::new(3);
        // Only requester 2 asks: it wins every cycle.
        for _ in 0..10 {
            assert_eq!(arb.grant(&[false, false, true]), Some(2));
        }
        assert_eq!(arb.grant(&[false, false, false]), None);
    }

    #[test]
    fn pointer_rotates_after_each_grant() {
        let mut arb = RoundRobinArbiter::new(3);
        assert_eq!(arb.grant(&[true, false, true]), Some(0));
        // Pointer now at 1; 1 idle, so 2 wins.
        assert_eq!(arb.grant(&[true, false, true]), Some(2));
        assert_eq!(arb.grant(&[true, false, true]), Some(0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        RoundRobinArbiter::new(2).grant(&[true]);
    }
}
