//! Measurement primitives: counters, log-scale histograms, time-weighted
//! averages and throughput meters.

use crate::time::Time;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A power-of-two bucketed histogram for latency-like samples.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ticks (bucket 0 also covers zero).
///
/// # Example
///
/// ```
/// use lsdgnn_desim::{Histogram, Time};
/// let mut h = Histogram::new();
/// h.record(Time::from_ticks(100));
/// h.record(Time::from_ticks(200));
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean().as_ticks(), 150);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Time) {
        let t = sample.as_ticks();
        let idx = if t == 0 {
            0
        } else {
            63 - t.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += t as u128;
        self.min = self.min.min(t);
        self.max = self.max.max(t);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (zero if empty).
    pub fn mean(&self) -> Time {
        if self.count == 0 {
            Time::ZERO
        } else {
            Time::from_ticks((self.sum / self.count as u128) as u64)
        }
    }

    /// Smallest sample (zero if empty).
    pub fn min(&self) -> Time {
        if self.count == 0 {
            Time::ZERO
        } else {
            Time::from_ticks(self.min)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Time {
        Time::from_ticks(self.max)
    }

    /// Approximate quantile from the bucket boundaries (upper bound of the
    /// bucket containing the q-quantile sample).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Time {
        assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
        if self.count == 0 {
            return Time::ZERO;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Time::from_ticks(1u64 << (i + 1).min(63));
            }
        }
        Time::from_ticks(self.max)
    }

    /// Interpolated `q`-percentile: linear within the containing power-of-two
    /// bucket, clamped to the observed `[min, max]` — so an empty histogram
    /// returns zero and a single-sample histogram returns that sample at
    /// every `q`. Tighter than [`Histogram::quantile`], which only reports
    /// the bucket's upper bound.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Time {
        assert!((0.0..=1.0).contains(&q), "percentile must be within [0, 1]");
        if self.count == 0 {
            return Time::ZERO;
        }
        // Edge quantiles are exact, not interpolated: q=0 is the smallest
        // observed sample, q=1 the largest. (Within-bucket interpolation
        // would otherwise report mid-bucket for q=0 whenever the first
        // occupied bucket holds more than one sample.)
        if q <= 0.0 {
            return Time::from_ticks(self.min);
        }
        if q >= 1.0 {
            return Time::from_ticks(self.max);
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if seen + b >= target {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                let frac = (target - seen) as f64 / b as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                return Time::from_ticks(v.clamp(self.min as f64, self.max as f64) as u64);
            }
            seen += b;
        }
        Time::from_ticks(self.max)
    }

    /// The telemetry summary of this histogram with every statistic
    /// converted to microseconds.
    pub fn snapshot_micros(&self) -> lsdgnn_telemetry::HistogramSnapshot {
        lsdgnn_telemetry::HistogramSnapshot {
            count: self.count,
            mean: self.mean().as_micros_f64(),
            min: self.min().as_micros_f64(),
            max: self.max().as_micros_f64(),
            p50: self.percentile(0.50).as_micros_f64(),
            p90: self.percentile(0.90).as_micros_f64(),
            p99: self.percentile(0.99).as_micros_f64(),
        }
    }
}

/// Tracks the time-weighted average of a piecewise-constant level, e.g.
/// queue occupancy or outstanding request count.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::{TimeWeighted, Time};
/// let mut o = TimeWeighted::new();
/// o.set(Time::ZERO, 4.0);
/// o.set(Time::from_ticks(10), 0.0);
/// assert_eq!(o.average(Time::from_ticks(20)), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    level: f64,
    last_change: Time,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Creates a tracker at level zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level at timestamp `now`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if timestamps go backwards.
    pub fn set(&mut self, now: Time, level: f64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.integral += self.level * (now.saturating_sub(self.last_change)).as_ticks() as f64;
        self.level = level;
        self.last_change = now;
        self.peak = self.peak.max(level);
    }

    /// Adjusts the level by `delta` at `now`.
    pub fn adjust(&mut self, now: Time, delta: f64) {
        let next = self.level + delta;
        self.set(now, next);
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Highest level observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average over `[0, horizon]`.
    pub fn average(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        let tail = self.level * horizon.saturating_sub(self.last_change).as_ticks() as f64;
        (self.integral + tail) / horizon.as_ticks() as f64
    }
}

/// Counts completed items and converts to a rate per second.
///
/// # Example
///
/// ```
/// use lsdgnn_desim::{ThroughputMeter, Time};
/// let mut m = ThroughputMeter::new();
/// m.complete(512);
/// assert_eq!(m.rate_per_sec(Time::from_millis(1)), 512_000.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputMeter {
    completed: u64,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` completions.
    pub fn complete(&mut self, n: u64) {
        self.completed += n;
    }

    /// Total completions.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Completions per simulated second over `[0, horizon]`.
    pub fn rate_per_sec(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.completed as f64 / horizon.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.add(10);
        c.incr();
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for t in [1u64, 2, 4, 8, 16] {
            h.record(Time::from_ticks(t));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Time::from_ticks(1));
        assert_eq!(h.max(), Time::from_ticks(16));
        assert_eq!(h.mean(), Time::from_ticks(6));
        assert!(h.quantile(0.5) >= Time::from_ticks(4));
        assert!(h.quantile(1.0) >= h.max());
    }

    #[test]
    fn histogram_empty_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Time::ZERO);
        assert_eq!(h.min(), Time::ZERO);
        assert_eq!(h.quantile(0.9), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "within")]
    fn bad_quantile_panics() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn percentile_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), Time::ZERO);
        assert_eq!(h.percentile(0.99), Time::ZERO);
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        let mut h = Histogram::new();
        h.record(Time::from_ticks(1234));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Time::from_ticks(1234), "q={q}");
        }
    }

    #[test]
    fn percentile_crosses_buckets_monotonically() {
        let mut h = Histogram::new();
        // 90 samples in the [4,8) bucket, 10 in the [1024,2048) bucket.
        for _ in 0..90 {
            h.record(Time::from_ticks(5));
        }
        for _ in 0..10 {
            h.record(Time::from_ticks(1500));
        }
        let p50 = h.percentile(0.50);
        let p90 = h.percentile(0.90);
        let p99 = h.percentile(0.99);
        assert!(
            p50 >= Time::from_ticks(4) && p50 < Time::from_ticks(8),
            "p50 {p50}"
        );
        assert!(p50 <= p90 && p90 <= p99, "ordering {p50} {p90} {p99}");
        assert!(p99 <= h.max() && p99 >= Time::from_ticks(1024), "p99 {p99}");
        // Interpolated percentile never exceeds the coarse quantile bound.
        assert!(p99 <= h.quantile(0.99));
    }

    #[test]
    #[should_panic(expected = "within")]
    fn bad_percentile_panics() {
        Histogram::new().percentile(-0.1);
    }

    #[test]
    fn percentile_edge_quantiles_hit_min_and_max_exactly() {
        // Regression: with >1 sample in the first occupied bucket,
        // within-bucket interpolation used to report mid-bucket for q=0.
        let mut h = Histogram::new();
        for t in [4u64, 7, 7, 1500] {
            h.record(Time::from_ticks(t));
        }
        assert_eq!(h.percentile(0.0), Time::from_ticks(4));
        assert_eq!(h.percentile(1.0), Time::from_ticks(1500));
    }

    #[test]
    fn percentile_single_bucket_many_samples_stays_in_bucket() {
        let mut h = Histogram::new();
        // All samples in [64,128).
        for t in [64u64, 80, 100, 127] {
            h.record(Time::from_ticks(t));
        }
        assert_eq!(h.percentile(0.0), Time::from_ticks(64));
        assert_eq!(h.percentile(1.0), Time::from_ticks(127));
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let p = h.percentile(q);
            assert!(p >= h.min() && p <= h.max(), "q={q} p={p}");
        }
    }

    #[test]
    fn percentile_properties_hold_for_pseudorandom_populations() {
        // Property sweep over deterministic pseudo-random populations:
        // for every q in [0,1], min <= percentile(q) <= max; percentile
        // is monotone in q; q=0 and q=1 are exact.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for pop in 0..16 {
            let mut h = Histogram::new();
            let n = 1 + (pop * 17) % 200;
            for _ in 0..n {
                h.record(Time::from_ticks(next() % 1_000_000));
            }
            let qs: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
            let mut prev = Time::ZERO;
            for &q in &qs {
                let p = h.percentile(q);
                assert!(p >= h.min(), "pop={pop} q={q}: {p} < min {}", h.min());
                assert!(p <= h.max(), "pop={pop} q={q}: {p} > max {}", h.max());
                assert!(p >= prev, "pop={pop} q={q}: not monotone");
                prev = p;
            }
            assert_eq!(h.percentile(0.0), h.min(), "pop={pop}");
            assert_eq!(h.percentile(1.0), h.max(), "pop={pop}");
        }
    }

    #[test]
    fn snapshot_micros_converts_units() {
        let mut h = Histogram::new();
        h.record(Time::from_micros(100));
        h.record(Time::from_micros(300));
        let s = h.snapshot_micros();
        assert_eq!(s.count, 2);
        assert!((s.mean - 200.0).abs() < 1e-9);
        assert!((s.min - 100.0).abs() < 1e-9);
        assert!((s.max - 300.0).abs() < 1e-9);
        assert!(s.p50 >= s.min && s.p99 <= s.max);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(Time::ZERO, 10.0);
        tw.set(Time::from_ticks(5), 2.0);
        // 5 ticks at 10 + 5 ticks at 2 over 10 ticks = 6.
        assert_eq!(tw.average(Time::from_ticks(10)), 6.0);
        assert_eq!(tw.peak(), 10.0);
        assert_eq!(tw.level(), 2.0);
    }

    #[test]
    fn time_weighted_adjust() {
        let mut tw = TimeWeighted::new();
        tw.adjust(Time::ZERO, 3.0);
        tw.adjust(Time::from_ticks(4), -1.0);
        assert_eq!(tw.level(), 2.0);
        // 4 ticks at 3, 4 at 2 => avg 2.5 over 8 ticks.
        assert_eq!(tw.average(Time::from_ticks(8)), 2.5);
    }

    #[test]
    fn throughput_rate() {
        let mut m = ThroughputMeter::new();
        m.complete(100);
        m.complete(100);
        assert_eq!(m.completed(), 200);
        assert!((m.rate_per_sec(Time::from_micros(100)) - 2e6).abs() < 1e-6);
        assert_eq!(m.rate_per_sec(Time::ZERO), 0.0);
    }
}
