//! Discrete-event simulation engine underpinning the LSD-GNN hardware models.
//!
//! This crate is the timing substrate for the Access Engine (`lsdgnn-axe`),
//! Memory-over-Fabric and link models: a fast event-calendar kernel (a
//! hierarchical bucketed time wheel with an overflow heap, over a slab
//! event arena with inline closure storage and cancellable handles —
//! see [`calendar`] and [`arena`]) plus the small set of queueing
//! primitives hardware simulation needs — bounded FIFOs with
//! back-pressure accounting, bandwidth-serialized resources,
//! fixed-latency pipes and time-weighted statistics. The original
//! heap-based kernel is preserved in [`reference`] as the differential
//! -testing model and benchmark baseline.
//!
//! Time is an opaque tick count. Hardware crates interpret one tick as one
//! picosecond so that clocks of different frequencies (250 MHz logic,
//! 322 MHz PHY, 100 MHz RISC-V) compose without rounding; helpers for that
//! convention live in [`time`].
//!
//! # Example
//!
//! ```
//! use lsdgnn_desim::{Simulation, Time};
//!
//! let mut sim = Simulation::new();
//! sim.schedule(Time::from_ticks(10), |sim: &mut Simulation| {
//!     let t = sim.now();
//!     sim.schedule(Time::from_ticks(5), move |sim: &mut Simulation| {
//!         assert_eq!(sim.now(), t + Time::from_ticks(5));
//!     });
//! });
//! sim.run();
//! assert_eq!(sim.now(), Time::from_ticks(15));
//! ```

pub mod arbiter;
pub mod arena;
pub mod calendar;
pub mod fifo;
pub mod reference;
pub mod resource;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;

pub use arbiter::RoundRobinArbiter;
pub use arena::EventHandle;
pub use fifo::{Fifo, FifoStats};
pub use reference::ReferenceSimulation;
pub use resource::{BandwidthResource, BandwidthStats, LatencyPipe, Server, ServerStats};
pub use rng::DetRng;
pub use sim::Simulation;
pub use stats::{Counter, Histogram, ThroughputMeter, TimeWeighted};
pub use time::{Clock, Time};
