//! The event arena: a slab of reusable event slots with inline closure
//! storage and generation-checked handles.
//!
//! The scheduling hot path used to allocate a fresh `Box<dyn FnOnce>` per
//! event. The arena removes that allocation for the common case: closures
//! of at most [`INLINE_BYTES`] bytes (and word alignment) are written
//! directly into the slot's inline buffer; only oversized closures fall
//! back to a `Box`. Freed slots go on a freelist and are reused, so a
//! steady-state simulation stops touching the allocator entirely.
//!
//! Each slot carries a generation counter. An [`EventHandle`] names a
//! `(slot, generation)` pair, so a handle to an event that already fired
//! (or was cancelled, or whose slot was recycled) is detected instead of
//! aliasing a newer event — the calendar can keep stale keys as lazy
//! tombstones and the arena disambiguates on pop.

use crate::sim::Simulation;
use std::mem::{align_of, size_of, MaybeUninit};

/// Closures up to this many bytes are stored inline in the slot
/// (four words: enough for an `Rc` handle plus a few captured scalars,
/// which covers the hardware models' event closures).
pub const INLINE_BYTES: usize = 4 * size_of::<usize>();

const INLINE_WORDS: usize = INLINE_BYTES / size_of::<usize>();

type InlineBuf = [MaybeUninit<usize>; INLINE_WORDS];

/// A boxed event closure — the fallback for captures larger than
/// [`INLINE_BYTES`].
pub(crate) type BoxedEvent = Box<dyn FnOnce(&mut Simulation)>;

/// SAFETY contract for the inline variant: `buf` holds a valid, fully
/// initialized value of the closure type `F` that `call`/`drop` were
/// instantiated for, and that value is consumed exactly once (by `call`
/// or by `drop`, never both). The buffer is plain bytes, so moving the
/// `Payload` (slab growth, `mem::replace`) is a plain `memcpy`, which is
/// sound because Rust closures are movable values.
pub(crate) enum Payload {
    /// The closure lives in `buf`; `call` runs it, `drop_in_place` drops
    /// it without running.
    Inline {
        call: unsafe fn(*mut u8, &mut Simulation),
        drop_in_place: unsafe fn(*mut u8),
        buf: InlineBuf,
    },
    /// Oversized closure, heap-allocated as before.
    Boxed(BoxedEvent),
}

unsafe fn call_inline<F: FnOnce(&mut Simulation)>(p: *mut u8, sim: &mut Simulation) {
    // SAFETY: caller guarantees `p` holds an initialized `F` that is
    // consumed exactly once; `read` moves it out.
    let f = unsafe { p.cast::<F>().read() };
    f(sim)
}

unsafe fn drop_inline<F>(p: *mut u8) {
    // SAFETY: caller guarantees `p` holds an initialized `F` that is
    // consumed exactly once.
    unsafe { p.cast::<F>().drop_in_place() }
}

impl Payload {
    pub(crate) fn new<F>(f: F) -> Payload
    where
        F: FnOnce(&mut Simulation) + 'static,
    {
        if size_of::<F>() <= INLINE_BYTES && align_of::<F>() <= align_of::<usize>() {
            let mut buf: InlineBuf = [MaybeUninit::uninit(); INLINE_WORDS];
            // SAFETY: the size/align check above guarantees `f` fits the
            // buffer; `write` initializes it without dropping the
            // uninitialized destination.
            unsafe { buf.as_mut_ptr().cast::<F>().write(f) };
            Payload::Inline {
                call: call_inline::<F>,
                drop_in_place: drop_inline::<F>,
                buf,
            }
        } else {
            Payload::Boxed(Box::new(f))
        }
    }

    /// Consumes the payload, running the closure.
    pub(crate) fn run(self, sim: &mut Simulation) {
        match self {
            // SAFETY: `buf` (moved into this frame) holds the initialized
            // closure; `call` consumes it exactly once.
            Payload::Inline { call, mut buf, .. } => unsafe { call(buf.as_mut_ptr().cast(), sim) },
            Payload::Boxed(f) => f(sim),
        }
    }

    /// Consumes the payload without running it (cancellation / teardown),
    /// still dropping whatever the closure captured.
    pub(crate) fn discard(self) {
        match self {
            Payload::Inline {
                drop_in_place,
                mut buf,
                ..
            } =>
            // SAFETY: `buf` holds the initialized closure; dropping in
            // place consumes it exactly once.
            unsafe { drop_in_place(buf.as_mut_ptr().cast()) },
            Payload::Boxed(f) => drop(f),
        }
    }
}

struct Slot {
    generation: u32,
    payload: Option<Payload>,
}

/// A handle to one scheduled event, returned by
/// [`Simulation::schedule`](crate::Simulation::schedule) and consumed by
/// [`Simulation::cancel`](crate::Simulation::cancel). Copyable; a handle
/// whose event already fired (or was cancelled) is harmlessly stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    pub(crate) slot: u32,
    pub(crate) generation: u32,
}

/// The slab of event slots backing a [`Simulation`]'s calendar.
#[derive(Default)]
pub(crate) struct EventArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl EventArena {
    pub(crate) fn new() -> EventArena {
        EventArena::default()
    }

    /// Number of live (scheduled, not yet fired or cancelled) events.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Stores `payload`, reusing a free slot when one exists.
    pub(crate) fn insert(&mut self, payload: Payload) -> EventHandle {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.payload.is_none(), "freelist slot still occupied");
                s.payload = Some(payload);
                EventHandle {
                    slot,
                    generation: s.generation,
                }
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(payload),
                });
                EventHandle {
                    slot,
                    generation: 0,
                }
            }
        }
    }

    /// Removes and returns the payload for `handle`, freeing its slot.
    /// Returns `None` when the handle is stale (already fired, cancelled,
    /// or the slot was recycled) — the tombstone-skip path.
    pub(crate) fn take(&mut self, handle: EventHandle) -> Option<Payload> {
        let s = self.slots.get_mut(handle.slot as usize)?;
        if s.generation != handle.generation {
            return None;
        }
        let payload = s.payload.take()?;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(handle.slot);
        self.live -= 1;
        Some(payload)
    }
}

impl Drop for EventArena {
    fn drop(&mut self) {
        // Inline payloads need their captured state dropped explicitly;
        // a plain field drop would leak it.
        for slot in &mut self.slots {
            if let Some(p) = slot.payload.take() {
                p.discard();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn drop_probe() -> (Rc<Cell<u32>>, impl FnOnce(&mut Simulation)) {
        let drops = Rc::new(Cell::new(0));
        struct Probe(Rc<Cell<u32>>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }
        let probe = Probe(drops.clone());
        (drops, move |_: &mut Simulation| {
            let _keep = &probe;
        })
    }

    #[test]
    fn small_closures_go_inline_and_large_ones_box() {
        let small = Payload::new(|_| {});
        assert!(matches!(small, Payload::Inline { .. }));
        let big = [0u64; 16];
        let large = Payload::new(move |_| {
            assert_eq!(big[0], 0);
        });
        assert!(matches!(large, Payload::Boxed(_)));
        small.discard();
        large.discard();
    }

    #[test]
    fn run_consumes_captures_exactly_once() {
        let (drops, f) = drop_probe();
        let mut sim = Simulation::new();
        Payload::new(f).run(&mut sim);
        assert_eq!(drops.get(), 1);
    }

    #[test]
    fn discard_drops_captures_without_running() {
        let (drops, f) = drop_probe();
        Payload::new(f).discard();
        assert_eq!(drops.get(), 1);
    }

    #[test]
    fn arena_drop_releases_pending_inline_captures() {
        let (drops, f) = drop_probe();
        {
            let mut arena = EventArena::new();
            arena.insert(Payload::new(f));
            assert_eq!(arena.live(), 1);
        }
        assert_eq!(drops.get(), 1);
    }

    #[test]
    fn stale_handles_miss_after_take_and_reuse() {
        let mut arena = EventArena::new();
        let h1 = arena.insert(Payload::new(|_| {}));
        assert!(arena.take(h1).is_some());
        assert!(arena.take(h1).is_none(), "second take is stale");
        // The slot is reused with a bumped generation; the old handle
        // still misses.
        let h2 = arena.insert(Payload::new(|_| {}));
        assert_eq!(h1.slot, h2.slot);
        assert_ne!(h1.generation, h2.generation);
        assert!(arena.take(h1).is_none());
        assert!(arena.take(h2).is_some());
        assert_eq!(arena.live(), 0);
    }
}
