//! The pre-calendar-queue event kernel, kept as an obviously-correct
//! reference model.
//!
//! [`ReferenceSimulation`] is the original `BinaryHeap<Reverse<_>>`
//! kernel with one `Box<dyn FnOnce>` per event. It exists for two jobs:
//!
//! * **differential testing** — the property tests in
//!   `tests/proptests.rs` replay random schedule/cancel/run programs on
//!   both kernels and require identical firing order, clocks and counts;
//! * **benchmark baseline** — `lsdgnn-bench kernel` measures events/sec
//!   on both kernels and reports the calendar queue's speedup against
//!   this one (the committed numbers live in `BENCH_desim_kernel.json`).
//!
//! It intentionally stays simple (a sorted heap is its own proof of
//! time ordering) and is not used by any hardware model.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

type EventFn = Box<dyn FnOnce(&mut ReferenceSimulation)>;

struct Scheduled {
    at: Time,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A cancellation handle into a [`ReferenceSimulation`]: just the
/// event's sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReferenceHandle(u64);

/// The heap-based reference kernel. Same observable semantics as
/// [`Simulation`](crate::Simulation): time order, FIFO among equal
/// timestamps, panic on scheduling into the past, lazy cancellation.
#[derive(Default)]
pub struct ReferenceSimulation {
    now: Time,
    seq: u64,
    processed: u64,
    calendar: BinaryHeap<Reverse<Scheduled>>,
    live: HashSet<u64>,
}

impl ReferenceSimulation {
    /// Creates an empty reference simulation at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of live events still pending.
    pub fn events_pending(&self) -> usize {
        self.live.len()
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn schedule<F>(&mut self, delay: Time, f: F) -> ReferenceHandle
    where
        F: FnOnce(&mut ReferenceSimulation) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedules `f` at an absolute timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at<F>(&mut self, at: Time, f: F) -> ReferenceHandle
    where
        F: FnOnce(&mut ReferenceSimulation) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.live.insert(seq);
        self.calendar.push(Reverse(Scheduled {
            at,
            seq,
            f: Box::new(f),
        }));
        ReferenceHandle(seq)
    }

    /// Cancels a pending event; returns whether it was still pending.
    pub fn cancel(&mut self, handle: ReferenceHandle) -> bool {
        // Lazy: the heap entry stays and is skipped on pop.
        self.live.remove(&handle.0)
    }

    /// Runs a single live event; returns `false` if none remain.
    pub fn step(&mut self) -> bool {
        while let Some(Reverse(ev)) = self.calendar.pop() {
            if !self.live.remove(&ev.seq) {
                continue; // cancelled tombstone
            }
            debug_assert!(ev.at >= self.now);
            self.now = ev.at;
            self.processed += 1;
            (ev.f)(self);
            return true;
        }
        false
    }

    /// Runs until the calendar drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the calendar drains or the next event would pass
    /// `horizon`; events strictly after the horizon stay pending.
    ///
    /// Returns the number of events executed.
    pub fn run_until(&mut self, horizon: Time) -> u64 {
        let start = self.processed;
        while let Some(Reverse(head)) = self.calendar.peek() {
            if !self.live.contains(&head.seq) {
                // Drop cancelled tombstones here so the horizon check
                // always sees the next *live* event.
                self.calendar.pop();
                continue;
            }
            if head.at > horizon {
                break;
            }
            self.step();
        }
        if self.now < horizon {
            self.now = horizon;
        }
        self.processed - start
    }

    /// Runs at most `limit` events (a runaway-model backstop).
    ///
    /// Returns the number executed.
    pub fn run_bounded(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }
}

impl std::fmt::Debug for ReferenceSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceSimulation")
            .field("now", &self.now)
            .field("pending", &self.live.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn runs_in_order_with_cancellation() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = ReferenceSimulation::new();
        let mut handles = Vec::new();
        for (i, t) in [30u64, 10, 20, 10].iter().enumerate() {
            let order = order.clone();
            handles.push(sim.schedule(Time::from_ticks(*t), move |_| {
                order.borrow_mut().push(i);
            }));
        }
        assert!(sim.cancel(handles[2]));
        assert!(!sim.cancel(handles[2]), "double cancel is a no-op");
        assert_eq!(sim.events_pending(), 3);
        sim.run();
        assert_eq!(*order.borrow(), vec![1, 3, 0]);
        assert_eq!(sim.events_processed(), 3);
        assert!(!sim.cancel(handles[0]), "fired events cannot be cancelled");
    }

    #[test]
    fn run_until_skips_cancelled_heads() {
        let mut sim = ReferenceSimulation::new();
        let hit = Rc::new(RefCell::new(0u32));
        let hit2 = hit.clone();
        let h = sim.schedule(Time::from_ticks(5), move |_| *hit2.borrow_mut() += 1);
        let hit2 = hit.clone();
        sim.schedule(Time::from_ticks(30), move |_| *hit2.borrow_mut() += 1);
        sim.cancel(h);
        assert_eq!(sim.run_until(Time::from_ticks(10)), 0);
        assert_eq!(sim.now(), Time::from_ticks(10));
        sim.run();
        assert_eq!(*hit.borrow(), 1);
    }
}
