//! FPGA resource estimation for the PoC design (paper Table 11 and the
//! Tech-2 resource-saving claim).
//!
//! Synthesis is impossible offline, so resources are estimated from a
//! per-module cost table calibrated such that the Table 10 PoC
//! configuration (dual-core AxE, 3-lane MoF, 4-channel DDR4, E906 RISC-V,
//! 16 MB shared memory, PCIe QDMA) lands on the published VU13P
//! utilization of Table 11 (35.07 % LUT, 22.48 % registers, 39.29 % BRAM,
//! 40 % URAM, 12.5 % DSP, 60.53 % CLB). The same table expresses the
//! streaming-sampler saving (91.9 % LUT / 23 % registers versus the
//! buffered conventional sampler).
//!
//! # Example
//!
//! ```
//! use lsdgnn_fpga::{PocDesign, Vu13p};
//!
//! let report = PocDesign::table10().resources();
//! let u = report.utilization(&Vu13p::default());
//! assert!((u.lut_pct - 35.07).abs() < 3.0);
//! ```

use std::ops::{Add, AddAssign, Mul};

/// Resource cost of one module instance.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModuleCost {
    /// Lookup tables, in thousands.
    pub lut_k: f64,
    /// Flip-flop registers, in thousands.
    pub reg_k: f64,
    /// Block RAM in megabits.
    pub bram_mb: f64,
    /// UltraRAM in megabits.
    pub uram_mb: f64,
    /// DSP slices.
    pub dsp: f64,
}

impl Add for ModuleCost {
    type Output = ModuleCost;
    fn add(self, rhs: ModuleCost) -> ModuleCost {
        ModuleCost {
            lut_k: self.lut_k + rhs.lut_k,
            reg_k: self.reg_k + rhs.reg_k,
            bram_mb: self.bram_mb + rhs.bram_mb,
            uram_mb: self.uram_mb + rhs.uram_mb,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl AddAssign for ModuleCost {
    fn add_assign(&mut self, rhs: ModuleCost) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for ModuleCost {
    type Output = ModuleCost;
    fn mul(self, by: f64) -> ModuleCost {
        ModuleCost {
            lut_k: self.lut_k * by,
            reg_k: self.reg_k * by,
            bram_mb: self.bram_mb * by,
            uram_mb: self.uram_mb * by,
            dsp: self.dsp * by,
        }
    }
}

/// Per-module calibrated cost table.
pub mod costs {
    use super::ModuleCost;

    /// One AxE core excluding its sampler (GetNeighbor + GetAttribute
    /// pipelines, load unit, score-boards, coalescing cache, CSRs).
    pub const AXE_CORE_BASE: ModuleCost = ModuleCost {
        lut_k: 86.0,
        reg_k: 102.3,
        bram_mb: 5.5,
        uram_mb: 8.0,
        dsp: 600.0,
    };

    /// The streaming step-based sampler (Tech-2).
    pub const SAMPLER_STREAMING: ModuleCost = ModuleCost {
        lut_k: 4.0,
        reg_k: 7.7,
        bram_mb: 0.5,
        uram_mb: 0.0,
        dsp: 0.0,
    };

    /// The conventional buffered sampler: needs the N-entry candidate
    /// buffer and index logic — 91.9 % more LUTs and 23 % more registers
    /// than streaming, per the paper's measurement.
    pub const SAMPLER_STANDARD: ModuleCost = ModuleCost {
        lut_k: 49.4, // 4.0 / (1 - 0.919)
        reg_k: 10.0, // 7.7 / (1 - 0.23)
        bram_mb: 2.5,
        uram_mb: 0.0,
        dsp: 0.0,
    };

    /// One MoF lane (packing, BDI codec, CRC/retransmit, PHY interface).
    pub const MOF_LANE: ModuleCost = ModuleCost {
        lut_k: 35.0,
        reg_k: 45.0,
        bram_mb: 2.0,
        uram_mb: 0.0,
        dsp: 50.0,
    };

    /// One DDR4 channel controller.
    pub const DDR_CHANNEL: ModuleCost = ModuleCost {
        lut_k: 25.0,
        reg_k: 35.0,
        bram_mb: 1.5,
        uram_mb: 0.0,
        dsp: 0.0,
    };

    /// PCIe Gen3 x16 + QDMA.
    pub const PCIE_QDMA: ModuleCost = ModuleCost {
        lut_k: 70.0,
        reg_k: 90.0,
        bram_mb: 4.0,
        uram_mb: 0.0,
        dsp: 0.0,
    };

    /// The E906 RISC-V core with caches and QRCH.
    pub const RISCV_E906: ModuleCost = ModuleCost {
        lut_k: 30.0,
        reg_k: 25.0,
        bram_mb: 1.0,
        uram_mb: 0.0,
        dsp: 8.0,
    };

    /// The optional FP32 GEMM engine (32x32 systolic array, §4.1).
    pub const GEMM_ENGINE: ModuleCost = ModuleCost {
        lut_k: 95.0,
        reg_k: 140.0,
        bram_mb: 6.0,
        uram_mb: 0.0,
        dsp: 3072.0, // 3 DSPs per FP32 MAC cell
    };

    /// The optional vector processing unit (16 lanes, §4.1).
    pub const VPU: ModuleCost = ModuleCost {
        lut_k: 22.0,
        reg_k: 30.0,
        bram_mb: 1.0,
        uram_mb: 0.0,
        dsp: 96.0,
    };

    /// Hierarchical AXI interconnect (SmartConnect tree).
    pub const INTERCONNECT: ModuleCost = ModuleCost {
        lut_k: 90.0,
        reg_k: 130.0,
        bram_mb: 4.0,
        uram_mb: 0.0,
        dsp: 0.0,
    };

    /// Shared-memory subsystem: 2×8 MB URAM banks, MMU, CSRs, misc glue.
    pub const SUBSYSTEM: ModuleCost = ModuleCost {
        lut_k: 38.0,
        reg_k: 44.6,
        bram_mb: 5.63,
        uram_mb: 128.0,
        dsp: 228.0,
    };
}

/// The VU13P device capacities (Table 11 header row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vu13p {
    /// Configurable logic blocks, thousands.
    pub clb_k: f64,
    /// LUTs, thousands.
    pub lut_k: f64,
    /// Registers, thousands.
    pub reg_k: f64,
    /// BRAM megabits.
    pub bram_mb: f64,
    /// URAM megabits.
    pub uram_mb: f64,
    /// DSP slices.
    pub dsp: f64,
}

impl Default for Vu13p {
    fn default() -> Self {
        Vu13p {
            clb_k: 216.0,
            lut_k: 1728.0,
            reg_k: 3456.0,
            bram_mb: 94.5,
            uram_mb: 360.0,
            dsp: 12288.0,
        }
    }
}

/// Percent utilization per resource class (one Table 11 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// CLB percentage (derived from LUTs via packing efficiency).
    pub clb_pct: f64,
    /// LUT percentage.
    pub lut_pct: f64,
    /// Register percentage.
    pub reg_pct: f64,
    /// BRAM percentage.
    pub bram_pct: f64,
    /// URAM percentage.
    pub uram_pct: f64,
    /// DSP percentage.
    pub dsp_pct: f64,
}

/// Aggregated resources of a design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceReport {
    /// Summed module costs.
    pub total: ModuleCost,
}

/// Real designs never pack LUTs into CLBs perfectly; placed designs with
/// heavy routing (4-SLR crossing) land near this fraction of ideal.
const CLB_PACKING_EFFICIENCY: f64 = 0.58;

impl ResourceReport {
    /// Utilization against a device.
    pub fn utilization(&self, dev: &Vu13p) -> Utilization {
        let clb_used = self.total.lut_k / 8.0 / CLB_PACKING_EFFICIENCY;
        Utilization {
            clb_pct: 100.0 * clb_used / dev.clb_k,
            lut_pct: 100.0 * self.total.lut_k / dev.lut_k,
            reg_pct: 100.0 * self.total.reg_k / dev.reg_k,
            bram_pct: 100.0 * self.total.bram_mb / dev.bram_mb,
            uram_pct: 100.0 * self.total.uram_mb / dev.uram_mb,
            dsp_pct: 100.0 * self.total.dsp / dev.dsp,
        }
    }

    /// Whether the design fits the device.
    pub fn fits(&self, dev: &Vu13p) -> bool {
        let u = self.utilization(dev);
        u.clb_pct <= 100.0
            && u.lut_pct <= 100.0
            && u.reg_pct <= 100.0
            && u.bram_pct <= 100.0
            && u.uram_pct <= 100.0
            && u.dsp_pct <= 100.0
    }
}

/// A parameterized PoC-style design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PocDesign {
    /// AxE core count.
    pub axe_cores: u32,
    /// MoF lanes.
    pub mof_lanes: u32,
    /// DDR4 channels.
    pub ddr_channels: u32,
    /// Streaming (Tech-2) or conventional sampler per core.
    pub streaming_sampler: bool,
    /// Include the optional FP32 GEMM engine (§4.1).
    pub gemm: bool,
    /// Include the optional vector processing unit (§4.1).
    pub vpu: bool,
}

impl PocDesign {
    /// The Table 10 PoC configuration.
    pub fn table10() -> Self {
        PocDesign {
            axe_cores: 2,
            mof_lanes: 3,
            ddr_channels: 4,
            streaming_sampler: true,
            gemm: false,
            vpu: false,
        }
    }

    /// Adds the optional compute engines (§4.1).
    pub fn with_compute_engines(mut self) -> Self {
        self.gemm = true;
        self.vpu = true;
        self
    }

    /// Total resources of the design.
    pub fn resources(&self) -> ResourceReport {
        let sampler = if self.streaming_sampler {
            costs::SAMPLER_STREAMING
        } else {
            costs::SAMPLER_STANDARD
        };
        let mut total = ModuleCost::default();
        total += (costs::AXE_CORE_BASE + sampler) * self.axe_cores as f64;
        total += costs::MOF_LANE * self.mof_lanes as f64;
        total += costs::DDR_CHANNEL * self.ddr_channels as f64;
        total += costs::PCIE_QDMA;
        total += costs::RISCV_E906;
        total += costs::INTERCONNECT;
        total += costs::SUBSYSTEM;
        if self.gemm {
            total += costs::GEMM_ENGINE;
        }
        if self.vpu {
            total += costs::VPU;
        }
        ResourceReport { total }
    }

    /// Maximum AxE cores that still fit the device (scaling-up headroom).
    pub fn max_cores_fitting(&self, dev: &Vu13p) -> u32 {
        let mut cores = self.axe_cores;
        loop {
            let candidate = PocDesign {
                axe_cores: cores + 1,
                ..*self
            };
            if candidate.resources().fits(dev) {
                cores += 1;
            } else {
                return cores;
            }
        }
    }
}

/// The Tech-2 saving claim, as (LUT fraction saved, register fraction
/// saved) of the sampler module.
pub fn sampler_savings() -> (f64, f64) {
    let s = costs::SAMPLER_STREAMING;
    let c = costs::SAMPLER_STANDARD;
    (1.0 - s.lut_k / c.lut_k, 1.0 - s.reg_k / c.reg_k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table11_utilization_reproduced() {
        let u = PocDesign::table10()
            .resources()
            .utilization(&Vu13p::default());
        // Paper: 60.53% CLB, 35.07% LUT, 22.48% reg, 39.29% BRAM,
        // 40% URAM, 12.5% DSP.
        assert!((u.clb_pct - 60.53).abs() < 5.0, "clb {}", u.clb_pct);
        assert!((u.lut_pct - 35.07).abs() < 2.0, "lut {}", u.lut_pct);
        assert!((u.reg_pct - 22.48).abs() < 2.0, "reg {}", u.reg_pct);
        assert!((u.bram_pct - 39.29).abs() < 3.0, "bram {}", u.bram_pct);
        assert!((u.uram_pct - 40.0).abs() < 2.0, "uram {}", u.uram_pct);
        assert!((u.dsp_pct - 12.5).abs() < 1.0, "dsp {}", u.dsp_pct);
    }

    #[test]
    fn tech2_savings_match_paper() {
        let (lut, reg) = sampler_savings();
        assert!((lut - 0.919).abs() < 0.01, "lut saving {lut}");
        assert!((reg - 0.23).abs() < 0.01, "reg saving {reg}");
    }

    #[test]
    fn standard_sampler_costs_more_everywhere() {
        let stream = PocDesign::table10();
        let standard = PocDesign {
            streaming_sampler: false,
            ..stream
        };
        let s = stream.resources().total;
        let c = standard.resources().total;
        assert!(c.lut_k > s.lut_k);
        assert!(c.reg_k > s.reg_k);
        assert!(c.bram_mb > s.bram_mb);
    }

    #[test]
    fn design_scales_linearly_with_cores() {
        let one = PocDesign {
            axe_cores: 1,
            ..PocDesign::table10()
        };
        let four = PocDesign {
            axe_cores: 4,
            ..PocDesign::table10()
        };
        let delta = four.resources().total.lut_k - one.resources().total.lut_k;
        let per_core = costs::AXE_CORE_BASE.lut_k + costs::SAMPLER_STREAMING.lut_k;
        assert!((delta - 3.0 * per_core).abs() < 1e-9);
    }

    #[test]
    fn poc_fits_with_headroom_for_more_cores() {
        // §4.1: the architecture scales up; the PoC leaves room.
        let dev = Vu13p::default();
        let design = PocDesign::table10();
        assert!(design.resources().fits(&dev));
        let max = design.max_cores_fitting(&dev);
        assert!(max >= 4, "should fit at least 4 cores, got {max}");
        assert!(max < 32, "device is not infinite");
    }

    #[test]
    fn overgrown_design_does_not_fit() {
        let huge = PocDesign {
            axe_cores: 100,
            ..PocDesign::table10()
        };
        assert!(!huge.resources().fits(&Vu13p::default()));
    }

    #[test]
    fn optional_compute_engines_fit_with_dsp_pressure() {
        // §4.1: GEMM/VPU are optional adders; the GEMM's DSP appetite is
        // the dominant cost (3 DSPs per FP32 MAC cell).
        let dev = Vu13p::default();
        let with = PocDesign::table10().with_compute_engines();
        assert!(with.resources().fits(&dev));
        let base_dsp = PocDesign::table10().resources().total.dsp;
        let with_dsp = with.resources().total.dsp;
        assert!(with_dsp > base_dsp + 3_000.0);
        let u = with.resources().utilization(&dev);
        assert!(u.dsp_pct > 35.0, "dsp {}", u.dsp_pct);
    }

    #[test]
    fn module_cost_arithmetic() {
        let a = ModuleCost {
            lut_k: 1.0,
            reg_k: 2.0,
            bram_mb: 3.0,
            uram_mb: 4.0,
            dsp: 5.0,
        };
        let b = a * 2.0;
        assert_eq!(b.lut_k, 2.0);
        let c = a + b;
        assert_eq!(c.dsp, 15.0);
        let mut d = ModuleCost::default();
        d += c;
        assert_eq!(d, c);
    }
}
