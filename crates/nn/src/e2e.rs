//! The Figure 3 end-to-end breakdown model.
//!
//! The paper profiles the Table 3 application (graph `ls`, 128-wide
//! embeddings, 2-layer graphSAGE-max, DSSM 128-128 head on a 5-server /
//! 120-worker instance) and finds the sampling stage takes **64 %** of
//! training time and **88 %** of inference time, while graph storage is
//! **five orders of magnitude** larger than the NN model.
//!
//! This module recomputes that breakdown from first principles: MAC counts
//! come from the real layer shapes in this crate; stage times divide them
//! by an effective compute rate; sampling time divides the per-batch fetch
//! count by the measured/modelled cluster sampling rate.

use crate::dssm::Dssm;
use crate::layers::Linear;
use crate::sage::SageMaxLayer;

/// One stage of the end-to-end pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Distributed graph sampling (the paper's bottleneck).
    Sampling,
    /// Trainable embedding projection of raw attributes.
    Embedding,
    /// The graphSAGE layers.
    GnnNn,
    /// The DSSM end model.
    EndModel,
}

/// Per-phase times of one mini-batch, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E2eBreakdown {
    /// Sampling time.
    pub sampling_s: f64,
    /// Embedding time.
    pub embedding_s: f64,
    /// GNN layer time.
    pub gnn_s: f64,
    /// End-model time.
    pub end_model_s: f64,
}

impl E2eBreakdown {
    /// Total batch time.
    pub fn total_s(&self) -> f64 {
        self.sampling_s + self.embedding_s + self.gnn_s + self.end_model_s
    }

    /// Fraction of time spent sampling — the Figure 3 headline number.
    pub fn sampling_fraction(&self) -> f64 {
        self.sampling_s / self.total_s()
    }

    /// Fraction of time in the NN phases (embedding + GNN + end model).
    pub fn nn_fraction(&self) -> f64 {
        1.0 - self.sampling_fraction()
    }
}

/// The end-to-end application model (Table 3 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct E2eModel {
    /// Mini-batch size (roots).
    pub batch_size: usize,
    /// Fanout per hop.
    pub fanout: usize,
    /// Hops.
    pub hops: u32,
    /// Raw attribute length in floats (graph `ls`: 84).
    pub attr_len: usize,
    /// Embedding width (128).
    pub embed_dim: usize,
    /// Cluster sampling throughput in sampled nodes per second (measured
    /// on the CPU baseline or an accelerator).
    pub sampling_rate: f64,
    /// Effective NN compute rate in FLOP/s (small-kernel GPU efficiency,
    /// not peak).
    pub nn_flops: f64,
    /// Backward-pass cost multiplier for training (forward ≈ 1, training
    /// ≈ 3 with activation recompute).
    pub train_multiplier: f64,
}

impl Default for E2eModel {
    fn default() -> Self {
        E2eModel {
            batch_size: 512,
            fanout: 10,
            hops: 2,
            attr_len: 84,
            embed_dim: 128,
            // 5-server/120-worker AliGraph instance: ~50K sampled
            // nodes/s per worker.
            sampling_rate: 6.0e6,
            nn_flops: 1.0e12,
            train_multiplier: 3.0,
        }
    }
}

impl E2eModel {
    /// Nodes fetched per batch (roots + every hop's samples).
    pub fn fetches_per_batch(&self) -> u64 {
        let mut total = self.batch_size as u64;
        let mut frontier = self.batch_size as u64;
        for _ in 0..self.hops {
            frontier *= self.fanout as u64;
            total += frontier;
        }
        total
    }

    /// NN model parameters (embedding projection + SAGE layers + DSSM) —
    /// the denominator of the storage-ratio claim.
    pub fn model_params(&self) -> u64 {
        let embed = Linear::new(self.attr_len, self.embed_dim, true, 0).params();
        let sage = SageMaxLayer::new(self.embed_dim, self.embed_dim, 0).params();
        let dssm = Dssm::new(self.embed_dim, &[self.embed_dim, self.embed_dim], 0).params();
        embed + self.hops as u64 * sage + dssm
    }

    /// Forward MACs per batch across all NN phases.
    fn phase_macs(&self) -> (u64, u64, u64) {
        let fetches = self.fetches_per_batch() as usize;
        let embed = Linear::new(self.attr_len, self.embed_dim, true, 0).forward_macs(fetches);
        // Layer k transforms the nodes at depth < k (targets shrink by
        // fanout each layer).
        let sage_layer = SageMaxLayer::new(self.embed_dim, self.embed_dim, 0);
        let mut sage = 0u64;
        let mut targets = self.batch_size;
        for hop in (0..self.hops).rev() {
            let depth_nodes = targets * (self.fanout.pow(hop)).max(1);
            sage += sage_layer.forward_macs(depth_nodes);
            targets = self.batch_size;
        }
        let dssm = Dssm::new(self.embed_dim, &[self.embed_dim, self.embed_dim], 0)
            .forward_macs(self.batch_size);
        (embed, sage, dssm)
    }

    /// Computes the per-batch breakdown. `train` applies the backward
    /// multiplier to the NN phases (sampling is identical in both modes).
    pub fn breakdown(&self, train: bool) -> E2eBreakdown {
        let (embed_macs, sage_macs, dssm_macs) = self.phase_macs();
        let mult = if train { self.train_multiplier } else { 1.0 };
        let to_secs = |macs: u64| macs as f64 * 2.0 * mult / self.nn_flops;
        E2eBreakdown {
            sampling_s: self.fetches_per_batch() as f64 / self.sampling_rate,
            embedding_s: to_secs(embed_macs),
            gnn_s: to_secs(sage_macs),
            end_model_s: to_secs(dssm_macs),
        }
    }

    /// Graph-storage bytes divided by NN model bytes — the paper's "five
    /// orders of magnitude" observation, given the dataset's storage size.
    pub fn storage_to_model_ratio(&self, storage_bytes: u64) -> f64 {
        storage_bytes as f64 / (self.model_params() * 4) as f64
    }

    /// Re-fits the two rate knobs against a measured serving run
    /// (`bench inference` → `BENCH_inference.json`): given one batch's
    /// measured data-plane seconds (sampling + attribute gather) and NN
    /// compute seconds, back out the effective `sampling_rate` and
    /// `nn_flops` the host actually delivers for this model's shape.
    /// The shape knobs (`batch_size`, `fanout`, `hops`, `attr_len`)
    /// must already describe the measured workload; the fitted rates
    /// absorb any mismatch between this analytical model's layer stack
    /// and the benched one, which is the point of calibration — after
    /// this call, `breakdown(false)` reproduces the measured wall-clock
    /// split exactly.
    pub fn calibrate_from_run(&mut self, data_plane_s: f64, nn_s: f64) {
        assert!(
            data_plane_s > 0.0 && nn_s > 0.0,
            "measured stage times must be positive"
        );
        self.sampling_rate = self.fetches_per_batch() as f64 / data_plane_s;
        let (embed, sage, dssm) = self.phase_macs();
        self.nn_flops = (embed + sage + dssm) as f64 * 2.0 / nn_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_training_fraction() {
        // Paper: sampling is 64% of training time.
        let f = E2eModel::default().breakdown(true).sampling_fraction();
        assert!((0.55..0.75).contains(&f), "training sampling fraction {f}");
    }

    #[test]
    fn figure3_inference_fraction() {
        // Paper: sampling is 88% of inference time.
        let f = E2eModel::default().breakdown(false).sampling_fraction();
        assert!((0.80..0.94).contains(&f), "inference sampling fraction {f}");
    }

    #[test]
    fn consistency_between_modes() {
        // One parameter set must produce both fractions (the paper's two
        // bars come from the same system).
        let m = E2eModel::default();
        let train = m.breakdown(true);
        let infer = m.breakdown(false);
        assert_eq!(train.sampling_s, infer.sampling_s);
        assert!(train.total_s() > infer.total_s());
        assert!(train.sampling_fraction() < infer.sampling_fraction());
    }

    #[test]
    fn accelerated_sampling_flips_the_bottleneck() {
        // §7.3 Limitation-1: with sampling sped up enough, NN dominates
        // (sampling falls to a few percent).
        let mut m = E2eModel::default();
        m.sampling_rate *= 900.0; // one FPGA ≈ 894 vCPU
        let f = m.breakdown(true).sampling_fraction();
        assert!(f < 0.05, "accelerated sampling fraction {f}");
    }

    #[test]
    fn calibration_reproduces_measured_serving_split() {
        // Measured on the serving bench (`bench inference`, sequential
        // arm, 16-root requests on the 2-partition skewed workload):
        // per-request p50 ≈ 811 µs split ≈ 68.8 % sampling + 17.8 %
        // attribute gather + 13.4 % GNN compute. The analytical model
        // folds gather into the sampling stage (the paper's "sampling"
        // bar is the whole data plane), so the measured data-plane
        // fraction is 86.6 % — inside Figure 3's 80–94 % inference
        // window even on a single-core CPU backend with a toy model.
        const REQ_S: f64 = 811.0e-6;
        const DATA_PLANE_FRAC: f64 = 0.688 + 0.178;
        let mut m = E2eModel {
            batch_size: 16,
            attr_len: 64,
            ..E2eModel::default()
        };
        m.calibrate_from_run(REQ_S * DATA_PLANE_FRAC, REQ_S * (1.0 - DATA_PLANE_FRAC));
        let b = m.breakdown(false);
        assert!(
            (b.sampling_fraction() - DATA_PLANE_FRAC).abs() < 1e-9,
            "calibrated fraction {} != measured {DATA_PLANE_FRAC}",
            b.sampling_fraction()
        );
        assert!(
            (b.total_s() - REQ_S).abs() / REQ_S < 1e-9,
            "calibrated total {} != measured {REQ_S}",
            b.total_s()
        );
        assert!(
            (0.80..0.94).contains(&b.sampling_fraction()),
            "measured serving split left the Figure 3 inference window"
        );
        // Fitted host rates stay physical: the in-memory backend fetches
        // faster per node than the paper's 120-worker distributed store
        // only by a small factor, and a scalar single-core NN stack sits
        // well under the 1 TFLOP/s effective-GPU default.
        assert!(m.sampling_rate > 0.0 && m.sampling_rate < E2eModel::default().sampling_rate);
        assert!(m.nn_flops > 0.0 && m.nn_flops < E2eModel::default().nn_flops);
    }

    #[test]
    fn storage_dwarfs_model_by_5_orders() {
        // Graph `ls` is ~700 GB; the model is ~100-400 KB.
        let m = E2eModel::default();
        let ratio = m.storage_to_model_ratio(700 * (1u64 << 30));
        assert!(
            (1e5..1e7).contains(&ratio),
            "storage/model ratio {ratio:e} not ~5 orders"
        );
    }

    #[test]
    fn fetch_count_matches_paper_config() {
        assert_eq!(E2eModel::default().fetches_per_batch(), 512 * 111);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = E2eModel::default().breakdown(true);
        assert!((b.sampling_fraction() + b.nn_fraction() - 1.0).abs() < 1e-12);
        assert!(b.total_s() > 0.0);
    }
}
