//! Exact backpropagation for the dense layers.
//!
//! The trainable-embedding stage of the paper's pipeline (Figure 1's
//! `embedding` operator) learns its projection; this module provides the
//! gradients: a [`GradLinear`] layer caching its forward activations and
//! an [`GradMlp`] stack training end-to-end with SGD.

use crate::tensor::Matrix;

/// A trainable dense layer `y = relu?(x·W + b)` with exact gradients.
#[derive(Debug, Clone, PartialEq)]
pub struct GradLinear {
    weight: Matrix, // in_dim x out_dim
    bias: Vec<f32>,
    relu: bool,
    /// Cached input of the last forward pass.
    last_input: Option<Matrix>,
    /// Cached pre-activation of the last forward pass.
    last_pre: Option<Matrix>,
}

impl GradLinear {
    /// Creates a layer with deterministic pseudo-random init.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be non-zero");
        let scale = (2.0 / in_dim as f32).sqrt();
        GradLinear {
            weight: Matrix::random(in_dim, out_dim, scale, seed),
            bias: vec![0.0; out_dim],
            relu,
            last_input: None,
            last_pre: None,
        }
    }

    /// `(in_dim, out_dim)`.
    pub fn shape(&self) -> (usize, usize) {
        self.weight.shape()
    }

    /// Forward pass, caching activations for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(1, 1);
        self.forward_into(x, &mut out);
        out
    }

    /// [`GradLinear::forward`] writing into a caller-provided buffer.
    /// The activation caches reuse their storage from the previous step,
    /// so a steady-state training loop allocates nothing here.
    pub fn forward_into(&mut self, x: &Matrix, out: &mut Matrix) {
        let mut pre = self.last_pre.take().unwrap_or_else(|| Matrix::zeros(1, 1));
        x.matmul_into(&self.weight, &mut pre);
        pre.add_row_vector_in_place(&self.bias);
        out.copy_from(&pre);
        if self.relu {
            out.relu_in_place();
        }
        let mut cache = self
            .last_input
            .take()
            .unwrap_or_else(|| Matrix::zeros(1, 1));
        cache.copy_from(x);
        self.last_input = Some(cache);
        self.last_pre = Some(pre);
    }

    /// Backward pass: given `dL/dy`, applies the SGD update at rate `lr`
    /// and returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched gradient
    /// shape.
    pub fn backward(&mut self, grad_out: &Matrix, lr: f32) -> Matrix {
        let mut dx = Matrix::zeros(1, 1);
        self.backward_into(grad_out, lr, &mut dx);
        dx
    }

    /// [`GradLinear::backward`] writing `dL/dx` into a caller-provided
    /// buffer. The ReLU gate is applied at read time instead of
    /// materializing `dL/dpre`, so no intermediate is allocated; values
    /// are identical to the allocating form.
    pub fn backward_into(&mut self, grad_out: &Matrix, lr: f32, dx: &mut Matrix) {
        let x = self.last_input.as_ref().expect("forward before backward");
        let pre = self.last_pre.as_ref().expect("forward before backward");
        let (batch, out_dim) = grad_out.shape();
        assert_eq!(pre.shape(), (batch, out_dim), "gradient shape mismatch");
        let (in_dim, _) = self.weight.shape();

        // dL/dpre, gated by the ReLU mask at read time.
        let relu = self.relu;
        let dpre = |r: usize, k: usize| {
            if relu && pre.get(r, k) <= 0.0 {
                0.0
            } else {
                grad_out.get(r, k)
            }
        };
        // dL/dx = dpre · Wᵀ  (computed without materializing Wᵀ).
        dx.reset(batch, in_dim);
        for r in 0..batch {
            for c in 0..in_dim {
                let mut acc = 0.0;
                for k in 0..out_dim {
                    acc += dpre(r, k) * self.weight.get(c, k);
                }
                dx.set(r, c, acc);
            }
        }
        // dW = xᵀ · dpre; db = column sums of dpre. Apply SGD in place.
        for i in 0..in_dim {
            for k in 0..out_dim {
                let mut acc = 0.0;
                for r in 0..batch {
                    acc += x.get(r, i) * dpre(r, k);
                }
                let w = self.weight.get(i, k) - lr * acc / batch as f32;
                self.weight.set(i, k, w);
            }
        }
        for (k, b) in self.bias.iter_mut().enumerate() {
            let mut acc = 0.0;
            for r in 0..batch {
                acc += dpre(r, k);
            }
            *b -= lr * acc / batch as f32;
        }
    }
}

/// Reusable step buffers for [`GradMlp::train_mse`] — allocated on the
/// first step, then recycled so the hot loop is allocation-free.
#[derive(Debug, Clone)]
struct TrainScratch {
    y: Matrix,
    ping: Matrix,
    grad: Matrix,
    back: Matrix,
}

impl TrainScratch {
    fn new() -> Self {
        TrainScratch {
            y: Matrix::zeros(1, 1),
            ping: Matrix::zeros(1, 1),
            grad: Matrix::zeros(1, 1),
            back: Matrix::zeros(1, 1),
        }
    }
}

/// A trainable MLP (ReLU hidden layers, linear output).
#[derive(Debug, Clone)]
pub struct GradMlp {
    layers: Vec<GradLinear>,
    scratch: Option<Box<TrainScratch>>,
}

/// Equality is over the learnable state only; step scratch is excluded.
impl PartialEq for GradMlp {
    fn eq(&self, other: &Self) -> bool {
        self.layers == other.layers
    }
}

impl GradMlp {
    /// Builds through the listed widths, e.g. `[2, 8, 1]`.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two widths.
    pub fn new(widths: &[usize], seed: u64) -> Self {
        assert!(widths.len() >= 2, "need input and output widths");
        GradMlp {
            layers: widths
                .windows(2)
                .enumerate()
                .map(|(i, w)| {
                    GradLinear::new(w[0], w[1], i + 2 < widths.len(), seed + 31 * i as u64)
                })
                .collect(),
            scratch: None,
        }
    }

    /// Forward pass (caches activations in every layer).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(1, 1);
        let mut scratch = Matrix::zeros(1, 1);
        self.forward_into(x, &mut scratch, &mut out);
        out
    }

    /// [`GradMlp::forward`] ping-ponging between two caller-provided
    /// buffers; the final activation always lands in `out`.
    pub fn forward_into(&mut self, x: &Matrix, scratch: &mut Matrix, out: &mut Matrix) {
        let (mut a, mut b) = if self.layers.len() % 2 == 1 {
            (out, scratch)
        } else {
            (scratch, out)
        };
        let mut layers = self.layers.iter_mut();
        layers
            .next()
            .expect("at least one layer")
            .forward_into(x, a);
        for l in layers {
            l.forward_into(a, b);
            std::mem::swap(&mut a, &mut b);
        }
    }

    /// Backward pass from `dL/dy`, updating all layers; returns `dL/dx`.
    pub fn backward(&mut self, grad_out: &Matrix, lr: f32) -> Matrix {
        let mut g = grad_out.clone();
        let mut tmp = Matrix::zeros(1, 1);
        for l in self.layers.iter_mut().rev() {
            l.backward_into(&g, lr, &mut tmp);
            std::mem::swap(&mut g, &mut tmp);
        }
        g
    }

    /// One MSE regression step on `(x, targets)`; returns the loss.
    ///
    /// Per-step intermediates live in a persistent scratch, so repeated
    /// calls (the training hot loop) allocate nothing after the first.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn train_mse(&mut self, x: &Matrix, targets: &Matrix, lr: f32) -> f32 {
        let mut s = self
            .scratch
            .take()
            .unwrap_or_else(|| Box::new(TrainScratch::new()));
        self.forward_into(x, &mut s.ping, &mut s.y);
        let (rows, cols) = s.y.shape();
        assert_eq!(targets.shape(), (rows, cols), "target shape mismatch");
        s.grad.reset(rows, cols);
        let mut loss = 0.0;
        for r in 0..rows {
            for c in 0..cols {
                let d = s.y.get(r, c) - targets.get(r, c);
                loss += d * d;
                s.grad.set(r, c, 2.0 * d);
            }
        }
        for l in self.layers.iter_mut().rev() {
            l.backward_into(&s.grad, lr, &mut s.back);
            std::mem::swap(&mut s.grad, &mut s.back);
        }
        self.scratch = Some(s);
        loss / (rows * cols) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference check of the input gradient.
    #[test]
    fn input_gradient_matches_finite_differences() {
        let layer = GradLinear::new(3, 2, true, 5);
        let x = Matrix::from_rows(&[&[0.3, -0.7, 1.2]]);
        // Loss = sum of outputs; dL/dy = ones.
        let ones = Matrix::from_rows(&[&[1.0, 1.0]]);
        let mut probe = layer.clone();
        probe.forward(&x);
        let dx = probe.backward(&ones, 0.0); // lr 0: weights untouched
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.set(0, i, x.get(0, i) + eps);
            let mut xm = x.clone();
            xm.set(0, i, x.get(0, i) - eps);
            let f = |m: &Matrix| -> f32 {
                let mut l = layer.clone();
                let y = l.forward(m);
                y.row(0).iter().sum()
            };
            let numeric = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!(
                (dx.get(0, i) - numeric).abs() < 1e-2,
                "dim {i}: analytic {} vs numeric {numeric}",
                dx.get(0, i)
            );
        }
    }

    #[test]
    fn mlp_learns_xor() {
        // XOR requires the hidden layer — the canonical backprop test.
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let t = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut mlp = GradMlp::new(&[2, 8, 1], 3);
        let mut loss = f32::INFINITY;
        for _ in 0..2_000 {
            loss = mlp.train_mse(&x, &t, 0.1);
        }
        assert!(loss < 0.02, "XOR loss {loss}");
        let y = mlp.forward(&x);
        for (r, want) in [0.0f32, 1.0, 1.0, 0.0].iter().enumerate() {
            assert!(
                (y.get(r, 0) - want).abs() < 0.25,
                "row {r}: {} vs {want}",
                y.get(r, 0)
            );
        }
    }

    #[test]
    fn linear_regression_recovers_a_plane() {
        // y = 2a - 3b + 1, learnable exactly by a single linear layer.
        let mut mlp = GradMlp::new(&[2, 1], 7);
        let mut xs = Vec::new();
        let mut ts = Vec::new();
        for i in 0..16 {
            let a = (i % 4) as f32 - 1.5;
            let b = (i / 4) as f32 - 1.5;
            xs.push([a, b]);
            ts.push([2.0 * a - 3.0 * b + 1.0]);
        }
        let x = Matrix::from_rows(&xs.iter().map(|r| &r[..]).collect::<Vec<_>>());
        let t = Matrix::from_rows(&ts.iter().map(|r| &r[..]).collect::<Vec<_>>());
        let mut loss = f32::INFINITY;
        for _ in 0..500 {
            loss = mlp.train_mse(&x, &t, 0.05);
        }
        assert!(loss < 1e-3, "plane loss {loss}");
    }

    #[test]
    fn relu_gate_blocks_gradient() {
        // A layer driven entirely negative pre-activation passes zero
        // gradient.
        let mut layer = GradLinear::new(1, 1, true, 1);
        // Force a strongly negative pre-activation with a big negative
        // input and positive-ish weight (or vice versa); use bias trick:
        let x = Matrix::from_rows(&[&[-100.0]]);
        let y = layer.forward(&x);
        if y.get(0, 0) == 0.0 {
            let dx = layer.backward(&Matrix::from_rows(&[&[1.0]]), 0.1);
            assert_eq!(dx.get(0, 0), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "forward before backward")]
    fn backward_without_forward_panics() {
        let mut l = GradLinear::new(2, 2, false, 0);
        l.backward(&Matrix::zeros(1, 2), 0.1);
    }

    #[test]
    fn into_variants_match_allocating_step() {
        let x = Matrix::random(4, 3, 1.0, 60);
        let grad = Matrix::random(4, 2, 1.0, 61);
        let mut a = GradLinear::new(3, 2, true, 62);
        let mut b = a.clone();
        let ya = a.forward(&x);
        let mut yb = Matrix::random(1, 7, 3.0, 63); // dirty target
        b.forward_into(&x, &mut yb);
        assert_eq!(ya, yb);
        let dxa = a.backward(&grad, 0.05);
        let mut dxb = Matrix::zeros(1, 1);
        b.backward_into(&grad, 0.05, &mut dxb);
        assert_eq!(dxa, dxb);
        assert_eq!(a, b, "updated weights must match");
    }

    #[test]
    fn train_mse_scratch_path_matches_manual_steps() {
        let x = Matrix::random(6, 3, 1.0, 70);
        let t = Matrix::random(6, 2, 1.0, 71);
        let mut fast = GradMlp::new(&[3, 5, 2], 72);
        let mut manual = fast.clone();
        let mut fast_losses = Vec::new();
        for _ in 0..5 {
            fast_losses.push(fast.train_mse(&x, &t, 0.05));
        }
        for step in 0..5 {
            let y = manual.forward(&x);
            let (rows, cols) = y.shape();
            let mut grad = Matrix::zeros(rows, cols);
            let mut loss = 0.0;
            for r in 0..rows {
                for c in 0..cols {
                    let d = y.get(r, c) - t.get(r, c);
                    loss += d * d;
                    grad.set(r, c, 2.0 * d);
                }
            }
            manual.backward(&grad, 0.05);
            assert_eq!(fast_losses[step], loss / (rows * cols) as f32);
        }
        assert_eq!(fast, manual, "weights must evolve identically");
    }
}
