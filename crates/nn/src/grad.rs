//! Exact backpropagation for the dense layers.
//!
//! The trainable-embedding stage of the paper's pipeline (Figure 1's
//! `embedding` operator) learns its projection; this module provides the
//! gradients: a [`GradLinear`] layer caching its forward activations and
//! an [`GradMlp`] stack training end-to-end with SGD.

use crate::tensor::Matrix;

/// A trainable dense layer `y = relu?(x·W + b)` with exact gradients.
#[derive(Debug, Clone, PartialEq)]
pub struct GradLinear {
    weight: Matrix, // in_dim x out_dim
    bias: Vec<f32>,
    relu: bool,
    /// Cached input of the last forward pass.
    last_input: Option<Matrix>,
    /// Cached pre-activation of the last forward pass.
    last_pre: Option<Matrix>,
}

impl GradLinear {
    /// Creates a layer with deterministic pseudo-random init.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be non-zero");
        let scale = (2.0 / in_dim as f32).sqrt();
        GradLinear {
            weight: Matrix::random(in_dim, out_dim, scale, seed),
            bias: vec![0.0; out_dim],
            relu,
            last_input: None,
            last_pre: None,
        }
    }

    /// `(in_dim, out_dim)`.
    pub fn shape(&self) -> (usize, usize) {
        self.weight.shape()
    }

    /// Forward pass, caching activations for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let pre = x.matmul(&self.weight).add_row_vector(&self.bias);
        let out = if self.relu { pre.relu() } else { pre.clone() };
        self.last_input = Some(x.clone());
        self.last_pre = Some(pre);
        out
    }

    /// Backward pass: given `dL/dy`, applies the SGD update at rate `lr`
    /// and returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched gradient
    /// shape.
    pub fn backward(&mut self, grad_out: &Matrix, lr: f32) -> Matrix {
        let x = self.last_input.as_ref().expect("forward before backward");
        let pre = self.last_pre.as_ref().expect("forward before backward");
        let (batch, out_dim) = grad_out.shape();
        assert_eq!(pre.shape(), (batch, out_dim), "gradient shape mismatch");
        let (in_dim, _) = self.weight.shape();

        // dL/dpre: gate by ReLU mask.
        let mut dpre = grad_out.clone();
        if self.relu {
            for r in 0..batch {
                for c in 0..out_dim {
                    if pre.get(r, c) <= 0.0 {
                        dpre.set(r, c, 0.0);
                    }
                }
            }
        }
        // dL/dx = dpre · Wᵀ  (computed without materializing Wᵀ).
        let mut dx = Matrix::zeros(batch, in_dim);
        for r in 0..batch {
            for c in 0..in_dim {
                let mut acc = 0.0;
                for k in 0..out_dim {
                    acc += dpre.get(r, k) * self.weight.get(c, k);
                }
                dx.set(r, c, acc);
            }
        }
        // dW = xᵀ · dpre; db = column sums of dpre. Apply SGD in place.
        for i in 0..in_dim {
            for k in 0..out_dim {
                let mut acc = 0.0;
                for r in 0..batch {
                    acc += x.get(r, i) * dpre.get(r, k);
                }
                let w = self.weight.get(i, k) - lr * acc / batch as f32;
                self.weight.set(i, k, w);
            }
        }
        for (k, b) in self.bias.iter_mut().enumerate() {
            let mut acc = 0.0;
            for r in 0..batch {
                acc += dpre.get(r, k);
            }
            *b -= lr * acc / batch as f32;
        }
        dx
    }
}

/// A trainable MLP (ReLU hidden layers, linear output).
#[derive(Debug, Clone, PartialEq)]
pub struct GradMlp {
    layers: Vec<GradLinear>,
}

impl GradMlp {
    /// Builds through the listed widths, e.g. `[2, 8, 1]`.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two widths.
    pub fn new(widths: &[usize], seed: u64) -> Self {
        assert!(widths.len() >= 2, "need input and output widths");
        GradMlp {
            layers: widths
                .windows(2)
                .enumerate()
                .map(|(i, w)| {
                    GradLinear::new(w[0], w[1], i + 2 < widths.len(), seed + 31 * i as u64)
                })
                .collect(),
        }
    }

    /// Forward pass (caches activations in every layer).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h);
        }
        h
    }

    /// Backward pass from `dL/dy`, updating all layers; returns `dL/dx`.
    pub fn backward(&mut self, grad_out: &Matrix, lr: f32) -> Matrix {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g, lr);
        }
        g
    }

    /// One MSE regression step on `(x, targets)`; returns the loss.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn train_mse(&mut self, x: &Matrix, targets: &Matrix, lr: f32) -> f32 {
        let y = self.forward(x);
        let (rows, cols) = y.shape();
        assert_eq!(targets.shape(), (rows, cols), "target shape mismatch");
        let mut grad = Matrix::zeros(rows, cols);
        let mut loss = 0.0;
        for r in 0..rows {
            for c in 0..cols {
                let d = y.get(r, c) - targets.get(r, c);
                loss += d * d;
                grad.set(r, c, 2.0 * d);
            }
        }
        self.backward(&grad, lr);
        loss / (rows * cols) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference check of the input gradient.
    #[test]
    fn input_gradient_matches_finite_differences() {
        let layer = GradLinear::new(3, 2, true, 5);
        let x = Matrix::from_rows(&[&[0.3, -0.7, 1.2]]);
        // Loss = sum of outputs; dL/dy = ones.
        let ones = Matrix::from_rows(&[&[1.0, 1.0]]);
        let mut probe = layer.clone();
        probe.forward(&x);
        let dx = probe.backward(&ones, 0.0); // lr 0: weights untouched
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.set(0, i, x.get(0, i) + eps);
            let mut xm = x.clone();
            xm.set(0, i, x.get(0, i) - eps);
            let f = |m: &Matrix| -> f32 {
                let mut l = layer.clone();
                let y = l.forward(m);
                y.row(0).iter().sum()
            };
            let numeric = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!(
                (dx.get(0, i) - numeric).abs() < 1e-2,
                "dim {i}: analytic {} vs numeric {numeric}",
                dx.get(0, i)
            );
        }
    }

    #[test]
    fn mlp_learns_xor() {
        // XOR requires the hidden layer — the canonical backprop test.
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let t = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut mlp = GradMlp::new(&[2, 8, 1], 3);
        let mut loss = f32::INFINITY;
        for _ in 0..2_000 {
            loss = mlp.train_mse(&x, &t, 0.1);
        }
        assert!(loss < 0.02, "XOR loss {loss}");
        let y = mlp.forward(&x);
        for (r, want) in [0.0f32, 1.0, 1.0, 0.0].iter().enumerate() {
            assert!(
                (y.get(r, 0) - want).abs() < 0.25,
                "row {r}: {} vs {want}",
                y.get(r, 0)
            );
        }
    }

    #[test]
    fn linear_regression_recovers_a_plane() {
        // y = 2a - 3b + 1, learnable exactly by a single linear layer.
        let mut mlp = GradMlp::new(&[2, 1], 7);
        let mut xs = Vec::new();
        let mut ts = Vec::new();
        for i in 0..16 {
            let a = (i % 4) as f32 - 1.5;
            let b = (i / 4) as f32 - 1.5;
            xs.push([a, b]);
            ts.push([2.0 * a - 3.0 * b + 1.0]);
        }
        let x = Matrix::from_rows(&xs.iter().map(|r| &r[..]).collect::<Vec<_>>());
        let t = Matrix::from_rows(&ts.iter().map(|r| &r[..]).collect::<Vec<_>>());
        let mut loss = f32::INFINITY;
        for _ in 0..500 {
            loss = mlp.train_mse(&x, &t, 0.05);
        }
        assert!(loss < 1e-3, "plane loss {loss}");
    }

    #[test]
    fn relu_gate_blocks_gradient() {
        // A layer driven entirely negative pre-activation passes zero
        // gradient.
        let mut layer = GradLinear::new(1, 1, true, 1);
        // Force a strongly negative pre-activation with a big negative
        // input and positive-ish weight (or vice versa); use bias trick:
        let x = Matrix::from_rows(&[&[-100.0]]);
        let y = layer.forward(&x);
        if y.get(0, 0) == 0.0 {
            let dx = layer.backward(&Matrix::from_rows(&[&[1.0]]), 0.1);
            assert_eq!(dx.get(0, 0), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "forward before backward")]
    fn backward_without_forward_panics() {
        let mut l = GradLinear::new(2, 2, false, 0);
        l.backward(&Matrix::zeros(1, 2), 0.1);
    }
}
