//! A minimal row-major `f32` matrix, sufficient for the GNN-NN stages.

/// A dense row-major matrix.
///
/// # Example
///
/// ```
/// use lsdgnn_nn::Matrix;
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
/// assert_eq!(m.shape(), (1, 3));
/// assert_eq!(m.get(0, 2), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics on empty input or ragged rows.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix { rows, cols, data }
    }

    /// Wraps a recycled buffer (e.g. from a buffer pool's float class) as
    /// a zeroed `rows × cols` matrix, reusing its capacity. The inverse
    /// of [`Matrix::into_vec`] — together they let matrices ride a pool's
    /// free list between requests.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_pooled(rows: usize, cols: usize, mut buf: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Matrix {
            rows,
            cols,
            data: buf,
        }
    }

    /// Surrenders the backing buffer (for returning to a pool).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes in place to a zeroed `rows × cols`, keeping the backing
    /// buffer's capacity — the entry point of every `_into` operation.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Becomes an element-wise copy of `src` (any previous shape),
    /// reusing the backing buffer's capacity.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Deterministic pseudo-random matrix in `[-scale, scale)` (Xavier-ish
    /// init for tests and synthetic models).
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut m = Self::zeros(rows, cols);
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        for v in &mut m.data {
            s ^= s >> 30;
            s = s.wrapping_mul(0xBF58476D1CE4E5B9);
            s ^= s >> 27;
            let unit = (s >> 11) as f64 / (1u64 << 53) as f64;
            *v = ((unit * 2.0 - 1.0) as f32) * scale;
        }
        m
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a caller-provided (typically
    /// pooled) output, which is reshaped to `self.rows × rhs.cols`.
    /// Identical arithmetic and result to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `out` aliases an operand.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        out.reset(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v.max(0.0)).collect(),
        }
    }

    /// Element-wise ReLU in place (same values as [`Matrix::relu`]).
    pub fn relu_in_place(&mut self) {
        for v in &mut self.data {
            *v = v.max(0.0);
        }
    }

    /// Adds a row vector (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_vector(&self, bias: &[f32]) -> Matrix {
        let mut out = self.clone();
        out.add_row_vector_in_place(bias);
        out
    }

    /// [`Matrix::add_row_vector`] in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_vector_in_place(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_mut(self.cols) {
            for (o, b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
    }

    /// Column-wise max over a set of rows; the graphSAGE-max aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or any index is out of bounds.
    pub fn max_over_rows(&self, rows: &[usize]) -> Vec<f32> {
        assert!(!rows.is_empty(), "need at least one row to aggregate");
        let mut out = self.row(rows[0]).to_vec();
        for &r in &rows[1..] {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o = o.max(v);
            }
        }
        out
    }

    /// Concatenates two matrices horizontally.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    pub fn hconcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row counts must match");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Multiply-accumulate count of `self × rhs` — the FLOP model input.
    pub fn matmul_macs(&self, rhs: &Matrix) -> u64 {
        (self.rows * self.cols * rhs.cols) as u64
    }
}

/// Cosine similarity of two equal-length vectors (DSSM's scoring op).
///
/// Returns 0 for zero vectors.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector lengths must match");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
        assert_eq!(a.matmul_macs(&b), 8);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(3, 3, 1.0, 7);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = Matrix::from_rows(&[&[-1.0, 0.5]]);
        assert_eq!(a.relu(), Matrix::from_rows(&[&[0.0, 0.5]]));
    }

    #[test]
    fn bias_broadcasts() {
        let a = Matrix::zeros(2, 2);
        let b = a.add_row_vector(&[1.0, 2.0]);
        assert_eq!(b, Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]));
    }

    #[test]
    fn max_over_rows_is_columnwise() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[5.0, 2.0], &[3.0, 3.0]]);
        assert_eq!(a.max_over_rows(&[0, 1, 2]), vec![5.0, 9.0]);
        assert_eq!(a.max_over_rows(&[2]), vec![3.0, 3.0]);
    }

    #[test]
    fn hconcat_widens() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let c = a.hconcat(&b);
        assert_eq!(c, Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Matrix::random(4, 4, 0.5, 1);
        assert_eq!(a, Matrix::random(4, 4, 0.5, 1));
        for r in 0..4 {
            for &v in a.row(r) {
                assert!((-0.5..0.5).contains(&v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let a = Matrix::random(4, 6, 1.0, 21);
        let b = Matrix::random(6, 3, 1.0, 22);
        // A dirty, wrongly-shaped target must still produce the same
        // product as the allocating form.
        let mut out = Matrix::random(2, 9, 5.0, 23);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        let mut r = a.clone();
        r.relu_in_place();
        assert_eq!(r, a.relu());

        let bias = [0.5, -1.0, 2.0, 0.0, 1.0, -0.5];
        let mut s = a.clone();
        s.add_row_vector_in_place(&bias);
        assert_eq!(s, a.add_row_vector(&bias));
    }

    #[test]
    fn pooled_round_trip_reuses_capacity() {
        let buf = vec![9.0; 64];
        let cap = buf.capacity();
        let m = Matrix::from_pooled(4, 4, buf);
        assert_eq!(m, Matrix::zeros(4, 4));
        let back = m.into_vec();
        assert_eq!(back.capacity(), cap);
    }

    #[test]
    fn reset_and_copy_from_reshape_in_place() {
        let mut m = Matrix::random(3, 5, 1.0, 31);
        m.reset(2, 4);
        assert_eq!(m, Matrix::zeros(2, 4));
        let src = Matrix::random(5, 2, 1.0, 32);
        m.copy_from(&src);
        assert_eq!(m, src);
    }
}
