//! A minimal link-prediction trainer.
//!
//! LSD-GNN exists to *train*; this module closes the loop with a small
//! but real learner: a logistic regression over the Hadamard product of
//! two node embeddings, trained with SGD on positive edges versus
//! sampled negatives — the classic link-prediction head. It is enough to
//! measure, at the full-pipeline level, whether a sampling strategy
//! (e.g. Tech-2 streaming vs exact) changes model quality.

use crate::tensor::Matrix;

/// Numerically stable logistic function.
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// A logistic link predictor: `P(edge) = σ(w · (h_u ⊙ h_v) + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPredictor {
    weights: Vec<f32>,
    bias: f32,
    lr: f32,
}

impl LinkPredictor {
    /// Creates a zero-initialized predictor over `dim`-wide embeddings
    /// with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `lr` is not positive.
    pub fn new(dim: usize, lr: f32) -> Self {
        assert!(dim > 0, "embedding width must be non-zero");
        assert!(lr > 0.0, "learning rate must be positive");
        LinkPredictor {
            weights: vec![0.0; dim],
            bias: 0.0,
            lr,
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Predicted edge probability for an embedding pair.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn predict(&self, hu: &[f32], hv: &[f32]) -> f32 {
        assert_eq!(hu.len(), self.weights.len(), "embedding width mismatch");
        assert_eq!(hv.len(), self.weights.len(), "embedding width mismatch");
        let z: f32 = self
            .weights
            .iter()
            .zip(hu.iter().zip(hv))
            .map(|(w, (a, b))| w * a * b)
            .sum::<f32>()
            + self.bias;
        sigmoid(z)
    }

    /// One SGD step on a labelled pair (`label` 1.0 = edge, 0.0 = no
    /// edge). Returns the example's log-loss before the update.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or a label outside `{0, 1}`.
    pub fn train_pair(&mut self, hu: &[f32], hv: &[f32], label: f32) -> f32 {
        assert!(label == 0.0 || label == 1.0, "label must be 0 or 1");
        let p = self.predict(hu, hv);
        let err = p - label;
        for (w, (a, b)) in self.weights.iter_mut().zip(hu.iter().zip(hv)) {
            *w -= self.lr * err * a * b;
        }
        self.bias -= self.lr * err;
        let eps = 1e-7f32;
        -(label * (p + eps).ln() + (1.0 - label) * (1.0 - p + eps).ln())
    }

    /// Trains one epoch over embedding-matrix rows:
    /// `positives`/`negatives` are row-index pairs into `embeddings`.
    /// Returns the mean log-loss.
    ///
    /// # Panics
    ///
    /// Panics if both lists are empty.
    pub fn train_epoch(
        &mut self,
        embeddings: &Matrix,
        positives: &[(usize, usize)],
        negatives: &[(usize, usize)],
    ) -> f32 {
        assert!(
            !positives.is_empty() || !negatives.is_empty(),
            "need at least one training pair"
        );
        let mut loss = 0.0f32;
        let mut n = 0u32;
        // Interleave positive and negative updates for stability.
        let mut pi = positives.iter();
        let mut ni = negatives.iter();
        loop {
            let mut progressed = false;
            if let Some(&(u, v)) = pi.next() {
                loss += self.train_pair(embeddings.row(u), embeddings.row(v), 1.0);
                n += 1;
                progressed = true;
            }
            if let Some(&(u, v)) = ni.next() {
                loss += self.train_pair(embeddings.row(u), embeddings.row(v), 0.0);
                n += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        loss / n as f32
    }

    /// Classification accuracy at threshold 0.5 over labelled pairs.
    pub fn accuracy(
        &self,
        embeddings: &Matrix,
        positives: &[(usize, usize)],
        negatives: &[(usize, usize)],
    ) -> f64 {
        let total = positives.len() + negatives.len();
        if total == 0 {
            return 0.0;
        }
        let mut correct = 0usize;
        for &(u, v) in positives {
            if self.predict(embeddings.row(u), embeddings.row(v)) > 0.5 {
                correct += 1;
            }
        }
        for &(u, v) in negatives {
            if self.predict(embeddings.row(u), embeddings.row(v)) <= 0.5 {
                correct += 1;
            }
        }
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Embeddings where rows 0..4 share a direction and rows 4..8 share
    /// the opposite one — pairs within a block are "edges".
    fn blocky_embeddings() -> Matrix {
        let mut m = Matrix::zeros(8, 4);
        for r in 0..8 {
            let sign = if r < 4 { 1.0 } else { -1.0 };
            for c in 0..4 {
                let jitter = ((r * 7 + c * 3) % 5) as f32 * 0.05;
                m.set(r, c, sign * (1.0 + jitter));
            }
        }
        m
    }

    type PairSet = Vec<(usize, usize)>;

    fn pairs() -> (PairSet, PairSet) {
        let positives = vec![(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)];
        let negatives = vec![(0, 4), (1, 5), (2, 6), (3, 7), (0, 7), (3, 4)];
        (positives, negatives)
    }

    #[test]
    fn training_reduces_loss_and_learns_the_task() {
        let emb = blocky_embeddings();
        let (pos, neg) = pairs();
        let mut model = LinkPredictor::new(4, 0.5);
        let first = model.train_epoch(&emb, &pos, &neg);
        let mut last = first;
        for _ in 0..50 {
            last = model.train_epoch(&emb, &pos, &neg);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        assert!(
            model.accuracy(&emb, &pos, &neg) >= 0.9,
            "accuracy {}",
            model.accuracy(&emb, &pos, &neg)
        );
    }

    #[test]
    fn untrained_model_is_uninformative() {
        let emb = blocky_embeddings();
        let (pos, neg) = pairs();
        let model = LinkPredictor::new(4, 0.1);
        // Zero weights: every prediction is exactly 0.5.
        for &(u, v) in pos.iter().chain(&neg) {
            assert_eq!(model.predict(emb.row(u), emb.row(v)), 0.5);
        }
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn bad_label_panics() {
        let mut m = LinkPredictor::new(2, 0.1);
        m.train_pair(&[1.0, 0.0], &[1.0, 0.0], 0.5);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_embedding_panics() {
        LinkPredictor::new(3, 0.1).predict(&[1.0], &[1.0, 2.0, 3.0]);
    }
}
