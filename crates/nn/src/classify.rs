//! Softmax node classification — the other canonical GNN end task
//! (node classification, paper §1's first listed application).
//!
//! A linear softmax head over node embeddings with exact cross-entropy
//! gradients, enough to evaluate embedding quality and to close the
//! node-classification loop end-to-end.

use crate::tensor::Matrix;

/// Row-wise softmax.
///
/// # Example
///
/// ```
/// use lsdgnn_nn::classify::softmax_row;
/// let p = softmax_row(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_row(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy of a probability row against a class index.
///
/// # Panics
///
/// Panics if `class` is out of range.
pub fn cross_entropy(probs: &[f32], class: usize) -> f32 {
    assert!(class < probs.len(), "class out of range");
    -(probs[class] + 1e-9).ln()
}

/// A linear softmax classifier with SGD training.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxClassifier {
    /// Weights, `classes x dim` row-major.
    weights: Vec<f32>,
    biases: Vec<f32>,
    dim: usize,
    classes: usize,
    lr: f32,
}

impl SoftmaxClassifier {
    /// Creates a zero-initialized classifier.
    ///
    /// # Panics
    ///
    /// Panics if `dim`/`classes` are zero or `lr` non-positive.
    pub fn new(dim: usize, classes: usize, lr: f32) -> Self {
        assert!(dim > 0 && classes > 0, "dimensions must be non-zero");
        assert!(lr > 0.0, "learning rate must be positive");
        SoftmaxClassifier {
            weights: vec![0.0; classes * dim],
            biases: vec![0.0; classes],
            dim,
            classes,
            lr,
        }
    }

    /// Class probabilities for one embedding.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn predict(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.dim, "embedding width mismatch");
        let logits: Vec<f32> = (0..self.classes)
            .map(|c| {
                self.biases[c]
                    + self.weights[c * self.dim..(c + 1) * self.dim]
                        .iter()
                        .zip(x)
                        .map(|(w, v)| w * v)
                        .sum::<f32>()
            })
            .collect();
        softmax_row(&logits)
    }

    /// Most likely class.
    pub fn classify(&self, x: &[f32]) -> usize {
        let p = self.predict(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// One SGD step; returns the example's loss before the update.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or an out-of-range label.
    pub fn train_example(&mut self, x: &[f32], label: usize) -> f32 {
        assert!(label < self.classes, "label out of range");
        let probs = self.predict(x);
        let loss = cross_entropy(&probs, label);
        #[allow(clippy::needless_range_loop)] // parallel weight/bias rows
        for c in 0..self.classes {
            let grad = probs[c] - f32::from(c == label);
            for (w, &v) in self.weights[c * self.dim..(c + 1) * self.dim]
                .iter_mut()
                .zip(x)
            {
                *w -= self.lr * grad * v;
            }
            self.biases[c] -= self.lr * grad;
        }
        loss
    }

    /// One epoch over rows of `embeddings` with `labels`; returns mean
    /// loss.
    ///
    /// # Panics
    ///
    /// Panics if `labels` does not cover every row.
    pub fn train_epoch(&mut self, embeddings: &Matrix, labels: &[usize]) -> f32 {
        let (rows, _) = embeddings.shape();
        assert_eq!(labels.len(), rows, "one label per row");
        let mut loss = 0.0;
        for (r, &label) in labels.iter().enumerate() {
            loss += self.train_example(embeddings.row(r), label);
        }
        loss / rows as f32
    }

    /// Accuracy over rows of `embeddings`.
    ///
    /// # Panics
    ///
    /// Panics if `labels` does not cover every row.
    pub fn accuracy(&self, embeddings: &Matrix, labels: &[usize]) -> f64 {
        let (rows, _) = embeddings.shape();
        assert_eq!(labels.len(), rows, "one label per row");
        let correct = labels
            .iter()
            .enumerate()
            .filter(|(r, &l)| self.classify(embeddings.row(*r)) == l)
            .count();
        correct as f64 / rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labelled_blobs() -> (Matrix, Vec<usize>) {
        // Three well-separated Gaussian-ish blobs in 4D.
        let mut m = Matrix::zeros(60, 4);
        let mut labels = Vec::with_capacity(60);
        for r in 0..60 {
            let class = r % 3;
            labels.push(class);
            for c in 0..4 {
                let center = match class {
                    0 => 2.0,
                    1 => -2.0,
                    _ => {
                        if c % 2 == 0 {
                            2.0
                        } else {
                            -2.0
                        }
                    }
                };
                let jitter = ((r * 13 + c * 7) % 10) as f32 * 0.05 - 0.25;
                m.set(r, c, center + jitter);
            }
        }
        (m, labels)
    }

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax_row(&[3.0, 1.0, -2.0, 0.5]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&x| x > 0.0));
        assert!(p[0] > p[1] && p[1] > p[3] && p[3] > p[2]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax_row(&[1.0, 2.0, 3.0]);
        let b = softmax_row(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn classifier_learns_separable_blobs() {
        let (m, labels) = labelled_blobs();
        let mut clf = SoftmaxClassifier::new(4, 3, 0.1);
        let first = clf.train_epoch(&m, &labels);
        let mut last = first;
        for _ in 0..30 {
            last = clf.train_epoch(&m, &labels);
        }
        assert!(last < first * 0.3, "loss {first} -> {last}");
        assert!(clf.accuracy(&m, &labels) > 0.95);
    }

    #[test]
    fn untrained_classifier_is_uniform() {
        let clf = SoftmaxClassifier::new(4, 5, 0.1);
        let p = clf.predict(&[1.0, -1.0, 0.5, 2.0]);
        for prob in p {
            assert!((prob - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_penalizes_wrong_confidence() {
        let confident_right = cross_entropy(&[0.9, 0.1], 0);
        let confident_wrong = cross_entropy(&[0.9, 0.1], 1);
        assert!(confident_right < 0.2);
        assert!(confident_wrong > 2.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        SoftmaxClassifier::new(2, 2, 0.1).train_example(&[0.0, 0.0], 5);
    }
}
