//! The DSSM end model (the paper's Table 3 application head,
//! "DSSM 128-128"): two MLP towers whose outputs are scored by cosine
//! similarity — the classic deep structured semantic model used for
//! matching/recommendation.

use crate::layers::Mlp;
use crate::tensor::{cosine, Matrix};

/// A two-tower DSSM head.
#[derive(Debug, Clone, PartialEq)]
pub struct Dssm {
    query_tower: Mlp,
    item_tower: Mlp,
}

impl Dssm {
    /// Creates a DSSM with identical tower shapes, e.g. `[128, 128]`
    /// hidden widths on a `in_dim`-wide input (the paper's "128-128").
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is empty or `in_dim` is zero.
    pub fn new(in_dim: usize, hidden: &[usize], seed: u64) -> Self {
        assert!(in_dim > 0, "input width must be non-zero");
        assert!(!hidden.is_empty(), "need at least one hidden width");
        let mut widths = vec![in_dim];
        widths.extend_from_slice(hidden);
        Dssm {
            query_tower: Mlp::new(&widths, seed),
            item_tower: Mlp::new(&widths, seed + 1000),
        }
    }

    /// Scores each query row against the corresponding item row
    /// (cosine in embedding space, in `[-1, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the two batches have different row counts or widths.
    pub fn score(&self, queries: &Matrix, items: &Matrix) -> Vec<f32> {
        assert_eq!(
            queries.shape().0,
            items.shape().0,
            "query/item batch mismatch"
        );
        let q = self.query_tower.forward(queries);
        let v = self.item_tower.forward(items);
        (0..q.shape().0)
            .map(|r| cosine(q.row(r), v.row(r)))
            .collect()
    }

    /// Scores one query against many items (ranking mode).
    pub fn rank(&self, query: &Matrix, items: &Matrix) -> Vec<f32> {
        assert_eq!(query.shape().0, 1, "rank takes a single query row");
        let q = self.query_tower.forward(query);
        let v = self.item_tower.forward(items);
        (0..v.shape().0)
            .map(|r| cosine(q.row(0), v.row(r)))
            .collect()
    }

    /// Total parameters across both towers.
    pub fn params(&self) -> u64 {
        self.query_tower.params() + self.item_tower.params()
    }

    /// Multiply-accumulates for a `batch`-pair forward pass.
    pub fn forward_macs(&self, batch: usize) -> u64 {
        self.query_tower.forward_macs(batch) + self.item_tower.forward_macs(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_cosines() {
        let d = Dssm::new(16, &[128, 128], 1);
        let q = Matrix::random(4, 16, 1.0, 2);
        let i = Matrix::random(4, 16, 1.0, 3);
        let s = d.score(&q, &i);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn identical_inputs_do_not_guarantee_identical_towers() {
        // The towers have independent weights, so score(x, x) != 1 in
        // general — a regression guard against accidentally sharing
        // weights.
        let d = Dssm::new(8, &[16], 5);
        let x = Matrix::random(1, 8, 1.0, 6);
        let s = d.score(&x, &x);
        assert!(s[0] < 0.9999);
    }

    #[test]
    fn rank_orders_self_similar_items_high() {
        // Build items where item 0 is the query itself (through the item
        // tower the embedding differs, but relative ranking of an exact
        // duplicate of another item must tie).
        let d = Dssm::new(8, &[16, 16], 7);
        let q = Matrix::random(1, 8, 1.0, 8);
        let i1 = Matrix::random(1, 8, 1.0, 9);
        let items = Matrix::from_vec(
            2,
            8,
            [i1.row(0), i1.row(0)].concat(), // duplicate rows
        );
        let s = d.rank(&q, &items);
        assert!((s[0] - s[1]).abs() < 1e-6, "duplicates must tie");
    }

    #[test]
    fn paper_config_parameter_scale() {
        // DSSM 128-128 on a 128-wide embedding: ~66K params — the "5
        // orders of magnitude smaller than graph storage" side of Fig. 3.
        let d = Dssm::new(128, &[128, 128], 0);
        let params = d.params();
        assert!((50_000..100_000).contains(&params), "params {params}");
        assert!(d.forward_macs(512) > 0);
    }

    #[test]
    #[should_panic(expected = "single query")]
    fn rank_requires_one_query() {
        let d = Dssm::new(4, &[4], 1);
        let q = Matrix::zeros(2, 4);
        d.rank(&q, &Matrix::zeros(2, 4));
    }
}
