//! The graphSAGE-max layer (the paper's Table 3 GNN-NN stage).
//!
//! Per layer: `h_v = relu(W · concat(h_v, max_{u∈S(v)} h_u))` — aggregate
//! sampled-neighbor embeddings with an element-wise max, concatenate with
//! the node's own embedding, and project.

use crate::layers::Linear;
use crate::tensor::Matrix;

/// One graphSAGE-max layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SageMaxLayer {
    proj: Linear,
    in_dim: usize,
}

impl SageMaxLayer {
    /// Creates a layer mapping `in_dim` features to `out_dim`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        SageMaxLayer {
            proj: Linear::new(2 * in_dim, out_dim, true, seed),
            in_dim,
        }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.proj.shape().1
    }

    /// Parameters.
    pub fn params(&self) -> u64 {
        self.proj.params()
    }

    /// Forward pass: `nodes` is the `N×in_dim` embedding matrix of target
    /// nodes, `neighbors` the embedding matrix of candidate neighbors, and
    /// `adjacency[i]` lists the rows of `neighbors` sampled for node `i`
    /// (empty ⇒ the node's own embedding is used as the aggregate,
    /// matching frameworks' self-fallback).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or out-of-range indices.
    pub fn forward(&self, nodes: &Matrix, neighbors: &Matrix, adjacency: &[Vec<usize>]) -> Matrix {
        let (n, d) = nodes.shape();
        assert_eq!(d, self.in_dim, "node feature width mismatch");
        assert_eq!(neighbors.shape().1, self.in_dim, "neighbor width mismatch");
        assert_eq!(adjacency.len(), n, "one adjacency list per node");
        let mut agg = Matrix::zeros(n, d);
        for (i, samples) in adjacency.iter().enumerate() {
            let pooled = if samples.is_empty() {
                nodes.row(i).to_vec()
            } else {
                neighbors.max_over_rows(samples)
            };
            for (c, v) in pooled.into_iter().enumerate() {
                agg.set(i, c, v);
            }
        }
        self.proj.forward(&nodes.hconcat(&agg))
    }

    /// Multiply-accumulates for a batch of `n` target nodes.
    pub fn forward_macs(&self, n: usize) -> u64 {
        self.proj.forward_macs(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_and_nonnegativity() {
        let layer = SageMaxLayer::new(8, 4, 1);
        let nodes = Matrix::random(3, 8, 1.0, 2);
        let neigh = Matrix::random(10, 8, 1.0, 3);
        let adj = vec![vec![0, 1, 2], vec![5], vec![]];
        let out = layer.forward(&nodes, &neigh, &adj);
        assert_eq!(out.shape(), (3, 4));
        for r in 0..3 {
            assert!(out.row(r).iter().all(|&v| v >= 0.0), "relu output");
        }
    }

    #[test]
    fn aggregation_uses_max_of_sampled_rows() {
        // With an identity-ish check: a neighbor with huge positive
        // features must dominate the aggregate and change the output
        // versus sampling a tiny neighbor.
        let layer = SageMaxLayer::new(4, 4, 9);
        let nodes = Matrix::zeros(1, 4);
        let mut neigh = Matrix::zeros(2, 4);
        for c in 0..4 {
            neigh.set(0, c, 100.0);
            neigh.set(1, c, -100.0);
        }
        let big = layer.forward(&nodes, &neigh, &[vec![0]]);
        let small = layer.forward(&nodes, &neigh, &[vec![1]]);
        let both = layer.forward(&nodes, &neigh, &[vec![0, 1]]);
        assert_ne!(big, small);
        // max(big, small) == big.
        assert_eq!(both, big);
    }

    #[test]
    fn isolated_node_falls_back_to_self() {
        let layer = SageMaxLayer::new(4, 2, 11);
        let nodes = Matrix::random(1, 4, 1.0, 12);
        let neigh = Matrix::zeros(1, 4);
        let out_isolated = layer.forward(&nodes, &neigh, &[vec![]]);
        // Self-fallback equals aggregating a neighbor identical to self.
        let self_as_neighbor = layer.forward(&nodes, &nodes, &[vec![0]]);
        assert_eq!(out_isolated, self_as_neighbor);
    }

    #[test]
    fn params_and_macs_match_concat_width() {
        let layer = SageMaxLayer::new(128, 128, 0);
        // 2*128 inputs -> 128 outputs.
        assert_eq!(layer.params(), (256 * 128 + 128) as u64);
        assert_eq!(layer.forward_macs(512), 512 * 256 * 128);
        assert_eq!(layer.in_dim(), 128);
        assert_eq!(layer.out_dim(), 128);
    }

    #[test]
    #[should_panic(expected = "adjacency")]
    fn adjacency_length_mismatch_panics() {
        let layer = SageMaxLayer::new(4, 2, 1);
        let nodes = Matrix::zeros(2, 4);
        let neigh = Matrix::zeros(1, 4);
        layer.forward(&nodes, &neigh, &[vec![]]);
    }
}
