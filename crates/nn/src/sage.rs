//! The graphSAGE-max layer (the paper's Table 3 GNN-NN stage).
//!
//! Per layer: `h_v = relu(W · concat(h_v, max_{u∈S(v)} h_u))` — aggregate
//! sampled-neighbor embeddings with an element-wise max, concatenate with
//! the node's own embedding, and project.

use crate::layers::Linear;
use crate::tensor::Matrix;

/// One graphSAGE-max layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SageMaxLayer {
    proj: Linear,
    in_dim: usize,
}

impl SageMaxLayer {
    /// Creates a layer mapping `in_dim` features to `out_dim`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        SageMaxLayer {
            proj: Linear::new(2 * in_dim, out_dim, true, seed),
            in_dim,
        }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.proj.shape().1
    }

    /// Parameters.
    pub fn params(&self) -> u64 {
        self.proj.params()
    }

    /// Forward pass: `nodes` is the `N×in_dim` embedding matrix of target
    /// nodes, `neighbors` the embedding matrix of candidate neighbors, and
    /// `adjacency[i]` lists the rows of `neighbors` sampled for node `i`
    /// (empty ⇒ the node's own embedding is used as the aggregate,
    /// matching frameworks' self-fallback).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or out-of-range indices.
    pub fn forward(&self, nodes: &Matrix, neighbors: &Matrix, adjacency: &[Vec<usize>]) -> Matrix {
        let (n, d) = nodes.shape();
        assert_eq!(d, self.in_dim, "node feature width mismatch");
        assert_eq!(neighbors.shape().1, self.in_dim, "neighbor width mismatch");
        assert_eq!(adjacency.len(), n, "one adjacency list per node");
        let mut agg = Matrix::zeros(n, d);
        for (i, samples) in adjacency.iter().enumerate() {
            let pooled = if samples.is_empty() {
                nodes.row(i).to_vec()
            } else {
                neighbors.max_over_rows(samples)
            };
            for (c, v) in pooled.into_iter().enumerate() {
                agg.set(i, c, v);
            }
        }
        self.proj.forward(&nodes.hconcat(&agg))
    }

    /// Multiply-accumulates for a batch of `n` target nodes.
    pub fn forward_macs(&self, n: usize) -> u64 {
        self.proj.forward_macs(n)
    }

    /// CSR-span forward over a single feature matrix — the flat
    /// `SampleBlock` data-plane form of [`SageMaxLayer::forward`], with no
    /// `Vec<Vec<usize>>` re-materialization and no allocation beyond the
    /// caller's scratch.
    ///
    /// Target `i`'s own embedding is `feats.row(target_rows[i])`; its
    /// sampled children occupy positions `ends[i-1]..ends[i]` (0-based
    /// start for `i == 0`) of `child_rows`, each naming a row of `feats`.
    /// An empty span falls back to the target's own embedding, matching
    /// the nested form. `concat` is scratch for the `[h_v | max h_u]`
    /// concatenation; the projection lands in `out` (`n × out_dim`).
    /// Values are bitwise-identical to the nested `forward`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch, `ends.len() != target_rows.len()`, or
    /// out-of-range row indices.
    pub fn forward_spans_into(
        &self,
        feats: &Matrix,
        target_rows: &[u32],
        child_rows: &[u32],
        ends: &[u32],
        concat: &mut Matrix,
        out: &mut Matrix,
    ) {
        let n = target_rows.len();
        let d = self.in_dim;
        assert_eq!(feats.shape().1, d, "feature width mismatch");
        assert_eq!(ends.len(), n, "one adjacency span per target");
        concat.reset(n, 2 * d);
        let mut start = 0usize;
        for i in 0..n {
            let end = ends[i] as usize;
            let row = concat.row_mut(i);
            let own = feats.row(target_rows[i] as usize);
            row[..d].copy_from_slice(own);
            if start == end {
                // Self-fallback, as in the nested form.
                row[d..].copy_from_slice(own);
            } else {
                // Element-wise max over the span, mirroring
                // `Matrix::max_over_rows` (seed with the first child).
                row[d..].copy_from_slice(feats.row(child_rows[start] as usize));
                for &cr in &child_rows[start + 1..end] {
                    let child = feats.row(cr as usize);
                    for (o, &v) in row[d..].iter_mut().zip(child) {
                        *o = o.max(v);
                    }
                }
            }
            start = end;
        }
        self.proj.forward_into(concat, out);
    }
}

/// Reusable buffers for [`SageModel::forward_block_into`].
#[derive(Debug, Clone)]
pub struct SageScratch {
    identity: Vec<u32>,
    cur: Matrix,
    nxt: Matrix,
    concat: Matrix,
}

impl SageScratch {
    /// Empty scratch; buffers grow on first use and are then recycled.
    pub fn new() -> Self {
        SageScratch {
            identity: Vec::new(),
            cur: Matrix::zeros(1, 1),
            nxt: Matrix::zeros(1, 1),
            concat: Matrix::zeros(1, 1),
        }
    }
}

impl Default for SageScratch {
    fn default() -> Self {
        SageScratch::new()
    }
}

/// A stack of [`SageMaxLayer`]s driven directly by a flat `SampleBlock`'s
/// hop/adjacency offsets — one layer per sampling hop, innermost first.
///
/// The entry space unifies roots and sampled nodes: entry `e < num_roots`
/// is root `e`, entry `e ≥ num_roots` is sampled node `e - num_roots`.
/// Layer 1 reads deduplicated attribute rows through a slot index (so each
/// unique node's raw features are touched once); later layers index the
/// previous layer's output directly. Each layer `k` produces embeddings
/// for the entries that still matter — roots plus hops `0..H-k` — until
/// layer `H` leaves exactly the root embeddings.
#[derive(Debug, Clone, PartialEq)]
pub struct SageModel {
    layers: Vec<SageMaxLayer>,
}

impl SageModel {
    /// Builds through the listed feature widths, e.g. `[64, 32, 16]` for
    /// a two-hop model mapping 64-wide attributes to 16-wide embeddings.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two widths.
    pub fn new(widths: &[usize], seed: u64) -> Self {
        assert!(widths.len() >= 2, "need input and output widths");
        SageModel {
            layers: widths
                .windows(2)
                .enumerate()
                .map(|(i, w)| SageMaxLayer::new(w[0], w[1], seed + 17 * i as u64))
                .collect(),
        }
    }

    /// Layer count == sampling hops consumed.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input attribute width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output embedding width.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Total parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(SageMaxLayer::params).sum()
    }

    /// Forward pass over a flat sample block, writing root embeddings
    /// (`num_roots × out_dim`) into `out`.
    ///
    /// Inputs mirror `SampleBlock`'s flat planes without depending on the
    /// sampler crate: `hop_offsets[i]` is the start of hop `i` in the node
    /// plane, `adj_offsets[j]` the exclusive end of parent `j`'s children
    /// (parents enumerate roots then hops `0..H-2`), and `slot_of[e]` maps
    /// entry `e` to its row in `rows`, the deduplicated attribute matrix
    /// from the coalesced gather.
    ///
    /// # Panics
    ///
    /// Panics if `hop_offsets.len() != num_layers()`, on adjacency/slot
    /// length mismatches, or `num_roots == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_block_into(
        &self,
        num_roots: usize,
        hop_offsets: &[u32],
        adj_offsets: &[u32],
        rows: &Matrix,
        slot_of: &[u32],
        scratch: &mut SageScratch,
        out: &mut Matrix,
    ) {
        self.forward_block_observed(
            num_roots,
            hop_offsets,
            adj_offsets,
            rows,
            slot_of,
            scratch,
            out,
            |_| {},
        );
    }

    /// [`SageModel::forward_block_into`] with a per-layer observation
    /// hook: `after_layer(k)` fires as each 0-based layer's output lands,
    /// letting a caller time layers individually. The closure is
    /// monomorphized, so the plain entry point (a no-op closure) compiles
    /// to the unobserved loop — instrumented-but-disabled costs nothing.
    ///
    /// # Panics
    ///
    /// Same contract as [`SageModel::forward_block_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn forward_block_observed<F: FnMut(usize)>(
        &self,
        num_roots: usize,
        hop_offsets: &[u32],
        adj_offsets: &[u32],
        rows: &Matrix,
        slot_of: &[u32],
        scratch: &mut SageScratch,
        out: &mut Matrix,
        mut after_layer: F,
    ) {
        let h = self.layers.len();
        assert!(num_roots > 0, "need at least one root");
        assert_eq!(hop_offsets.len(), h, "one layer per sampling hop");
        let parents = num_roots + hop_offsets[h - 1] as usize;
        assert_eq!(adj_offsets.len(), parents, "one span end per parent");
        let nodes = adj_offsets.last().map_or(0, |&e| e as usize);
        let total = num_roots + nodes;
        assert_eq!(slot_of.len(), total, "one attribute slot per entry");

        // Layer 1: unique-row features through the slot index. Targets
        // are every parent; children of parent j are node-plane entries
        // adj_offsets[j-1]..adj_offsets[j], i.e. slots slot_of[num_roots..].
        self.layers[0].forward_spans_into(
            rows,
            &slot_of[..parents],
            &slot_of[num_roots..],
            adj_offsets,
            &mut scratch.concat,
            &mut scratch.cur,
        );
        after_layer(0);

        // Layers 2..=H: identity indexing into the previous layer's
        // output; each layer narrows the live prefix to roots + hops
        // 0..H-k (children of entry j stay at entries num_roots + span_j).
        if h >= 2 && scratch.identity.len() < total {
            scratch.identity.clear();
            scratch.identity.extend(0..total as u32);
        }
        for k in 2..=h {
            let n_k = num_roots + hop_offsets[h - k] as usize;
            self.layers[k - 1].forward_spans_into(
                &scratch.cur,
                &scratch.identity[..n_k],
                &scratch.identity[num_roots..],
                &adj_offsets[..n_k],
                &mut scratch.concat,
                &mut scratch.nxt,
            );
            std::mem::swap(&mut scratch.cur, &mut scratch.nxt);
            after_layer(k - 1);
        }
        out.copy_from(&scratch.cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_and_nonnegativity() {
        let layer = SageMaxLayer::new(8, 4, 1);
        let nodes = Matrix::random(3, 8, 1.0, 2);
        let neigh = Matrix::random(10, 8, 1.0, 3);
        let adj = vec![vec![0, 1, 2], vec![5], vec![]];
        let out = layer.forward(&nodes, &neigh, &adj);
        assert_eq!(out.shape(), (3, 4));
        for r in 0..3 {
            assert!(out.row(r).iter().all(|&v| v >= 0.0), "relu output");
        }
    }

    #[test]
    fn aggregation_uses_max_of_sampled_rows() {
        // With an identity-ish check: a neighbor with huge positive
        // features must dominate the aggregate and change the output
        // versus sampling a tiny neighbor.
        let layer = SageMaxLayer::new(4, 4, 9);
        let nodes = Matrix::zeros(1, 4);
        let mut neigh = Matrix::zeros(2, 4);
        for c in 0..4 {
            neigh.set(0, c, 100.0);
            neigh.set(1, c, -100.0);
        }
        let big = layer.forward(&nodes, &neigh, &[vec![0]]);
        let small = layer.forward(&nodes, &neigh, &[vec![1]]);
        let both = layer.forward(&nodes, &neigh, &[vec![0, 1]]);
        assert_ne!(big, small);
        // max(big, small) == big.
        assert_eq!(both, big);
    }

    #[test]
    fn isolated_node_falls_back_to_self() {
        let layer = SageMaxLayer::new(4, 2, 11);
        let nodes = Matrix::random(1, 4, 1.0, 12);
        let neigh = Matrix::zeros(1, 4);
        let out_isolated = layer.forward(&nodes, &neigh, &[vec![]]);
        // Self-fallback equals aggregating a neighbor identical to self.
        let self_as_neighbor = layer.forward(&nodes, &nodes, &[vec![0]]);
        assert_eq!(out_isolated, self_as_neighbor);
    }

    #[test]
    fn params_and_macs_match_concat_width() {
        let layer = SageMaxLayer::new(128, 128, 0);
        // 2*128 inputs -> 128 outputs.
        assert_eq!(layer.params(), (256 * 128 + 128) as u64);
        assert_eq!(layer.forward_macs(512), 512 * 256 * 128);
        assert_eq!(layer.in_dim(), 128);
        assert_eq!(layer.out_dim(), 128);
    }

    #[test]
    #[should_panic(expected = "adjacency")]
    fn adjacency_length_mismatch_panics() {
        let layer = SageMaxLayer::new(4, 2, 1);
        let nodes = Matrix::zeros(2, 4);
        let neigh = Matrix::zeros(1, 4);
        layer.forward(&nodes, &neigh, &[vec![]]);
    }

    /// Stacks matrices row-wise (test helper for building a unified
    /// feature plane out of the nested API's separate matrices).
    fn vstack(mats: &[&Matrix]) -> Matrix {
        let mut rows: Vec<Vec<f32>> = Vec::new();
        for m in mats {
            for r in 0..m.shape().0 {
                rows.push(m.row(r).to_vec());
            }
        }
        Matrix::from_rows(&rows.iter().map(|r| &r[..]).collect::<Vec<_>>())
    }

    #[test]
    fn span_forward_matches_nested_forward_bitwise() {
        let layer = SageMaxLayer::new(8, 4, 1);
        let nodes = Matrix::random(3, 8, 1.0, 2);
        let neigh = Matrix::random(10, 8, 1.0, 3);
        let adj = vec![vec![0usize, 1, 2], vec![5], vec![]];
        let nested = layer.forward(&nodes, &neigh, &adj);

        // Same computation in span form: one feature plane, targets at
        // rows 0..3, neighbors at rows 3..13.
        let feats = vstack(&[&nodes, &neigh]);
        let target_rows = [0u32, 1, 2];
        let mut child_rows = Vec::new();
        let mut ends = Vec::new();
        for samples in &adj {
            child_rows.extend(samples.iter().map(|&j| 3 + j as u32));
            ends.push(child_rows.len() as u32);
        }
        let mut concat = Matrix::zeros(1, 1);
        let mut out = Matrix::zeros(1, 1);
        layer.forward_spans_into(
            &feats,
            &target_rows,
            &child_rows,
            &ends,
            &mut concat,
            &mut out,
        );
        assert_eq!(out, nested);
    }

    #[test]
    fn model_matches_manual_layerwise_reference() {
        // A synthetic 2-root, 2-hop flat block:
        //   entries: [root0, root1 | n0..n6], hop 0 = n0..n2, hop 1 = n3..n6
        //   parents: roots + hop-0 nodes, children per adj_offsets spans.
        let num_roots = 2usize;
        let hop_offsets = [0u32, 3];
        let adj_offsets = [2u32, 3, 5, 5, 7];
        let slot_of = [0u32, 1, 2, 3, 1, 4, 5, 0, 2];
        let rows = Matrix::random(6, 8, 1.0, 40);
        let model = SageModel::new(&[8, 6, 4], 41);
        assert_eq!(model.num_layers(), 2);
        assert_eq!(model.in_dim(), 8);
        assert_eq!(model.out_dim(), 4);

        let mut scratch = SageScratch::new();
        let mut out = Matrix::zeros(1, 1);
        model.forward_block_into(
            num_roots,
            &hop_offsets,
            &adj_offsets,
            &rows,
            &slot_of,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.shape(), (2, 4));

        // Reference: expand slots to per-entry features and run the
        // nested API layer by layer.
        let entry_rows: Vec<&[f32]> = slot_of.iter().map(|&s| rows.row(s as usize)).collect();
        let feats = Matrix::from_rows(&entry_rows);
        let span = |j: usize| -> Vec<usize> {
            let start = if j == 0 {
                0
            } else {
                adj_offsets[j - 1] as usize
            };
            (start..adj_offsets[j] as usize).collect()
        };
        // Layer 1 over all 5 parents; neighbors indexed in the node plane
        // (entry index minus num_roots).
        let parents_feats = Matrix::from_rows(&(0..5).map(|e| feats.row(e)).collect::<Vec<_>>());
        let node_feats = Matrix::from_rows(&(2..9).map(|e| feats.row(e)).collect::<Vec<_>>());
        let l0 = SageMaxLayer::new(8, 6, 41);
        let adj1: Vec<Vec<usize>> = (0..5).map(span).collect();
        let cur = l0.forward(&parents_feats, &node_feats, &adj1);
        // Layer 2 over the 2 roots; neighbors are the hop-0 embeddings
        // (entries 2..5 of the layer-1 output).
        let root_feats = Matrix::from_rows(&[cur.row(0), cur.row(1)]);
        let neigh_feats = Matrix::from_rows(&(2..5).map(|e| cur.row(e)).collect::<Vec<_>>());
        let l1 = SageMaxLayer::new(6, 4, 41 + 17);
        let adj2: Vec<Vec<usize>> = (0..2).map(span).collect();
        let reference = l1.forward(&root_feats, &neigh_feats, &adj2);
        assert_eq!(out, reference);
    }

    #[test]
    fn observed_forward_fires_per_layer_and_matches_plain() {
        let num_roots = 2usize;
        let hop_offsets = [0u32, 3];
        let adj_offsets = [2u32, 3, 5, 5, 7];
        let slot_of = [0u32, 1, 2, 3, 1, 4, 5, 0, 2];
        let rows = Matrix::random(6, 8, 1.0, 40);
        let model = SageModel::new(&[8, 6, 4], 41);
        let mut scratch = SageScratch::new();
        let mut plain = Matrix::zeros(1, 1);
        model.forward_block_into(
            num_roots,
            &hop_offsets,
            &adj_offsets,
            &rows,
            &slot_of,
            &mut scratch,
            &mut plain,
        );
        let mut observed = Matrix::zeros(1, 1);
        let mut layers_seen = Vec::new();
        model.forward_block_observed(
            num_roots,
            &hop_offsets,
            &adj_offsets,
            &rows,
            &slot_of,
            &mut scratch,
            &mut observed,
            |k| layers_seen.push(k),
        );
        assert_eq!(layers_seen, vec![0, 1], "hook fires once per layer");
        assert_eq!(observed, plain, "the hook never changes the answer");
    }

    #[test]
    fn degraded_block_with_no_nodes_falls_back_to_self() {
        // A fully-degraded reply: roots only, every span empty.
        let rows = Matrix::random(2, 4, 1.0, 50);
        let model = SageModel::new(&[4, 3, 2], 51);
        let mut scratch = SageScratch::new();
        let mut out = Matrix::zeros(1, 1);
        model.forward_block_into(2, &[0, 0], &[0, 0], &rows, &[0, 1], &mut scratch, &mut out);
        let l0 = SageMaxLayer::new(4, 3, 51);
        let l1 = SageMaxLayer::new(3, 2, 51 + 17);
        let empty = [vec![], vec![]];
        let mid = l0.forward(&rows, &rows, &empty);
        let reference = l1.forward(&mid, &mid, &empty);
        assert_eq!(out, reference);
    }

    #[test]
    fn scratch_is_safe_to_reuse_across_block_shapes() {
        let model = SageModel::new(&[4, 4, 4], 60);
        let mut scratch = SageScratch::new();
        let rows_a = Matrix::random(5, 4, 1.0, 61);
        let mut out_a = Matrix::zeros(1, 1);
        let hop_a = [0u32, 2];
        let adj_a = [1u32, 2, 3, 4];
        let slot_a = [0u32, 1, 2, 3, 4, 0];
        model.forward_block_into(
            2,
            &hop_a,
            &adj_a,
            &rows_a,
            &slot_a,
            &mut scratch,
            &mut out_a,
        );
        // Re-run with fresh scratch: identical.
        let mut out_b = Matrix::zeros(1, 1);
        model.forward_block_into(
            2,
            &hop_a,
            &adj_a,
            &rows_a,
            &slot_a,
            &mut SageScratch::new(),
            &mut out_b,
        );
        assert_eq!(out_a, out_b);
        // Then a smaller block through the same (dirty, larger) scratch.
        let rows_c = Matrix::random(1, 4, 1.0, 62);
        let mut out_c = Matrix::zeros(1, 1);
        model.forward_block_into(1, &[0, 0], &[0], &rows_c, &[0], &mut scratch, &mut out_c);
        let mut out_d = Matrix::zeros(1, 1);
        model.forward_block_into(
            1,
            &[0, 0],
            &[0],
            &rows_c,
            &[0],
            &mut SageScratch::new(),
            &mut out_d,
        );
        assert_eq!(out_c, out_d);
    }
}
