//! Dense neural-network substrate for the LSD-GNN reproduction.
//!
//! LSD-GNN's mini-batch workflow is *sample → dense NN*: after sampling,
//! the GNN layers (graphSAGE-max in the paper's Table 3 application) and
//! the DSSM end model are ordinary dense matrix computations. This crate
//! provides those pieces — a small matrix type ([`tensor::Matrix`]),
//! linear/MLP layers, the graphSAGE-max aggregation, and a DSSM two-tower
//! head — plus the operator-level cost model behind the paper's Figure 3
//! end-to-end breakdown ([`e2e`]).
//!
//! # Example
//!
//! ```
//! use lsdgnn_nn::tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

pub mod classify;
pub mod dssm;
pub mod e2e;
pub mod grad;
pub mod layers;
pub mod sage;
pub mod tensor;
pub mod train;

pub use classify::SoftmaxClassifier;
pub use dssm::Dssm;
pub use e2e::{E2eBreakdown, E2eModel, Phase};
pub use grad::{GradLinear, GradMlp};
pub use layers::{Linear, Mlp};
pub use sage::{SageMaxLayer, SageModel, SageScratch};
pub use tensor::Matrix;
pub use train::LinkPredictor;
