//! Linear and MLP layers with FLOP accounting.

use crate::tensor::Matrix;

/// A dense layer `y = relu?(x·W + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
    relu: bool,
}

impl Linear {
    /// Creates a layer with deterministic pseudo-random weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be non-zero");
        let scale = (1.0 / in_dim as f32).sqrt();
        Linear {
            weight: Matrix::random(in_dim, out_dim, scale, seed),
            bias: vec![0.0; out_dim],
            relu,
        }
    }

    /// `(in_dim, out_dim)`.
    pub fn shape(&self) -> (usize, usize) {
        self.weight.shape()
    }

    /// Parameter count (weights + biases).
    pub fn params(&self) -> u64 {
        let (i, o) = self.weight.shape();
        (i * o + o) as u64
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong inner dimension.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(1, 1);
        self.forward_into(x, &mut y);
        y
    }

    /// [`Linear::forward`] writing into a caller-provided (typically
    /// pooled) output matrix instead of allocating. `out` is reshaped to
    /// `x.rows × out_dim`; the result is bitwise-identical to `forward`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong inner dimension.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.weight, out);
        out.add_row_vector_in_place(&self.bias);
        if self.relu {
            out.relu_in_place();
        }
    }

    /// Multiply-accumulates for a batch of `batch` rows.
    pub fn forward_macs(&self, batch: usize) -> u64 {
        let (i, o) = self.weight.shape();
        (batch * i * o) as u64
    }
}

/// A stack of [`Linear`] layers (ReLU between, linear output).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP through the listed layer widths, e.g.
    /// `[256, 128, 128]` for 256→128→128.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two widths.
    pub fn new(widths: &[usize], seed: u64) -> Self {
        assert!(widths.len() >= 2, "need input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], i + 2 < widths.len(), seed + i as u64))
            .collect();
        Mlp { layers }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(1, 1);
        let mut scratch = Matrix::zeros(1, 1);
        self.forward_into(x, &mut scratch, &mut out);
        out
    }

    /// [`Mlp::forward`] ping-ponging between two caller-provided
    /// (typically pooled) buffers; the final activation always lands in
    /// `out`. Result is bitwise-identical to `forward`.
    pub fn forward_into(&self, x: &Matrix, scratch: &mut Matrix, out: &mut Matrix) {
        // Pick starting buffers so the last layer's write ends in `out`:
        // after the first layer, each subsequent layer swaps the pair.
        let (mut a, mut b) = if self.layers.len() % 2 == 1 {
            (out, scratch)
        } else {
            (scratch, out)
        };
        self.layers[0].forward_into(x, a);
        for l in &self.layers[1..] {
            l.forward_into(a, b);
            std::mem::swap(&mut a, &mut b);
        }
    }

    /// Total parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(Linear::params).sum()
    }

    /// Multiply-accumulates for a `batch`-row forward pass.
    pub fn forward_macs(&self, batch: usize) -> u64 {
        self.layers.iter().map(|l| l.forward_macs(batch)).sum()
    }

    /// Layer count.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_params() {
        let l = Linear::new(8, 4, true, 1);
        assert_eq!(l.shape(), (8, 4));
        assert_eq!(l.params(), 8 * 4 + 4);
        let x = Matrix::random(3, 8, 1.0, 2);
        let y = l.forward(&x);
        assert_eq!(y.shape(), (3, 4));
        // ReLU output is non-negative.
        for r in 0..3 {
            assert!(y.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn mlp_composes_widths() {
        let m = Mlp::new(&[16, 8, 4], 3);
        assert_eq!(m.depth(), 2);
        let x = Matrix::random(5, 16, 1.0, 4);
        assert_eq!(m.forward(&x).shape(), (5, 4));
        assert_eq!(m.params(), (16 * 8 + 8) + (8 * 4 + 4) as u64);
        assert_eq!(m.forward_macs(5), 5 * (16 * 8 + 8 * 4) as u64);
    }

    #[test]
    fn output_layer_is_linear_not_relu() {
        // With a linear head, outputs can be negative.
        let m = Mlp::new(&[4, 4], 5);
        let x = Matrix::random(20, 4, 2.0, 6);
        let y = m.forward(&x);
        let any_negative = (0..20).any(|r| y.row(r).iter().any(|&v| v < 0.0));
        assert!(any_negative, "linear output should produce negatives");
    }

    #[test]
    fn deterministic_forward() {
        let m1 = Mlp::new(&[8, 8, 8], 7);
        let m2 = Mlp::new(&[8, 8, 8], 7);
        let x = Matrix::random(2, 8, 1.0, 8);
        assert_eq!(m1.forward(&x), m2.forward(&x));
    }

    #[test]
    #[should_panic(expected = "input and output")]
    fn single_width_panics() {
        let _ = Mlp::new(&[4], 0);
    }

    #[test]
    fn forward_into_matches_forward_bitwise() {
        let x = Matrix::random(6, 16, 1.0, 40);
        let l = Linear::new(16, 8, true, 41);
        let mut out = Matrix::zeros(1, 1);
        l.forward_into(&x, &mut out);
        assert_eq!(out, l.forward(&x));

        // Odd and even depths exercise both ping-pong starting orders.
        for widths in [&[16usize, 8, 4][..], &[16, 12, 8, 4][..]] {
            let m = Mlp::new(widths, 42);
            let mut out = Matrix::zeros(1, 1);
            let mut scratch = Matrix::zeros(1, 1);
            m.forward_into(&x, &mut scratch, &mut out);
            assert_eq!(out, m.forward(&x), "depth {}", m.depth());
        }
    }

    #[test]
    fn forward_into_reuses_dirty_buffers() {
        let x = Matrix::random(3, 8, 1.0, 50);
        let m = Mlp::new(&[8, 8, 8], 51);
        let mut out = Matrix::random(7, 2, 5.0, 52);
        let mut scratch = Matrix::random(1, 9, 5.0, 53);
        m.forward_into(&x, &mut scratch, &mut out);
        assert_eq!(out, m.forward(&x));
    }
}
