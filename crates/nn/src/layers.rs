//! Linear and MLP layers with FLOP accounting.

use crate::tensor::Matrix;

/// A dense layer `y = relu?(x·W + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
    relu: bool,
}

impl Linear {
    /// Creates a layer with deterministic pseudo-random weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be non-zero");
        let scale = (1.0 / in_dim as f32).sqrt();
        Linear {
            weight: Matrix::random(in_dim, out_dim, scale, seed),
            bias: vec![0.0; out_dim],
            relu,
        }
    }

    /// `(in_dim, out_dim)`.
    pub fn shape(&self) -> (usize, usize) {
        self.weight.shape()
    }

    /// Parameter count (weights + biases).
    pub fn params(&self) -> u64 {
        let (i, o) = self.weight.shape();
        (i * o + o) as u64
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong inner dimension.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let y = x.matmul(&self.weight).add_row_vector(&self.bias);
        if self.relu {
            y.relu()
        } else {
            y
        }
    }

    /// Multiply-accumulates for a batch of `batch` rows.
    pub fn forward_macs(&self, batch: usize) -> u64 {
        let (i, o) = self.weight.shape();
        (batch * i * o) as u64
    }
}

/// A stack of [`Linear`] layers (ReLU between, linear output).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP through the listed layer widths, e.g.
    /// `[256, 128, 128]` for 256→128→128.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two widths.
    pub fn new(widths: &[usize], seed: u64) -> Self {
        assert!(widths.len() >= 2, "need input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], i + 2 < widths.len(), seed + i as u64))
            .collect();
        Mlp { layers }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.layers.iter().fold(x.clone(), |h, l| l.forward(&h))
    }

    /// Total parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(Linear::params).sum()
    }

    /// Multiply-accumulates for a `batch`-row forward pass.
    pub fn forward_macs(&self, batch: usize) -> u64 {
        self.layers.iter().map(|l| l.forward_macs(batch)).sum()
    }

    /// Layer count.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_params() {
        let l = Linear::new(8, 4, true, 1);
        assert_eq!(l.shape(), (8, 4));
        assert_eq!(l.params(), 8 * 4 + 4);
        let x = Matrix::random(3, 8, 1.0, 2);
        let y = l.forward(&x);
        assert_eq!(y.shape(), (3, 4));
        // ReLU output is non-negative.
        for r in 0..3 {
            assert!(y.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn mlp_composes_widths() {
        let m = Mlp::new(&[16, 8, 4], 3);
        assert_eq!(m.depth(), 2);
        let x = Matrix::random(5, 16, 1.0, 4);
        assert_eq!(m.forward(&x).shape(), (5, 4));
        assert_eq!(m.params(), (16 * 8 + 8) + (8 * 4 + 4) as u64);
        assert_eq!(m.forward_macs(5), 5 * (16 * 8 + 8 * 4) as u64);
    }

    #[test]
    fn output_layer_is_linear_not_relu() {
        // With a linear head, outputs can be negative.
        let m = Mlp::new(&[4, 4], 5);
        let x = Matrix::random(20, 4, 2.0, 6);
        let y = m.forward(&x);
        let any_negative = (0..20).any(|r| y.row(r).iter().any(|&v| v < 0.0));
        assert!(any_negative, "linear output should produce negatives");
    }

    #[test]
    fn deterministic_forward() {
        let m1 = Mlp::new(&[8, 8, 8], 7);
        let m2 = Mlp::new(&[8, 8, 8], 7);
        let x = Matrix::random(2, 8, 1.0, 8);
        assert_eq!(m1.forward(&x), m2.forward(&x));
    }

    #[test]
    #[should_panic(expected = "input and output")]
    fn single_width_panics() {
        let _ = Mlp::new(&[4], 0);
    }
}
