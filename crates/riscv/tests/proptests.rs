//! Property-based tests for the RISC-V interpreter: the ALU matches
//! Rust's arithmetic, and encode/decode round-trips.

use lsdgnn_riscv::isa::{decode, encode, Instruction};
use lsdgnn_riscv::{assemble, Cpu};
use proptest::prelude::*;

proptest! {
    /// R-type encodings round-trip through the decoder.
    #[test]
    fn r_type_round_trips(rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32, f3 in 0u8..8) {
        let w = encode::r(0x33, rd, f3, rs1, rs2, 0x00);
        match decode(w).unwrap() {
            Instruction::Op { funct3, rd: d, rs1: a, rs2: b, alt, m_ext } => {
                prop_assert_eq!((funct3, d, a, b), (f3, rd, rs1, rs2));
                prop_assert!(!alt && !m_ext);
            }
            other => prop_assert!(false, "decoded {:?}", other),
        }
    }

    /// `add`/`sub`/`xor`/`and`/`or` agree with Rust's wrapping semantics
    /// for arbitrary inputs.
    #[test]
    fn alu_matches_rust(a in any::<u32>(), b in any::<u32>()) {
        // Build inputs with lui+addi-free path: store via memory words.
        let program = assemble(
            "lw x1, 256(x0)
             lw x2, 260(x0)
             add x3, x1, x2
             sub x4, x1, x2
             xor x5, x1, x2
             and x6, x1, x2
             or  x7, x1, x2
             sltu x8, x1, x2
             mul x9, x1, x2
             halt",
        ).unwrap();
        let mut cpu = Cpu::new(4096);
        cpu.load_program(&program);
        // Place operands in RAM before running.
        let prog_words = program.len();
        prop_assume!(prog_words * 4 <= 256);
        // Write operands at 256 and 260 through the public API: run a
        // store program first? Simpler: poke via load_program layout —
        // instead assemble stores of immediates is limited to 12 bits, so
        // use the raw RAM initializer below.
        let mut boot = vec![0u32; 66];
        boot[..prog_words].copy_from_slice(&program);
        boot[64] = a; // address 256
        boot[65] = b; // address 260
        cpu.load_program(&boot);
        cpu.run(1_000).unwrap();
        prop_assert_eq!(cpu.reg(3), a.wrapping_add(b));
        prop_assert_eq!(cpu.reg(4), a.wrapping_sub(b));
        prop_assert_eq!(cpu.reg(5), a ^ b);
        prop_assert_eq!(cpu.reg(6), a & b);
        prop_assert_eq!(cpu.reg(7), a | b);
        prop_assert_eq!(cpu.reg(8), (a < b) as u32);
        prop_assert_eq!(cpu.reg(9), a.wrapping_mul(b));
    }

    /// Shifts match Rust semantics (5-bit shift amounts).
    #[test]
    fn shifts_match_rust(a in any::<u32>(), sh in 0u32..32) {
        let program = assemble(&format!(
            "lw x1, 256(x0)
             slli x2, x1, {sh}
             srli x3, x1, {sh}
             srai x4, x1, {sh}
             halt"
        )).unwrap();
        let mut boot = vec![0u32; 66];
        boot[..program.len()].copy_from_slice(&program);
        boot[64] = a;
        let mut cpu = Cpu::new(4096);
        cpu.load_program(&boot);
        cpu.run(1_000).unwrap();
        prop_assert_eq!(cpu.reg(2), a << sh);
        prop_assert_eq!(cpu.reg(3), a >> sh);
        prop_assert_eq!(cpu.reg(4), ((a as i32) >> sh) as u32);
    }

    /// Memory is a true round trip for arbitrary word-aligned addresses.
    #[test]
    fn memory_round_trips(v in any::<u32>(), slot in 70u32..200) {
        let addr = slot * 4;
        let program = assemble(&format!(
            "lw x1, 256(x0)
             sw x1, {addr}(x0)
             lw x2, {addr}(x0)
             halt"
        )).unwrap();
        let mut boot = vec![0u32; 66];
        boot[..program.len()].copy_from_slice(&program);
        boot[64] = v;
        let mut cpu = Cpu::new(4096);
        cpu.load_program(&boot);
        cpu.run(1_000).unwrap();
        prop_assert_eq!(cpu.reg(2), v);
    }

    /// Branch offsets encode/decode for all legal even offsets.
    #[test]
    fn branch_offsets_round_trip(off_halfwords in -2048i32..2048) {
        let off = off_halfwords * 2;
        let w = encode::b(0x63, 0, 1, 2, off);
        match decode(w).unwrap() {
            Instruction::Branch { offset, .. } => prop_assert_eq!(offset, off),
            other => prop_assert!(false, "decoded {:?}", other),
        }
    }
}
