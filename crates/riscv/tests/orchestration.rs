//! Control-plane orchestration tests: the §5 software stack's lowest
//! layer as real RV32 programs — doorbell/polling loops, batched command
//! submission and cycle accounting via the performance counters.

use lsdgnn_riscv::{assemble, Cpu, QrchHub};

#[test]
fn polling_loop_waits_on_queue_status() {
    // Submit 8 commands, then poll q1's occupancy with qstat until all
    // responses are present before draining — the "check status,
    // maintain data dependency" flow of §4.4.
    let program = assemble(
        "       addi x10, x0, 8      # commands to submit
                addi x11, x0, 100    # first operand
        submit: qpush q0, x11
                addi x11, x11, 1
                addi x10, x10, -1
                bne  x10, x0, submit
        poll:   qstat x12, q1
                addi x13, x0, 8
                bne  x12, x13, poll  # spin until 8 responses queued
                addi x14, x0, 8
                addi x15, x0, 0
        drain:  qpop x16, q1
                add  x15, x15, x16
                addi x14, x14, -1
                bne  x14, x0, drain
                halt",
    )
    .unwrap();
    let mut cpu = Cpu::with_device(16 * 1024, QrchHub::new());
    cpu.load_program(&program);
    cpu.run(1_000_000).unwrap();
    // Accelerator computes 2x+1 for x in 100..108.
    let expect: u32 = (100..108).map(|x| 2 * x + 1).sum();
    assert_eq!(cpu.reg(15), expect);
    assert_eq!(cpu.device().ops(), 8);
}

#[test]
fn cycle_counter_measures_command_cost() {
    // rdcycle brackets around a QRCH interaction measure its cost from
    // *inside* the control program — the self-profiling a firmware
    // developer would do.
    let program = assemble(
        "       addi x11, x0, 7
                rdcycle x20
                qpush q0, x11
                qpop  x21, q1
                rdcycle x22
                sub   x23, x22, x20
                halt",
    )
    .unwrap();
    let mut cpu = Cpu::with_device(4 * 1024, QrchHub::new());
    cpu.load_program(&program);
    cpu.run(10_000).unwrap();
    let measured = cpu.reg(23);
    // One qpush + one qpop at ~10 cycles each, plus the second rdcycle.
    assert!(
        (20..=25).contains(&measured),
        "measured interaction cost {measured} cycles"
    );
    assert_eq!(cpu.reg(21), 15); // 2*7+1
}

#[test]
fn subroutine_call_via_jalr_dispatches_commands() {
    // A call/return structure: main loops over operands, calling a
    // submit-and-wait subroutine — exercising jal/jalr linkage under the
    // command workload.
    let program = assemble(
        "       addi x10, x0, 4      # iterations
                addi x11, x0, 50     # operand
                addi x15, x0, 0      # accumulator
        loop:   jal  x1, subq
                add  x15, x15, x16
                addi x11, x11, 10
                addi x10, x10, -1
                bne  x10, x0, loop
                halt
        subq:   qpush q0, x11
                qpop  x16, q1
                jalr x0, 0(x1)",
    )
    .unwrap();
    let mut cpu = Cpu::with_device(4 * 1024, QrchHub::new());
    cpu.load_program(&program);
    cpu.run(100_000).unwrap();
    let expect: u32 = [50u32, 60, 70, 80].iter().map(|x| 2 * x + 1).sum();
    assert_eq!(cpu.reg(15), expect);
}

#[test]
fn scratch_queues_pass_data_between_program_phases() {
    // Queues 2+ are plain scratch FIFOs: a produce phase fills one, a
    // consume phase drains it — on-chip staging without shared-memory
    // addressing.
    let program = assemble(
        "       addi x10, x0, 5
                addi x11, x0, 3
        prod:   qpush q4, x11
                mul  x11, x11, x11   # 3, 9, 81, ... truncated by u32
                addi x10, x10, -1
                bne  x10, x0, prod
                addi x12, x0, 5
                addi x13, x0, 0
        cons:   qpop x14, q4
                add  x13, x13, x14
                addi x12, x12, -1
                bne  x12, x0, cons
                halt",
    )
    .unwrap();
    let mut cpu = Cpu::with_device(4 * 1024, QrchHub::new());
    cpu.load_program(&program);
    cpu.run(100_000).unwrap();
    let mut x: u32 = 3;
    let mut sum: u32 = 0;
    for _ in 0..5 {
        sum = sum.wrapping_add(x);
        x = x.wrapping_mul(x);
    }
    assert_eq!(cpu.reg(13), sum);
}

#[test]
fn bubble_sort_torture_test() {
    // A memory/branch-heavy program: bubble-sort 12 words in RAM.
    // Validates lw/sw addressing, nested loops and flag logic together.
    let program = assemble(
        "       addi x10, x0, 12      # n
                addi x11, x0, 512     # base address
        outer:  addi x12, x0, 0       # swapped = 0
                addi x13, x0, 0       # i = 0
                addi x14, x10, -1     # n-1
        inner:  bge  x13, x14, idone
                slli x15, x13, 2
                add  x15, x15, x11
                lw   x16, 0(x15)
                lw   x17, 4(x15)
                bge  x17, x16, noswap
                sw   x17, 0(x15)
                sw   x16, 4(x15)
                addi x12, x0, 1
        noswap: addi x13, x13, 1
                jal  x0, inner
        idone:  bne  x12, x0, outer
                halt",
    )
    .unwrap();
    let mut cpu = Cpu::with_device(8 * 1024, QrchHub::new());
    // Program + unsorted data at word 128 (address 512).
    let mut boot = vec![0u32; 140];
    boot[..program.len()].copy_from_slice(&program);
    let data = [9u32, 3, 27, 1, 0, 14, 7, 7, 100, 2, 55, 4];
    boot[128..140].copy_from_slice(&data);
    cpu.load_program(&boot);
    cpu.run(1_000_000).unwrap();
    // Inspect memory by running a reader program on the same machine:
    // load_program overwrites only the code words, leaving the sorted
    // data at address 512 intact.
    let reader = assemble(
        "lw x1, 512(x0)\nlw x2, 516(x0)\nlw x3, 520(x0)\nlw x4, 524(x0)
         lw x5, 528(x0)\nlw x6, 532(x0)\nlw x7, 536(x0)\nlw x8, 540(x0)
         lw x9, 544(x0)\nlw x10, 548(x0)\nlw x11, 552(x0)\nlw x12, 556(x0)\nhalt",
    )
    .unwrap();
    cpu.load_program(&reader);
    cpu.run(10_000).unwrap();
    let got: Vec<u32> = (1..=12).map(|r| cpu.reg(r)).collect();
    let mut sorted = data;
    sorted.sort_unstable();
    assert_eq!(got, sorted.to_vec(), "memory not sorted: {got:?}");
}
