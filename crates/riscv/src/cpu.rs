//! The RV32IM interpreter with a cycle cost model and pluggable devices.
//!
//! Cycle accounting mirrors the Table 7 comparison: plain instructions
//! retire in 1 cycle, loads/stores to RAM in 2, accesses falling in the
//! MMIO window in ~100 (a full AXI bus round trip), QRCH queue
//! instructions in ~10, and the tightly-coupled custom-1 accelerator op
//! in 1.

use crate::isa::{decode, Instruction};

/// Base address of the memory-mapped IO window.
pub const MMIO_BASE: u32 = 0x8000_0000;

/// Cycle cost of an MMIO access (AXI round trip, Table 7 "~100 cyc").
pub const MMIO_CYCLES: u64 = 100;
/// Cycle cost of a QRCH queue instruction (Table 7 "~10 cyc").
pub const QRCH_CYCLES: u64 = 10;
/// Cycle cost of the tightly-coupled ISA extension (Table 7 "~1 cyc").
pub const ISAEXT_CYCLES: u64 = 1;

/// A coprocessor attached to the CPU: receives MMIO traffic, QRCH queue
/// operations, and tightly-coupled ops.
pub trait Device {
    /// MMIO read at `offset` within the window.
    fn mmio_read(&mut self, offset: u32) -> u32;
    /// MMIO write at `offset` within the window.
    fn mmio_write(&mut self, offset: u32, value: u32);
    /// QRCH enqueue onto queue `q`.
    fn qrch_push(&mut self, q: u8, value: u32);
    /// QRCH dequeue from queue `q`; `None` leaves the CPU stalled on the
    /// same instruction.
    fn qrch_pop(&mut self, q: u8) -> Option<u32>;
    /// QRCH occupancy of queue `q`.
    fn qrch_len(&mut self, q: u8) -> u32;
    /// Tightly-coupled accelerator op in the EX stage.
    fn accel_op(&mut self, a: u32, b: u32) -> u32;
}

/// A device that ignores everything (default attachment).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullDevice;

impl Device for NullDevice {
    fn mmio_read(&mut self, _offset: u32) -> u32 {
        0
    }
    fn mmio_write(&mut self, _offset: u32, _value: u32) {}
    fn qrch_push(&mut self, _q: u8, _value: u32) {}
    fn qrch_pop(&mut self, _q: u8) -> Option<u32> {
        Some(0)
    }
    fn qrch_len(&mut self, _q: u8) -> u32 {
        0
    }
    fn accel_op(&mut self, _a: u32, _b: u32) -> u32 {
        0
    }
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Unsupported or corrupt instruction at `pc`.
    IllegalInstruction {
        /// Faulting program counter.
        pc: u32,
        /// The raw word.
        word: u32,
    },
    /// Memory access outside RAM and the MMIO window.
    Fault {
        /// Faulting address.
        addr: u32,
    },
    /// The cycle budget expired before `halt`.
    OutOfCycles,
    /// Division by zero is defined by RISC-V, but a `qpop` on an empty
    /// queue with no device progress deadlocks.
    QueueDeadlock {
        /// The queue being popped.
        q: u8,
    },
}

impl std::fmt::Display for CpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpuError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            CpuError::Fault { addr } => write!(f, "memory fault at {addr:#010x}"),
            CpuError::OutOfCycles => write!(f, "cycle budget exhausted"),
            CpuError::QueueDeadlock { q } => write!(f, "qpop deadlock on queue {q}"),
        }
    }
}

impl std::error::Error for CpuError {}

/// The RV32IM core.
pub struct Cpu<D: Device = NullDevice> {
    regs: [u32; 32],
    pc: u32,
    ram: Vec<u8>,
    cycles: u64,
    instret: u64,
    device: D,
    halted: bool,
}

impl Cpu<NullDevice> {
    /// Creates a core with `ram_bytes` of RAM and no device.
    pub fn new(ram_bytes: usize) -> Self {
        Self::with_device(ram_bytes, NullDevice)
    }
}

impl<D: Device> Cpu<D> {
    /// Creates a core with an attached device.
    ///
    /// # Panics
    ///
    /// Panics if `ram_bytes < 16`.
    pub fn with_device(ram_bytes: usize, device: D) -> Self {
        assert!(ram_bytes >= 16, "need at least 16 bytes of RAM");
        Cpu {
            regs: [0; 32],
            pc: 0,
            ram: vec![0; ram_bytes],
            cycles: 0,
            instret: 0,
            device,
            halted: false,
        }
    }

    /// Loads instruction words at address 0 and resets the PC.
    pub fn load_program(&mut self, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.ram[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        self.pc = 0;
        self.halted = false;
    }

    /// Register value (`x0` is always zero).
    pub fn reg(&self, i: u8) -> u32 {
        if i == 0 {
            0
        } else {
            self.regs[i as usize]
        }
    }

    /// Sets a register (writes to `x0` are ignored).
    pub fn set_reg(&mut self, i: u8, v: u32) {
        if i != 0 {
            self.regs[i as usize] = v;
        }
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Whether `halt` executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The attached device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// The attached device, mutably.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    fn load_word(&mut self, addr: u32) -> Result<u32, CpuError> {
        if addr >= MMIO_BASE {
            self.cycles += MMIO_CYCLES - 2; // on top of the base load cost
            return Ok(self.device.mmio_read(addr - MMIO_BASE));
        }
        let a = addr as usize;
        if a + 4 > self.ram.len() || !addr.is_multiple_of(4) {
            return Err(CpuError::Fault { addr });
        }
        Ok(u32::from_le_bytes(self.ram[a..a + 4].try_into().unwrap()))
    }

    fn store_word(&mut self, addr: u32, value: u32) -> Result<(), CpuError> {
        if addr >= MMIO_BASE {
            self.cycles += MMIO_CYCLES - 2;
            self.device.mmio_write(addr - MMIO_BASE, value);
            return Ok(());
        }
        let a = addr as usize;
        if a + 4 > self.ram.len() || !addr.is_multiple_of(4) {
            return Err(CpuError::Fault { addr });
        }
        self.ram[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Propagates decode faults, memory faults and queue deadlocks.
    pub fn step(&mut self) -> Result<(), CpuError> {
        if self.halted {
            return Ok(());
        }
        let word = {
            let a = self.pc as usize;
            if a + 4 > self.ram.len() {
                return Err(CpuError::Fault { addr: self.pc });
            }
            u32::from_le_bytes(self.ram[a..a + 4].try_into().unwrap())
        };
        let inst = decode(word).map_err(|_| CpuError::IllegalInstruction { pc: self.pc, word })?;
        let mut next_pc = self.pc.wrapping_add(4);
        match inst {
            Instruction::Lui { rd, imm } => {
                self.set_reg(rd, imm);
                self.cycles += 1;
            }
            Instruction::Auipc { rd, imm } => {
                self.set_reg(rd, self.pc.wrapping_add(imm));
                self.cycles += 1;
            }
            Instruction::Jal { rd, offset } => {
                self.set_reg(rd, next_pc);
                next_pc = self.pc.wrapping_add(offset as u32);
                self.cycles += 2;
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
                self.cycles += 2;
            }
            Instruction::Branch {
                funct3,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match funct3 {
                    0 => a == b,
                    1 => a != b,
                    4 => (a as i32) < (b as i32),
                    5 => (a as i32) >= (b as i32),
                    6 => a < b,
                    7 => a >= b,
                    _ => return Err(CpuError::IllegalInstruction { pc: self.pc, word }),
                };
                if taken {
                    next_pc = self.pc.wrapping_add(offset as u32);
                }
                self.cycles += 1;
            }
            Instruction::Lw { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                self.cycles += 2;
                let v = self.load_word(addr)?;
                self.set_reg(rd, v);
            }
            Instruction::Sw { rs1, rs2, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                self.cycles += 2;
                let v = self.reg(rs2);
                self.store_word(addr, v)?;
            }
            Instruction::OpImm {
                funct3,
                rd,
                rs1,
                imm,
                shift_arith,
            } => {
                let a = self.reg(rs1);
                let r = match funct3 {
                    0 => a.wrapping_add(imm as u32),
                    1 => a << (imm & 0x1F),
                    2 => ((a as i32) < imm) as u32,
                    3 => (a < imm as u32) as u32,
                    4 => a ^ imm as u32,
                    5 => {
                        if shift_arith {
                            ((a as i32) >> (imm & 0x1F)) as u32
                        } else {
                            a >> (imm & 0x1F)
                        }
                    }
                    6 => a | imm as u32,
                    7 => a & imm as u32,
                    _ => unreachable!("funct3 is 3 bits"),
                };
                self.set_reg(rd, r);
                self.cycles += 1;
            }
            Instruction::Op {
                funct3,
                rd,
                rs1,
                rs2,
                alt,
                m_ext,
            } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                // RISC-V defines division by zero (no trap): x/0 = MAX,
                // x%0 = x — spelled out branch by branch, not checked_div.
                #[allow(clippy::manual_checked_ops)]
                let r = if m_ext {
                    self.cycles += 2; // multiplier pipe
                    match funct3 {
                        0 => a.wrapping_mul(b),
                        1 => ((a as i32 as i64 * b as i32 as i64) >> 32) as u32,
                        3 => ((a as u64 * b as u64) >> 32) as u32,
                        4 => {
                            if b == 0 {
                                u32::MAX
                            } else {
                                (a as i32).wrapping_div(b as i32) as u32
                            }
                        }
                        5 => {
                            if b == 0 {
                                u32::MAX
                            } else {
                                a / b
                            }
                        }
                        6 => {
                            if b == 0 {
                                a
                            } else {
                                (a as i32).wrapping_rem(b as i32) as u32
                            }
                        }
                        7 => {
                            if b == 0 {
                                a
                            } else {
                                a % b
                            }
                        }
                        _ => return Err(CpuError::IllegalInstruction { pc: self.pc, word }),
                    }
                } else {
                    match funct3 {
                        0 => {
                            if alt {
                                a.wrapping_sub(b)
                            } else {
                                a.wrapping_add(b)
                            }
                        }
                        1 => a << (b & 0x1F),
                        2 => ((a as i32) < (b as i32)) as u32,
                        3 => (a < b) as u32,
                        4 => a ^ b,
                        5 => {
                            if alt {
                                ((a as i32) >> (b & 0x1F)) as u32
                            } else {
                                a >> (b & 0x1F)
                            }
                        }
                        6 => a | b,
                        7 => a & b,
                        _ => unreachable!("funct3 is 3 bits"),
                    }
                };
                self.set_reg(rd, r);
                if !m_ext {
                    self.cycles += 1;
                }
            }
            Instruction::QPush { q, rs1 } => {
                let v = self.reg(rs1);
                self.device.qrch_push(q, v);
                self.cycles += QRCH_CYCLES;
            }
            Instruction::QPop { q, rd } => match self.device.qrch_pop(q) {
                Some(v) => {
                    self.set_reg(rd, v);
                    self.cycles += QRCH_CYCLES;
                }
                None => return Err(CpuError::QueueDeadlock { q }),
            },
            Instruction::QStat { q, rd } => {
                let v = self.device.qrch_len(q);
                self.set_reg(rd, v);
                self.cycles += QRCH_CYCLES;
            }
            Instruction::AccelOp { rd, rs1, rs2 } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let v = self.device.accel_op(a, b);
                self.set_reg(rd, v);
                self.cycles += ISAEXT_CYCLES;
            }
            Instruction::CsrRead { rd, csr } => {
                let v = match csr {
                    0xC00 => self.cycles as u32,          // cycle
                    0xC02 => self.instret as u32,         // instret
                    0xC80 => (self.cycles >> 32) as u32,  // cycleh
                    0xC82 => (self.instret >> 32) as u32, // instreth
                    _ => return Err(CpuError::IllegalInstruction { pc: self.pc, word }),
                };
                self.set_reg(rd, v);
                self.cycles += 1;
            }
            Instruction::Halt => {
                self.halted = true;
                self.cycles += 1;
            }
        }
        self.instret += 1;
        self.pc = next_pc;
        Ok(())
    }

    /// Runs until `halt` or the cycle budget is spent.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::OutOfCycles`] if the budget expires, or any
    /// execution fault.
    pub fn run(&mut self, max_cycles: u64) -> Result<(), CpuError> {
        while !self.halted {
            if self.cycles >= max_cycles {
                return Err(CpuError::OutOfCycles);
            }
            self.step()?;
        }
        Ok(())
    }
}

impl<D: Device> std::fmt::Debug for Cpu<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &self.pc)
            .field("cycles", &self.cycles)
            .field("halted", &self.halted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;

    fn run_program(src: &str) -> Cpu<NullDevice> {
        let words = assemble(src).expect("assembly");
        let mut cpu = Cpu::new(64 * 1024);
        cpu.load_program(&words);
        cpu.run(1_000_000).expect("run");
        cpu
    }

    #[test]
    fn arithmetic_and_logic() {
        let cpu = run_program(
            "addi x1, x0, 10
             addi x2, x0, 3
             add  x3, x1, x2
             sub  x4, x1, x2
             and  x5, x1, x2
             or   x6, x1, x2
             xor  x7, x1, x2
             slli x8, x1, 2
             srli x9, x1, 1
             halt",
        );
        assert_eq!(cpu.reg(3), 13);
        assert_eq!(cpu.reg(4), 7);
        assert_eq!(cpu.reg(5), 2);
        assert_eq!(cpu.reg(6), 11);
        assert_eq!(cpu.reg(7), 9);
        assert_eq!(cpu.reg(8), 40);
        assert_eq!(cpu.reg(9), 5);
    }

    #[test]
    fn loops_and_branches_fibonacci() {
        // fib(12) = 144 via iterative loop.
        let cpu = run_program(
            "addi x1, x0, 0
             addi x2, x0, 1
             addi x3, x0, 12
loop:        beq  x3, x0, done
             add  x4, x1, x2
             add  x1, x0, x2
             add  x2, x0, x4
             addi x3, x3, -1
             jal  x0, loop
done:        halt",
        );
        assert_eq!(cpu.reg(1), 144);
    }

    #[test]
    fn memory_round_trip() {
        let cpu = run_program(
            "addi x1, x0, 77
             addi x2, x0, 256
             sw   x1, 0(x2)
             lw   x3, 0(x2)
             halt",
        );
        assert_eq!(cpu.reg(3), 77);
    }

    #[test]
    fn multiply_and_divide() {
        let cpu = run_program(
            "addi x1, x0, 12
             addi x2, x0, 5
             mul  x3, x1, x2
             divu x4, x3, x2
             remu x5, x3, x1
             halt",
        );
        assert_eq!(cpu.reg(3), 60);
        assert_eq!(cpu.reg(4), 12);
        assert_eq!(cpu.reg(5), 0);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let cpu = run_program(
            "addi x1, x0, 9
             divu x2, x1, x0
             remu x3, x1, x0
             halt",
        );
        assert_eq!(cpu.reg(2), u32::MAX);
        assert_eq!(cpu.reg(3), 9);
    }

    #[test]
    fn x0_stays_zero() {
        let cpu = run_program(
            "addi x0, x0, 55
             add  x1, x0, x0
             halt",
        );
        assert_eq!(cpu.reg(0), 0);
        assert_eq!(cpu.reg(1), 0);
    }

    #[test]
    fn out_of_cycles_reported() {
        let words = assemble("loop: jal x0, loop").unwrap();
        let mut cpu = Cpu::new(1024);
        cpu.load_program(&words);
        assert_eq!(cpu.run(100), Err(CpuError::OutOfCycles));
    }

    #[test]
    fn unaligned_access_faults() {
        let words = assemble(
            "addi x1, x0, 3
             lw   x2, 0(x1)
             halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(1024);
        cpu.load_program(&words);
        assert_eq!(cpu.run(100), Err(CpuError::Fault { addr: 3 }));
    }

    #[test]
    fn performance_counters_read_back() {
        let cpu = run_program(
            "addi x1, x0, 1
             addi x2, x0, 2
             rdcycle  x5
             rdinstret x6
             halt",
        );
        // Two addis (1 cyc each) retired before rdcycle.
        assert_eq!(cpu.reg(5), 2);
        // Three instructions (2 addi + rdcycle) retired before rdinstret.
        assert_eq!(cpu.reg(6), 3);
        assert_eq!(cpu.instret(), 5);
    }

    #[test]
    fn unknown_csr_faults() {
        use crate::assembler::assemble;
        // csrrs to an unimplemented CSR: hand-encode 0x300 (mstatus).
        let w = crate::isa::encode::i(0x73, 1, 2, 0, 0x300);
        let mut cpu = Cpu::new(1024);
        cpu.load_program(&[w]);
        assert!(matches!(
            cpu.run(100),
            Err(CpuError::IllegalInstruction { .. })
        ));
        let _ = assemble; // silence unused import paths in some cfgs
    }

    #[test]
    fn mmio_costs_dominate() {
        // One MMIO load ≈ 100 cycles versus 2 for a RAM load.
        let words = assemble(
            "lui  x1, 0x80000
             lw   x2, 0(x1)
             halt",
        )
        .unwrap();
        let mut cpu = Cpu::new(1024);
        cpu.load_program(&words);
        cpu.run(1_000).unwrap();
        assert!(cpu.cycles() >= MMIO_CYCLES);
    }
}
