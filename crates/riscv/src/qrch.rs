//! QRCH — the queue-based RISC-V coprocessor communication hub (§4.4,
//! Figure 8) and the Table 7 interaction-cost measurement.
//!
//! The hub exposes 32 queues. By convention queue 0 carries commands to
//! the attached accelerator and queue 1 carries its responses; the same
//! accelerator is also reachable through a classic MMIO window and as a
//! tightly-coupled EX-stage op, so all three integration styles of
//! Table 7 can be measured on identical control programs.

use crate::assembler::assemble;
use crate::cpu::{Cpu, Device};
use std::collections::VecDeque;

/// Number of queues the hub exposes.
pub const NUM_QUEUES: usize = 32;

/// The accelerator function behind every interface: a stand-in for an AxE
/// command (deterministic, cheap to verify): `f(x) = 2x + 1`.
fn accel_fn(x: u32) -> u32 {
    x.wrapping_mul(2).wrapping_add(1)
}

/// The QRCH hub plus a mock accelerator, attachable to [`Cpu`].
#[derive(Debug, Clone, Default)]
pub struct QrchHub {
    queues: Vec<VecDeque<u32>>,
    /// MMIO command register (offset 0) result latch (offset 4).
    mmio_result: u32,
    /// Counts accelerator invocations across all interfaces.
    ops: u64,
}

impl QrchHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        QrchHub {
            queues: vec![VecDeque::new(); NUM_QUEUES],
            mmio_result: 0,
            ops: 0,
        }
    }

    /// Total accelerator operations served.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Direct queue access for tests/framework integration.
    pub fn queue(&self, q: u8) -> &VecDeque<u32> {
        &self.queues[q as usize]
    }
}

impl Device for QrchHub {
    fn mmio_read(&mut self, offset: u32) -> u32 {
        match offset {
            4 => self.mmio_result,
            8 => 1, // status: always ready
            _ => 0,
        }
    }

    fn mmio_write(&mut self, offset: u32, value: u32) {
        if offset == 0 {
            self.ops += 1;
            self.mmio_result = accel_fn(value);
        }
    }

    fn qrch_push(&mut self, q: u8, value: u32) {
        if q == 0 {
            // Command queue: the accelerator consumes it immediately and
            // queues a response on queue 1.
            self.ops += 1;
            self.queues[1].push_back(accel_fn(value));
        } else {
            self.queues[q as usize].push_back(value);
        }
    }

    fn qrch_pop(&mut self, q: u8) -> Option<u32> {
        self.queues[q as usize].pop_front()
    }

    fn qrch_len(&mut self, q: u8) -> u32 {
        self.queues[q as usize].len() as u32
    }

    fn accel_op(&mut self, a: u32, _b: u32) -> u32 {
        self.ops += 1;
        accel_fn(a)
    }
}

/// The three accelerator-integration styles of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionStyle {
    /// Loosely coupled memory-mapped IO over the bus.
    Mmio,
    /// Tightly coupled instruction extension in the EX stage.
    IsaExt,
    /// The paper's queue-based hub.
    Qrch,
}

impl InteractionStyle {
    /// Table 7's qualitative programmability rating.
    pub fn programmability(&self) -> &'static str {
        match self {
            InteractionStyle::Mmio => "bad (coarse-grain)",
            InteractionStyle::IsaExt => "good (fine-grain)",
            InteractionStyle::Qrch => "fair (small OP level)",
        }
    }

    /// Table 7's qualitative extensibility rating.
    pub fn extensibility(&self) -> &'static str {
        match self {
            InteractionStyle::Mmio => "bad",
            InteractionStyle::IsaExt => "fair",
            InteractionStyle::Qrch => "good",
        }
    }
}

/// Runs `n` accelerator invocations through the chosen interface on the
/// interpreter and returns the measured cycles **per interaction** (one
/// command + one response).
///
/// # Panics
///
/// Panics if `n` is zero or exceeds 2047 (12-bit loop counter).
pub fn measure_interaction_cost(style: InteractionStyle, n: u32) -> f64 {
    assert!((1..=2047).contains(&n), "n must fit a 12-bit immediate");
    // Common loop skeleton: x10 = counter, x11 = command value,
    // x12 = accumulated responses (verified by the caller via reg 12).
    let body = match style {
        InteractionStyle::Mmio => {
            "lui   x20, 0x80000
             sw    x11, 0(x20)      # command register
             lw    x13, 4(x20)      # result latch"
        }
        InteractionStyle::IsaExt => "accel x13, x11, x0",
        InteractionStyle::Qrch => {
            "qpush q0, x11
             qpop  x13, q1"
        }
    };
    let src = format!(
        "      addi x10, x0, {n}
               addi x11, x0, 5
               addi x12, x0, 0
        loop:  {body}
               add  x12, x12, x13
               addi x10, x10, -1
               bne  x10, x0, loop
               halt"
    );
    let words = assemble(&src).expect("interaction program assembles");
    let mut cpu = Cpu::with_device(64 * 1024, QrchHub::new());
    cpu.load_program(&words);
    cpu.run(10_000_000).expect("interaction program halts");
    assert_eq!(
        cpu.device().ops(),
        n as u64,
        "every iteration hit the accel"
    );
    assert_eq!(cpu.reg(12), n * accel_fn(5), "responses accumulated");

    // Subtract the loop overhead measured with an empty body (x13 held
    // constant outside the loop, so the accumulate/branch structure is
    // identical).
    let baseline_src = format!(
        "      addi x10, x0, {n}
               addi x11, x0, 5
               addi x12, x0, 0
               addi x13, x0, 0
        loop:  add  x12, x12, x13
               addi x10, x10, -1
               bne  x10, x0, loop
               halt"
    );
    let words = assemble(&baseline_src).expect("baseline assembles");
    let mut base = Cpu::new(64 * 1024);
    base.load_program(&words);
    base.run(10_000_000).expect("baseline halts");

    (cpu.cycles() - base.cycles()) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_cost_ordering() {
        let mmio = measure_interaction_cost(InteractionStyle::Mmio, 100);
        let isa = measure_interaction_cost(InteractionStyle::IsaExt, 100);
        let qrch = measure_interaction_cost(InteractionStyle::Qrch, 100);
        assert!(
            isa < qrch && qrch < mmio,
            "isa {isa}, qrch {qrch}, mmio {mmio}"
        );
    }

    #[test]
    fn table7_cost_magnitudes() {
        // Paper: MMIO ~100 cyc, ISA-ext ~1 cyc, QRCH ~10 cyc.
        let mmio = measure_interaction_cost(InteractionStyle::Mmio, 200);
        assert!((100.0..350.0).contains(&mmio), "mmio {mmio}");
        let isa = measure_interaction_cost(InteractionStyle::IsaExt, 200);
        assert!((0.5..4.0).contains(&isa), "isa {isa}");
        let qrch = measure_interaction_cost(InteractionStyle::Qrch, 200);
        assert!((10.0..40.0).contains(&qrch), "qrch {qrch}");
    }

    #[test]
    fn hub_queue_semantics() {
        let mut hub = QrchHub::new();
        hub.qrch_push(5, 11);
        hub.qrch_push(5, 22);
        assert_eq!(hub.qrch_len(5), 2);
        assert_eq!(hub.qrch_pop(5), Some(11));
        assert_eq!(hub.qrch_pop(5), Some(22));
        assert_eq!(hub.qrch_pop(5), None);
    }

    #[test]
    fn command_queue_triggers_accelerator() {
        let mut hub = QrchHub::new();
        hub.qrch_push(0, 10);
        assert_eq!(hub.ops(), 1);
        assert_eq!(hub.qrch_pop(1), Some(21));
    }

    #[test]
    fn mmio_interface_matches_accelerator() {
        let mut hub = QrchHub::new();
        hub.mmio_write(0, 10);
        assert_eq!(hub.mmio_read(4), 21);
        assert_eq!(hub.mmio_read(8), 1);
    }

    #[test]
    fn qualitative_ratings_present() {
        for s in [
            InteractionStyle::Mmio,
            InteractionStyle::IsaExt,
            InteractionStyle::Qrch,
        ] {
            assert!(!s.programmability().is_empty());
            assert!(!s.extensibility().is_empty());
        }
    }

    #[test]
    fn empty_qpop_deadlocks_cpu() {
        use crate::cpu::CpuError;
        let words = assemble("qpop x1, q7\nhalt").unwrap();
        let mut cpu = Cpu::with_device(1024, QrchHub::new());
        cpu.load_program(&words);
        assert_eq!(cpu.run(1_000), Err(CpuError::QueueDeadlock { q: 7 }));
    }
}
