//! A two-pass assembler for the control-program subset.
//!
//! Supports the RV32IM instructions the interpreter executes, labels,
//! decimal/hex immediates, the `qpush`/`qpop`/`qstat` QRCH instructions,
//! the `accel` tightly-coupled op, and the pseudo-ops `nop`, `mv`, `li`
//! (12-bit) and `halt`.

use crate::isa::encode;

/// Assembly errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

fn parse_reg(tok: &str, line: usize) -> Result<u8, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    if let Some(n) = t.strip_prefix('x') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(i);
            }
        }
    }
    err(line, format!("bad register `{t}`"))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(h) = t.strip_prefix("0x") {
        i64::from_str_radix(h, 16)
    } else {
        t.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad immediate `{t}`")),
    }
}

/// `off(rs)` operand.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, u8), AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let open = t.find('(');
    let close = t.rfind(')');
    match (open, close) {
        (Some(o), Some(c)) if c > o => {
            let off = if o == 0 { 0 } else { parse_imm(&t[..o], line)? };
            let rs = parse_reg(&t[o + 1..c], line)?;
            Ok((off, rs))
        }
        _ => err(line, format!("bad memory operand `{t}`")),
    }
}

struct Pending<'a> {
    line: usize,
    pc: u32,
    mnemonic: &'a str,
    ops: Vec<&'a str>,
}

/// Assembles source into instruction words.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line.
///
/// # Example
///
/// ```
/// use lsdgnn_riscv::assemble;
/// let words = assemble("addi x1, x0, 1\nhalt").unwrap();
/// assert_eq!(words.len(), 2);
/// ```
pub fn assemble(source: &str) -> Result<Vec<u32>, AsmError> {
    use std::collections::HashMap;
    let mut labels: HashMap<&str, u32> = HashMap::new();
    let mut items: Vec<Pending> = Vec::new();
    let mut pc = 0u32;

    for (li, raw) in source.lines().enumerate() {
        let line = li + 1;
        let mut text = raw;
        if let Some(i) = text.find('#') {
            text = &text[..i];
        }
        let mut text = text.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = text.find(':') {
            let (lab, rest) = text.split_at(colon);
            let lab = lab.trim();
            if lab.is_empty() || lab.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(lab, pc).is_some() {
                return err(line, format!("duplicate label `{lab}`"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let mut parts = text.split_whitespace();
        let mnemonic = parts.next().expect("non-empty line");
        let ops: Vec<&str> = text[mnemonic.len()..]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        items.push(Pending {
            line,
            pc,
            mnemonic,
            ops,
        });
        pc += 4;
    }

    let resolve = |tok: &str, line: usize, at: u32| -> Result<i64, AsmError> {
        if let Some(&target) = labels.get(tok.trim()) {
            Ok(target as i64 - at as i64)
        } else {
            parse_imm(tok, line)
        }
    };

    let mut out = Vec::with_capacity(items.len());
    for it in &items {
        let line = it.line;
        let need = |n: usize| -> Result<(), AsmError> {
            if it.ops.len() != n {
                err(line, format!("{} expects {n} operands", it.mnemonic))
            } else {
                Ok(())
            }
        };
        let w = match it.mnemonic {
            "nop" => encode::i(0x13, 0, 0, 0, 0),
            "rdcycle" => {
                need(1)?;
                encode::i(0x73, parse_reg(it.ops[0], line)?, 2, 0, 0xC00)
            }
            "rdinstret" => {
                need(1)?;
                encode::i(0x73, parse_reg(it.ops[0], line)?, 2, 0, 0xC02)
            }
            "halt" | "ecall" => 0x0000_0073,
            "mv" => {
                need(2)?;
                encode::i(
                    0x13,
                    parse_reg(it.ops[0], line)?,
                    0,
                    parse_reg(it.ops[1], line)?,
                    0,
                )
            }
            "li" => {
                need(2)?;
                let imm = parse_imm(it.ops[1], line)?;
                if !(-2048..=2047).contains(&imm) {
                    return err(line, "li immediate out of 12-bit range; use lui");
                }
                encode::i(0x13, parse_reg(it.ops[0], line)?, 0, 0, imm as i32)
            }
            "lui" | "auipc" => {
                need(2)?;
                let imm = parse_imm(it.ops[1], line)?;
                let op = if it.mnemonic == "lui" { 0x37 } else { 0x17 };
                encode::u(op, parse_reg(it.ops[0], line)?, (imm as u32) << 12)
            }
            "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" => {
                need(3)?;
                let rd = parse_reg(it.ops[0], line)?;
                let rs1 = parse_reg(it.ops[1], line)?;
                let imm = parse_imm(it.ops[2], line)?;
                let (f3, extra) = match it.mnemonic {
                    "addi" => (0, 0),
                    "slti" => (2, 0),
                    "sltiu" => (3, 0),
                    "xori" => (4, 0),
                    "ori" => (6, 0),
                    "andi" => (7, 0),
                    "slli" => (1, 0),
                    "srli" => (5, 0),
                    "srai" => (5, 0x400),
                    _ => unreachable!(),
                };
                encode::i(0x13, rd, f3, rs1, imm as i32 | extra)
            }
            "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and"
            | "mul" | "mulh" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
                need(3)?;
                let rd = parse_reg(it.ops[0], line)?;
                let rs1 = parse_reg(it.ops[1], line)?;
                let rs2 = parse_reg(it.ops[2], line)?;
                let (f3, f7) = match it.mnemonic {
                    "add" => (0, 0x00),
                    "sub" => (0, 0x20),
                    "sll" => (1, 0x00),
                    "slt" => (2, 0x00),
                    "sltu" => (3, 0x00),
                    "xor" => (4, 0x00),
                    "srl" => (5, 0x00),
                    "sra" => (5, 0x20),
                    "or" => (6, 0x00),
                    "and" => (7, 0x00),
                    "mul" => (0, 0x01),
                    "mulh" => (1, 0x01),
                    "mulhu" => (3, 0x01),
                    "div" => (4, 0x01),
                    "divu" => (5, 0x01),
                    "rem" => (6, 0x01),
                    "remu" => (7, 0x01),
                    _ => unreachable!(),
                };
                encode::r(0x33, rd, f3, rs1, rs2, f7)
            }
            "lw" => {
                need(2)?;
                let rd = parse_reg(it.ops[0], line)?;
                let (off, rs1) = parse_mem(it.ops[1], line)?;
                encode::i(0x03, rd, 2, rs1, off as i32)
            }
            "sw" => {
                need(2)?;
                let rs2 = parse_reg(it.ops[0], line)?;
                let (off, rs1) = parse_mem(it.ops[1], line)?;
                encode::s(0x23, 2, rs1, rs2, off as i32)
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                need(3)?;
                let rs1 = parse_reg(it.ops[0], line)?;
                let rs2 = parse_reg(it.ops[1], line)?;
                let off = resolve(it.ops[2], line, it.pc)?;
                let f3 = match it.mnemonic {
                    "beq" => 0,
                    "bne" => 1,
                    "blt" => 4,
                    "bge" => 5,
                    "bltu" => 6,
                    "bgeu" => 7,
                    _ => unreachable!(),
                };
                encode::b(0x63, f3, rs1, rs2, off as i32)
            }
            "jal" => {
                need(2)?;
                let rd = parse_reg(it.ops[0], line)?;
                let off = resolve(it.ops[1], line, it.pc)?;
                encode::j(0x6F, rd, off as i32)
            }
            "jalr" => {
                need(2)?;
                let rd = parse_reg(it.ops[0], line)?;
                let (off, rs1) = parse_mem(it.ops[1], line)?;
                encode::i(0x67, rd, 0, rs1, off as i32)
            }
            // qpush qN, rs1
            "qpush" => {
                need(2)?;
                let q = parse_queue(it.ops[0], line)?;
                let rs1 = parse_reg(it.ops[1], line)?;
                encode::r(0x0B, q, 0, rs1, 0, 0)
            }
            // qpop rd, qN
            "qpop" => {
                need(2)?;
                let rd = parse_reg(it.ops[0], line)?;
                let q = parse_queue(it.ops[1], line)?;
                encode::r(0x0B, rd, 1, q, 0, 0)
            }
            // qstat rd, qN
            "qstat" => {
                need(2)?;
                let rd = parse_reg(it.ops[0], line)?;
                let q = parse_queue(it.ops[1], line)?;
                encode::r(0x0B, rd, 2, q, 0, 0)
            }
            // accel rd, rs1, rs2
            "accel" => {
                need(3)?;
                encode::r(
                    0x2B,
                    parse_reg(it.ops[0], line)?,
                    0,
                    parse_reg(it.ops[1], line)?,
                    parse_reg(it.ops[2], line)?,
                    0,
                )
            }
            other => return err(line, format!("unknown mnemonic `{other}`")),
        };
        out.push(w);
    }
    Ok(out)
}

fn parse_queue(tok: &str, line: usize) -> Result<u8, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    if let Some(n) = t.strip_prefix('q') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(i);
            }
        }
    }
    err(line, format!("bad queue `{t}` (expect q0..q31)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{decode, Instruction};

    #[test]
    fn labels_resolve_forward_and_backward() {
        let words = assemble(
            "start: addi x1, x0, 1
                    beq  x1, x0, end
                    jal  x0, start
             end:   halt",
        )
        .unwrap();
        assert_eq!(words.len(), 4);
        match decode(words[1]).unwrap() {
            Instruction::Branch { offset, .. } => assert_eq!(offset, 8),
            other => panic!("wrong decode {other:?}"),
        }
        match decode(words[2]).unwrap() {
            Instruction::Jal { offset, .. } => assert_eq!(offset, -8),
            other => panic!("wrong decode {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let words = assemble(
            "# program
             addi x1, x0, 2 # two

             halt",
        )
        .unwrap();
        assert_eq!(words.len(), 2);
    }

    #[test]
    fn memory_operands_parse() {
        let words = assemble("lw x5, -8(x2)\nsw x5, 0x10(x3)\nhalt").unwrap();
        match decode(words[0]).unwrap() {
            Instruction::Lw { rd, rs1, offset } => {
                assert_eq!((rd, rs1, offset), (5, 2, -8));
            }
            other => panic!("wrong decode {other:?}"),
        }
        match decode(words[1]).unwrap() {
            Instruction::Sw { rs1, rs2, offset } => {
                assert_eq!((rs1, rs2, offset), (3, 5, 16));
            }
            other => panic!("wrong decode {other:?}"),
        }
    }

    #[test]
    fn qrch_mnemonics() {
        let words = assemble("qpush q3, x7\nqpop x5, q3\nqstat x6, q3\nhalt").unwrap();
        assert_eq!(
            decode(words[0]).unwrap(),
            Instruction::QPush { q: 3, rs1: 7 }
        );
        assert_eq!(decode(words[1]).unwrap(), Instruction::QPop { q: 3, rd: 5 });
        assert_eq!(
            decode(words[2]).unwrap(),
            Instruction::QStat { q: 3, rd: 6 }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("addi x1, x0, 1\nbogus x1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble("addi x99, x0, 1").unwrap_err();
        assert!(e.message.contains("register"));
        let e = assemble("li x1, 100000").unwrap_err();
        assert!(e.message.contains("12-bit"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a: nop\na: nop").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }
}
