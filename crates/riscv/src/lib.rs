//! RISC-V control subsystem (§4.4): an RV32IM interpreter standing in for
//! the Xuantie E906 core, extended with the paper's **QRCH** (queue-based
//! RISC-V coprocessor communication hub).
//!
//! Three accelerator-interaction styles are modeled, matching Table 7:
//!
//! | style    | mechanism                              | cost/interaction |
//! |----------|----------------------------------------|------------------|
//! | MMIO     | `lw`/`sw` to a device window over AXI  | ~100 cycles      |
//! | ISA-ext  | accelerator wired into the EX stage    | ~1 cycle         |
//! | QRCH     | custom queue push/pop instructions     | ~10 cycles       |
//!
//! The [`assembler`] makes writing control programs ergonomic; the
//! [`qrch`] module measures the Table 7 interaction costs by executing
//! real programs on the interpreter.
//!
//! # Example
//!
//! ```
//! use lsdgnn_riscv::{assemble, Cpu};
//!
//! let prog = assemble(
//!     "addi x1, x0, 21
//!      add  x2, x1, x1
//!      halt",
//! )
//! .unwrap();
//! let mut cpu = Cpu::new(4096);
//! cpu.load_program(&prog);
//! cpu.run(1_000).unwrap();
//! assert_eq!(cpu.reg(2), 42);
//! ```

pub mod assembler;
pub mod cpu;
pub mod isa;
pub mod qrch;

pub use assembler::{assemble, AsmError};
pub use cpu::{Cpu, CpuError, Device};
pub use isa::{decode, Instruction};
pub use qrch::{measure_interaction_cost, InteractionStyle, QrchHub};
