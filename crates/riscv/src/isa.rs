//! RV32IM instruction decoding, plus the two custom opcodes used for
//! accelerator control.
//!
//! Custom-0 (`0x0B`) carries the QRCH queue instructions; custom-1
//! (`0x2B`) carries the tightly-coupled ISA-extension style for the
//! Table 7 comparison.

/// A decoded instruction (the subset the control programs use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// LUI rd, imm20.
    Lui { rd: u8, imm: u32 },
    /// AUIPC rd, imm20.
    Auipc { rd: u8, imm: u32 },
    /// JAL rd, offset.
    Jal { rd: u8, offset: i32 },
    /// JALR rd, rs1, offset.
    Jalr { rd: u8, rs1: u8, offset: i32 },
    /// Conditional branch.
    Branch {
        /// Condition encoding (funct3: 0=eq,1=ne,4=lt,5=ge,6=ltu,7=geu).
        funct3: u8,
        /// First operand register.
        rs1: u8,
        /// Second operand register.
        rs2: u8,
        /// PC-relative offset.
        offset: i32,
    },
    /// LW rd, offset(rs1).
    Lw { rd: u8, rs1: u8, offset: i32 },
    /// SW rs2, offset(rs1).
    Sw { rs1: u8, rs2: u8, offset: i32 },
    /// Register-immediate ALU op (funct3 selects, 0=addi, etc).
    OpImm {
        funct3: u8,
        rd: u8,
        rs1: u8,
        imm: i32,
        shift_arith: bool,
    },
    /// Register-register ALU op, including the M extension when
    /// `m_ext` is set.
    Op {
        funct3: u8,
        rd: u8,
        rs1: u8,
        rs2: u8,
        alt: bool,
        m_ext: bool,
    },
    /// QRCH push: enqueue rs1's value onto queue `q` (custom-0, funct3 0).
    QPush { q: u8, rs1: u8 },
    /// QRCH pop: dequeue from queue `q` into rd; stalls if empty
    /// (custom-0, funct3 1).
    QPop { q: u8, rd: u8 },
    /// QRCH status: occupancy of queue `q` into rd (custom-0, funct3 2).
    QStat { q: u8, rd: u8 },
    /// Tightly-coupled accelerator op (custom-1): result = accel(rs1, rs2)
    /// in the EX stage.
    AccelOp { rd: u8, rs1: u8, rs2: u8 },
    /// CSR read (`csrrs rd, csr, x0`): performance counters only
    /// (0xC00 = cycle, 0xC02 = instret).
    CsrRead {
        /// Destination register.
        rd: u8,
        /// CSR address.
        csr: u16,
    },
    /// ECALL — used as the halt convention.
    Halt,
}

/// Decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(pub u32);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Decodes one 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for unsupported encodings.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let opcode = word & 0x7F;
    let rd = bits(word, 11, 7) as u8;
    let funct3 = bits(word, 14, 12) as u8;
    let rs1 = bits(word, 19, 15) as u8;
    let rs2 = bits(word, 24, 20) as u8;
    let funct7 = bits(word, 31, 25);
    match opcode {
        0x37 => Ok(Instruction::Lui {
            rd,
            imm: word & 0xFFFF_F000,
        }),
        0x17 => Ok(Instruction::Auipc {
            rd,
            imm: word & 0xFFFF_F000,
        }),
        0x6F => {
            let imm = (bits(word, 31, 31) << 20)
                | (bits(word, 19, 12) << 12)
                | (bits(word, 20, 20) << 11)
                | (bits(word, 30, 21) << 1);
            Ok(Instruction::Jal {
                rd,
                offset: sign_extend(imm, 21),
            })
        }
        0x67 if funct3 == 0 => Ok(Instruction::Jalr {
            rd,
            rs1,
            offset: sign_extend(bits(word, 31, 20), 12),
        }),
        0x63 => {
            let imm = (bits(word, 31, 31) << 12)
                | (bits(word, 7, 7) << 11)
                | (bits(word, 30, 25) << 5)
                | (bits(word, 11, 8) << 1);
            Ok(Instruction::Branch {
                funct3,
                rs1,
                rs2,
                offset: sign_extend(imm, 13),
            })
        }
        0x03 if funct3 == 2 => Ok(Instruction::Lw {
            rd,
            rs1,
            offset: sign_extend(bits(word, 31, 20), 12),
        }),
        0x23 if funct3 == 2 => {
            let imm = (bits(word, 31, 25) << 5) | bits(word, 11, 7);
            Ok(Instruction::Sw {
                rs1,
                rs2,
                offset: sign_extend(imm, 12),
            })
        }
        0x13 => Ok(Instruction::OpImm {
            funct3,
            rd,
            rs1,
            imm: sign_extend(bits(word, 31, 20), 12),
            shift_arith: funct7 == 0x20,
        }),
        0x33 => Ok(Instruction::Op {
            funct3,
            rd,
            rs1,
            rs2,
            alt: funct7 == 0x20,
            m_ext: funct7 == 0x01,
        }),
        0x0B => match funct3 {
            0 => Ok(Instruction::QPush { q: rd, rs1 }),
            1 => Ok(Instruction::QPop { q: rs1, rd }),
            2 => Ok(Instruction::QStat { q: rs1, rd }),
            _ => Err(DecodeError(word)),
        },
        0x2B => Ok(Instruction::AccelOp { rd, rs1, rs2 }),
        0x73 if word == 0x0000_0073 => Ok(Instruction::Halt),
        0x73 if funct3 == 2 && rs1 == 0 => Ok(Instruction::CsrRead {
            rd,
            csr: bits(word, 31, 20) as u16,
        }),
        _ => Err(DecodeError(word)),
    }
}

/// Encoding helpers (used by the assembler and tests).
pub mod encode {
    /// R-type.
    pub fn r(opcode: u32, rd: u8, funct3: u8, rs1: u8, rs2: u8, funct7: u32) -> u32 {
        opcode
            | ((rd as u32) << 7)
            | ((funct3 as u32) << 12)
            | ((rs1 as u32) << 15)
            | ((rs2 as u32) << 20)
            | (funct7 << 25)
    }

    /// I-type.
    pub fn i(opcode: u32, rd: u8, funct3: u8, rs1: u8, imm: i32) -> u32 {
        opcode
            | ((rd as u32) << 7)
            | ((funct3 as u32) << 12)
            | ((rs1 as u32) << 15)
            | (((imm as u32) & 0xFFF) << 20)
    }

    /// S-type.
    pub fn s(opcode: u32, funct3: u8, rs1: u8, rs2: u8, imm: i32) -> u32 {
        let imm = imm as u32;
        opcode
            | ((imm & 0x1F) << 7)
            | ((funct3 as u32) << 12)
            | ((rs1 as u32) << 15)
            | ((rs2 as u32) << 20)
            | (((imm >> 5) & 0x7F) << 25)
    }

    /// B-type.
    pub fn b(opcode: u32, funct3: u8, rs1: u8, rs2: u8, offset: i32) -> u32 {
        let off = offset as u32;
        opcode
            | (((off >> 11) & 1) << 7)
            | (((off >> 1) & 0xF) << 8)
            | ((funct3 as u32) << 12)
            | ((rs1 as u32) << 15)
            | ((rs2 as u32) << 20)
            | (((off >> 5) & 0x3F) << 25)
            | (((off >> 12) & 1) << 31)
    }

    /// U-type.
    pub fn u(opcode: u32, rd: u8, imm: u32) -> u32 {
        opcode | ((rd as u32) << 7) | (imm & 0xFFFF_F000)
    }

    /// J-type.
    pub fn j(opcode: u32, rd: u8, offset: i32) -> u32 {
        let off = offset as u32;
        opcode
            | ((rd as u32) << 7)
            | (((off >> 12) & 0xFF) << 12)
            | (((off >> 11) & 1) << 20)
            | (((off >> 1) & 0x3FF) << 21)
            | (((off >> 20) & 1) << 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_addi() {
        // addi x1, x0, 5
        let w = encode::i(0x13, 1, 0, 0, 5);
        assert_eq!(
            decode(w).unwrap(),
            Instruction::OpImm {
                funct3: 0,
                rd: 1,
                rs1: 0,
                imm: 5,
                shift_arith: false
            }
        );
    }

    #[test]
    fn decode_negative_immediate() {
        let w = encode::i(0x13, 2, 0, 1, -7);
        match decode(w).unwrap() {
            Instruction::OpImm { imm, .. } => assert_eq!(imm, -7),
            other => panic!("wrong decode {other:?}"),
        }
    }

    #[test]
    fn branch_offset_round_trips() {
        for off in [-4096i32, -8, 8, 2046, 4094] {
            let w = encode::b(0x63, 1, 3, 4, off);
            match decode(w).unwrap() {
                Instruction::Branch { offset, .. } => assert_eq!(offset, off, "off {off}"),
                other => panic!("wrong decode {other:?}"),
            }
        }
    }

    #[test]
    fn jal_offset_round_trips() {
        for off in [-1048576i32, -2, 2, 4, 1048574] {
            let w = encode::j(0x6F, 1, off);
            match decode(w).unwrap() {
                Instruction::Jal { offset, .. } => assert_eq!(offset, off, "off {off}"),
                other => panic!("wrong decode {other:?}"),
            }
        }
    }

    #[test]
    fn store_offset_round_trips() {
        for off in [-2048i32, -4, 0, 4, 2047] {
            let w = encode::s(0x23, 2, 5, 6, off);
            match decode(w).unwrap() {
                Instruction::Sw { offset, .. } => assert_eq!(offset, off),
                other => panic!("wrong decode {other:?}"),
            }
        }
    }

    #[test]
    fn m_extension_flag() {
        // mul x3, x1, x2
        let w = encode::r(0x33, 3, 0, 1, 2, 0x01);
        match decode(w).unwrap() {
            Instruction::Op { m_ext, .. } => assert!(m_ext),
            other => panic!("wrong decode {other:?}"),
        }
    }

    #[test]
    fn custom_opcodes_decode() {
        let push = encode::r(0x0B, 2, 0, 7, 0, 0);
        assert_eq!(decode(push).unwrap(), Instruction::QPush { q: 2, rs1: 7 });
        let pop = encode::r(0x0B, 5, 1, 2, 0, 0);
        assert_eq!(decode(pop).unwrap(), Instruction::QPop { q: 2, rd: 5 });
        let stat = encode::r(0x0B, 6, 2, 3, 0, 0);
        assert_eq!(decode(stat).unwrap(), Instruction::QStat { q: 3, rd: 6 });
        let acc = encode::r(0x2B, 4, 0, 1, 2, 0);
        assert_eq!(
            decode(acc).unwrap(),
            Instruction::AccelOp {
                rd: 4,
                rs1: 1,
                rs2: 2
            }
        );
    }

    #[test]
    fn csr_read_decodes() {
        // csrrs rd=5, csr=0xC00 (cycle), rs1=x0
        let w = encode::i(0x73, 5, 2, 0, 0xC00u32 as i32);
        assert_eq!(
            decode(w).unwrap(),
            Instruction::CsrRead { rd: 5, csr: 0xC00 }
        );
    }

    #[test]
    fn halt_and_garbage() {
        assert_eq!(decode(0x0000_0073).unwrap(), Instruction::Halt);
        assert!(decode(0xFFFF_FFFF).is_err());
    }
}
